"""Packaging metadata for the GQA-LUT reproduction.

Explicit ``packages``/``package_dir`` so editable installs (``pip install
-e .``) resolve ``repro`` from the ``src`` layout without relying on
``PYTHONPATH=src``, including in offline environments without wheel.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of GQA-LUT: genetic quantization-aware LUT "
        "approximation for non-linear operations in Transformers (DAC 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={"test": ["pytest", "hypothesis"]},
)
