"""Serve a quantized pwl segmentation model under concurrent traffic.

The deployment story end to end:

1. build a MiniSegformer with every non-linear operator replaced by its
   8-entry pwl (the paper's deployed configuration) and INT8-quantized
   Linear layers,
2. compile it — trace once, fold the quantizer constant subtrees, fuse the
   dense-LUT lookups, plan buffers,
3. stand up a :class:`repro.serve.BatchingServer` and fire concurrent
   single-image requests at it from worker threads,
4. compare against sequential eager inference and print the batching
   stats,
5. promote the same model into a :class:`repro.serve.ReplicatedServer`
   fleet: per-replica health, a canary-verified rolling hot-swap to new
   head weights, and a graceful drain before shutdown.

Run with::

    PYTHONPATH=src python examples/serve_demo.py
"""

import threading
import time

import numpy as np

from repro.core.pwl import fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function
from repro.nn.approx import PWLSuite
from repro.nn.models import MiniSegformer, ModelConfig
from repro.nn.training import prepare_quantized_model
from repro.serve import BatchingServer, ReplicatedServer

OPERATORS = ("exp", "gelu", "div", "rsqrt")


def build_approximation(operator: str):
    fn = get_function(operator)
    pwl = fit_pwl(fn.fn, uniform_breakpoints(*fn.search_range, 8), fn.search_range)
    return pwl.to_fixed_point(5)


def main() -> None:
    # 1. The deployed model: pwl operators + INT8 linears.
    suite = PWLSuite(
        approximations={op: build_approximation(op) for op in OPERATORS},
        replace=set(OPERATORS),
        engine="dense",
    )
    model = MiniSegformer(ModelConfig(), suite=suite)
    prepare_quantized_model(model)
    model.eval()

    rng = np.random.default_rng(0)
    images = [rng.normal(size=(32, 32, 3)) for _ in range(96)]

    # 2. Sequential eager baseline (also initialises the LSQ quantizers
    #    from the first image, exactly as a compiled first call would).
    start = time.perf_counter()
    eager = [model.predict(image[None], engine="eager")[0] for image in images]
    eager_seconds = time.perf_counter() - start

    # 3. Concurrent traffic against the micro-batching compiled server,
    #    production-shaped: bounded admission queue + per-request deadline
    #    (a deadline-bounded predict fails fast instead of waiting forever)
    #    and a caller-side timeout so a wedged batch cannot hang a client.
    with BatchingServer(model, max_batch=16, max_wait_ms=2.0, engine="compiled",
                        max_queue=256, deadline_ms=5000.0) as server:
        results = [None] * len(images)

        def client(worker: int, step: int) -> None:
            for index in range(worker, len(images), step):
                results[index] = server.predict(images[index], timeout=30.0)

        threads = [threading.Thread(target=client, args=(w, 4)) for w in range(4)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        served_seconds = time.perf_counter() - start
        stats = server.stats()
        health = server.health()

    identical = all(np.array_equal(a, b) for a, b in zip(results, eager))
    print("requests          : %d (4 client threads)" % len(images))
    print("batches executed  : %d (mean batch %.1f, %d padded rows)"
          % (stats.batches, stats.mean_batch_size, stats.padded_rows))
    print("eager sequential  : %6.1f req/s" % (len(images) / eager_seconds))
    print("compiled batched  : %6.1f req/s (%.1fx)"
          % (len(images) / served_seconds, eager_seconds / served_seconds))
    print("bit-identical     :", identical)
    # 4. The health() report is endpoint-shaped: what /healthz would serve.
    print("health            : status=%s shed=%d expired=%d fallbacks=%d "
          "p50=%.1fms p99=%.1fms"
          % (health["status"], health["counters"]["shed"],
             health["counters"]["expired"], health["counters"]["fallbacks"],
             health["latency_ms"]["p50_ms"], health["latency_ms"]["p99_ms"]))

    # 5. Replicated serving: the same admission surface fronting forked
    #    replica processes.  A canary image gates the rolling hot-swap —
    #    each replica must reproduce the reference model's prediction on
    #    it bit-for-bit before being promoted to the new weights.
    new_state = dict(model.state_dict())
    key = next(n for n in new_state if "head" in n and n.endswith("bias"))
    new_state[key] = new_state[key] + np.arange(new_state[key].size) * 7.0
    with ReplicatedServer(model, replicas=2, max_batch=16, max_wait_ms=2.0,
                          canary=images[0]) as fleet:
        before = fleet.predict(images[1], timeout=30.0)
        assert np.array_equal(before, eager[1])  # any replica, same bits
        report = fleet.swap_state(new_state)
        print("fleet swap        : %d replicas promoted to generation %d"
              % (report["swapped"], report["model_generation"]))
        after = fleet.predict(images[1], timeout=30.0)
        print("swap changed head :", not np.array_equal(before, after))
        fleet_health = fleet.health()
        print("fleet health      : status=%s  replicas=%s"
              % (fleet_health["status"],
                 [(r["index"], r["state"], "gen%d" % r["model_generation"])
                  for r in fleet_health["replicas"]]))
        # Graceful drain: wait out every outstanding request before the
        # context manager tears the replicas down.
        drained = fleet.drain(timeout=30.0)
        print("drained           :", drained)


if __name__ == "__main__":
    main()
