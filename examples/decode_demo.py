"""KV-cached autoregressive decode through the compiled incremental step.

The 60-second tour of the PR 10 decode stack:

1. build a quantized `MiniDecoder` — causal attention, GELU MLP and
   LayerNorm all routed through 8-entry fixed-point pwl tables, Linears
   INT8-quantized,
2. greedy-decode the same prompt four ways — cached/uncached x
   eager/compiled — and check the token streams agree,
3. inspect the compiled step's power-of-two cache-bucket
   specializations (a long decode needs ~log2(T) plans, not T),
4. pick the decode engine through the central config
   (``REPRO_DECODE_ENGINE=compiled`` does the same globally),
5. serve concurrent decode sessions through ``BatchingServer`` —
   grouped by cache bucket, one batched compiled step per group — and
   verify the served streams match direct decode.

Run with::

    PYTHONPATH=src python examples/decode_demo.py
"""

import threading

import numpy as np

from repro.core import engine_config
from repro.core.pwl import fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function
from repro.nn import DecoderConfig, MiniDecoder, PWLSuite, greedy_generate
from repro.nn.training import prepare_quantized_model
from repro.serve import BatchingServer

OPERATORS = ("exp", "gelu", "div", "rsqrt")


def build_model() -> MiniDecoder:
    approximations = {}
    for name in OPERATORS:
        fn = get_function(name)
        pwl = fit_pwl(fn.fn, uniform_breakpoints(*fn.search_range, 8), fn.search_range)
        approximations[name] = pwl.to_fixed_point(5)
    suite = PWLSuite(approximations=approximations, replace=set(OPERATORS))
    model = MiniDecoder(DecoderConfig(vocab_size=32, max_seq=64, embed_dim=32,
                                      depth=2, num_heads=2, seed=3), suite=suite)
    prepare_quantized_model(model)
    model.eval()
    return model


def main() -> None:
    model = build_model()
    prompt = [1, 4, 7, 2]
    num_new = 24

    # 1. Four decode paths, one greedy stream.  Cached-eager and
    #    cached-compiled logits are bit-identical; the uncached paths
    #    recompute the full prefix each token (O(T^2)) and must produce
    #    the same greedy stream.
    streams = {
        (cache, engine): greedy_generate(model, prompt, num_new,
                                         cache=cache, engine=engine)
        for cache in (False, True)
        for engine in ("eager", "compiled")
    }
    reference = streams[(True, "compiled")]
    print("generated tokens     :", reference)
    print("all four paths agree :",
          all(stream == reference for stream in streams.values()))

    # 2. The compiled step specializes per (batch, cache-capacity) with
    #    capacity bucketed in powers of two — 28 positions decoded above,
    #    far fewer plans traced.
    step = model.compiled_step()
    print("positions decoded    :", len(prompt) + num_new - 1)
    print("bucket plans traced  :", step.specializations,
          sorted(step.stats()["signatures"]))

    # 3. Engine selection through the central config: kwarg > context >
    #    env (REPRO_DECODE_ENGINE) > default, like every other engine.
    with engine_config.use(decode_engine="compiled"):
        contextual = greedy_generate(model, prompt, num_new, cache=True)
    print("config-driven decode :", contextual == reference)

    # 4. Served decode: each session owns a KV cache; every drain groups
    #    live sessions by cache bucket and runs ONE batched compiled step
    #    per group, so concurrent streams share plans and batches.
    prompts = [prompt, [3, 3, 9], [11, 0, 5, 8, 2], [6, 1]]
    direct = [greedy_generate(model, p, num_new, cache=True, engine="eager")
              for p in prompts]
    with BatchingServer(model, max_batch=8, max_wait_ms=2.0,
                        decode_engine="compiled") as server:
        results = [None] * len(prompts)

        def run(index):
            results[index] = server.generate(prompts[index], num_new, timeout=120)

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(len(prompts))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = server.stats()
        health = server.health()

    print("served == direct     :", results == direct)
    print("decode steps/batches : %d / %d (mean group %.1f)"
          % (stats.decode_steps, stats.decode_batches,
             stats.decode_steps / stats.decode_batches))
    print("decode latency keys  :",
          [key for key in health["bucket_latency_ms"] if key.startswith("decode/")])


if __name__ == "__main__":
    main()
