"""Quantized segmentation fine-tuning with pwl-replaced operators (Table 4/5).

This example walks the full fine-tuning protocol on the MiniEfficientViT
substitute (HSWISH + DIV, the Table 5 model family):

1. pre-train the float model on the synthetic segmentation dataset,
2. build the INT8 LSQ-quantized baseline and fine-tune it,
3. replace HSWISH and DIV with searched GQA-LUT approximations and fine-tune
   again,
4. report the mIoU of each stage.

Run with::

    python examples/segmentation_finetune.py [--quick] [--model segformer|efficientvit]
"""

import argparse

from repro.experiments.finetune import FinetuneBudget
from repro.experiments.methods import ApproximationBudget
from repro.experiments.table4 import run_table4, format_table4
from repro.experiments.table5 import run_table5, format_table5


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="tiny budget for smoke runs")
    parser.add_argument("--model", choices=("segformer", "efficientvit"),
                        default="efficientvit")
    parser.add_argument("--all-rows", action="store_true",
                        help="also fine-tune each operator replaced on its own")
    args = parser.parse_args()

    if args.quick:
        budget = FinetuneBudget.quick()
        approx_budget = ApproximationBudget.quick()
    else:
        budget = FinetuneBudget(pretrain_epochs=20, finetune_epochs=4,
                                num_train=64, num_val=24, image_size=24, embed_dim=24)
        approx_budget = ApproximationBudget()

    if args.model == "segformer":
        result = run_table4(budget=budget, approx_budget=approx_budget,
                            include_individual=args.all_rows)
        print(format_table4(result))
    else:
        result = run_table5(budget=budget, approx_budget=approx_budget,
                            include_individual=args.all_rows)
        print(format_table5(result))

    print("\nbaseline (INT8, exact non-linearities) mIoU: %.2f%%" % (100 * result.baseline_miou))
    for method in ("nn-lut", "gqa-wo-rm", "gqa-rm"):
        try:
            row = result.row(method, "altogether")
        except KeyError:
            continue
        print("%-10s altogether mIoU %.2f%%  (degradation %+.2f%%)"
              % (method, 100 * row.miou, -100 * row.degradation))


if __name__ == "__main__":
    main()
