"""Hardware costs of the pwl unit and Verilog export (Table 6).

The script prints the Table 6 sweep from the calibrated 28-nm cost model,
shows the per-component breakdown of the INT8 unit, and writes synthesizable
Verilog RTL (plus a self-checking testbench) for a freshly searched GELU
LUT so the datapath can be pushed through a real synthesis flow.

Run with::

    python examples/hardware_report.py [--out-dir rtl/]
"""

import argparse
import os

from repro import GQALUT
from repro.experiments.table6 import format_table6_experiment, run_table6
from repro.hardware import (
    Precision,
    estimate_pwl_unit,
    format_synthesis_report,
    generate_pwl_verilog,
    generate_testbench,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="rtl", help="directory for generated Verilog")
    parser.add_argument("--scale", type=float, default=2.0 ** -4,
                        help="power-of-two deployment scale for the generated RTL")
    args = parser.parse_args()

    # Table 6 sweep plus headline savings.
    print(format_table6_experiment(run_table6()))
    print()

    # Per-component breakdown of the INT8 quantization-aware unit.
    print(format_synthesis_report(estimate_pwl_unit(Precision.INT8, 8, calibrate=False)))
    print()

    # Search a GELU LUT and export RTL for it.
    outcome = GQALUT.for_operator("gelu", num_entries=8, use_rm=True).search(
        generations=120, seed=0
    )
    lut = outcome.quantized_lut(scale=args.scale)
    os.makedirs(args.out_dir, exist_ok=True)
    rtl_path = os.path.join(args.out_dir, "gqa_lut_gelu.v")
    tb_path = os.path.join(args.out_dir, "gqa_lut_gelu_tb.v")
    with open(rtl_path, "w") as handle:
        handle.write(generate_pwl_verilog(lut, module_name="gqa_lut_gelu"))
    with open(tb_path, "w") as handle:
        handle.write(generate_testbench(lut, module_name="gqa_lut_gelu"))
    print("wrote %s and %s" % (rtl_path, tb_path))
    print("searched breakpoints quantized at S=%g: %s"
          % (args.scale, lut.quantized_breakpoints.tolist()))


if __name__ == "__main__":
    main()
