"""Operator-level comparison: GQA-LUT vs NN-LUT vs static baselines.

Reproduces a compact version of Table 3 / Fig. 3: for each non-linear
operator the script searches a GQA-LUT (with and without Rounding Mutation),
trains the NN-LUT baseline, fits uniform/Chebyshev breakpoints, and reports
the average INT8 quantization-aware MSE of each.

Wide-range operators (DIV, RSQRT) are evaluated through the Table 2
multi-range input scaling.

Run with::

    python examples/operator_comparison.py [--quick]
"""

import argparse

from repro.baselines.chebyshev import chebyshev_pwl
from repro.baselines.uniform import uniform_pwl
from repro.core.config import default_config
from repro.experiments.methods import ApproximationBudget, build_approximation
from repro.experiments.protocol import average_mse

OPERATORS = ("gelu", "hswish", "exp", "div", "rsqrt")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="use a tiny search budget (for smoke runs)")
    parser.add_argument("--entries", type=int, default=8, help="LUT entry count")
    args = parser.parse_args()

    budget = ApproximationBudget.quick() if args.quick else ApproximationBudget()

    header = "%-8s" % "op" + "".join(
        "%14s" % m for m in ("nn-lut", "gqa-wo-rm", "gqa-rm", "uniform", "chebyshev")
    )
    print(header)
    for operator in OPERATORS:
        config = default_config(operator)
        fn = config.function()
        row = "%-8s" % operator
        for method in ("nn-lut", "gqa-wo-rm", "gqa-rm"):
            pwl = build_approximation(operator, method, num_entries=args.entries,
                                      budget=budget)
            row += "%14.2e" % average_mse(operator, pwl)
        row += "%14.2e" % average_mse(
            operator, uniform_pwl(fn, args.entries).to_fixed_point(config.frac_bits)
        )
        row += "%14.2e" % average_mse(
            operator, chebyshev_pwl(fn, args.entries).to_fixed_point(config.frac_bits)
        )
        print(row)

    print("\n(lower is better; scale-dependent ops average the 2^0..2^-6 sweep,")
    print(" DIV/RSQRT use Table 2 multi-range input scaling)")


if __name__ == "__main__":
    main()
