"""Quickstart: search an INT8 quantization-aware GELU approximation.

This is the 60-second tour of the library:

1. run the GQA-LUT genetic search (Algorithm 1 + Rounding Mutation) for an
   8-entry GELU look-up table,
2. inspect the searched breakpoints and fixed-point parameters,
3. deploy the LUT at a power-of-two scaling factor and compare against the
   exact operator,
4. sweep the scaling factors of Fig. 2(a)/Fig. 3 to see the
   quantization-aware accuracy,
5. re-run the search under the legacy engines via the central engine
   config — one ``with`` block instead of threading ``engine=`` kwargs,
6. deploy the searched pwl inside a segmentation model and predict
   through the compiled inference engine (traced once, then replayed),
7. hot-swap a re-searched LUT into a live replicated fleet — the canary
   gate verifies each replica bit-for-bit before promoting it,
8. make a sweep durable with a ``run_dir`` — kill the process at any
   instant and ``SweepEngine.resume`` finishes the grid from the journal
   without rebuilding a single completed cell,
9. fine-tune through the compiled training engine — the whole step
   (forward + backward + optimizer) traced once and replayed from a
   static plan, bit-identical to the eager loop,
10. greedy-decode from a quantized decoder block through the KV-cached
    compiled incremental step — O(T) instead of O(T²), a handful of
    power-of-two cache-bucket plans instead of one trace per position
    (see ``examples/decode_demo.py`` for the served, batched version).

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import GQALUT, get_function
from repro.core import engine_config


def main() -> None:
    # 1. Search.  Table 1 defaults: 7 breakpoints, population 50, lambda=5.
    #    A couple hundred generations is plenty for an 8-entry LUT.
    searcher = GQALUT.for_operator("gelu", num_entries=8, use_rm=True)
    outcome = searcher.search(generations=200, seed=0)

    print("searched breakpoints :", np.round(outcome.breakpoints, 4))
    print("FXP slopes           :", outcome.pwl_fxp.slopes)
    print("FXP intercepts       :", outcome.pwl_fxp.intercepts)
    print("float-domain MSE     : %.3e" % outcome.float_mse())

    # 2. Deploy at a power-of-two scaling factor (the scale the LSQ quantizer
    #    in front of the operator would learn, e.g. S = 2^-4).
    scale = 2.0 ** -4
    lut = outcome.quantized_lut(scale=scale)
    x = np.linspace(-4, 4, 9)
    exact = get_function("gelu")(x)
    approx = lut(x)
    print("\nx        :", x)
    print("gelu(x)  :", np.round(exact, 4))
    print("pwl(x)   :", np.round(approx, 4))

    # 3. Quantization-aware accuracy across the paper's scale sweep.
    print("\nMSE per scaling factor (Section 4.1 protocol):")
    for s, mse in outcome.evaluate().items():
        print("  S = 2^%-3d  MSE = %.3e" % (round(np.log2(s)), mse))
    print("average MSE: %.3e" % outcome.average_mse())

    # 4. Engine selection happens once, through the central config, instead
    #    of engine= kwargs at every call site.  Every engine choice is
    #    bit-identical for seeded runs — the override below reproduces the
    #    exact same breakpoints on the reference (per-individual, per-pass)
    #    code paths.  Resolution order: kwarg > context > env (REPRO_GA_ENGINE,
    #    REPRO_PWL_ENGINE, ...) > default.
    with engine_config.use(ga_engine="legacy", pwl_engine="legacy"):
        legacy_outcome = searcher.search(generations=200, seed=0)
    identical = np.array_equal(legacy_outcome.breakpoints, outcome.breakpoints)
    print("\nlegacy-engine rerun identical:", identical)

    # 5. Compiled model inference: drop the searched GELU pwl into a
    #    MiniSegformer and predict through the traced-graph executor
    #    (REPRO_INFER_ENGINE=compiled does the same globally).  The first
    #    compiled call traces + optimises; repeats replay the plan, and
    #    predictions are bit-identical to the eager path.
    from repro.nn.approx import PWLSuite
    from repro.nn.models import MiniSegformer, ModelConfig

    suite = PWLSuite(approximations={"gelu": outcome.pwl_fxp}, replace={"gelu"})
    model = MiniSegformer(ModelConfig(image_size=16, embed_dim=16, depth=1), suite=suite)
    model.eval()
    images = np.random.default_rng(0).normal(size=(2, 16, 16, 3))
    eager_pred = model.predict(images, engine="eager")
    compiled_pred = model.predict(images, engine="compiled")
    print("compiled == eager predictions:", np.array_equal(compiled_pred, eager_pred))

    # 6. Rolling hot-swap: serve the model from a 2-replica fleet, then
    #    deploy a *better* GELU table (a deeper search) into the running
    #    service.  swap_state drains each replica, applies the new
    #    weights + LUT tables, and bit-compares its canary prediction
    #    against the reference model before promoting — a corrupt or
    #    divergent replica is rolled back instead of serving garbage.
    from repro.serve import ReplicatedServer

    better = searcher.search(generations=400, seed=1)
    with ReplicatedServer(model, replicas=2, max_batch=8,
                          canary=images[0]) as fleet:
        report = fleet.swap_state(
            dict(model.state_dict()), lut_tables={"gelu": better.pwl_fxp}
        )
        # The reference model carries the new table too; every replica
        # answer must match it bit-for-bit (the canary gate enforced the
        # same parity per replica before promotion).
        served = fleet.predict(images[1], timeout=30.0)
        expected = model.predict(images[1][None], engine="eager")[0]
        print("hot-swap promoted %d replicas to generation %d "
              "(fleet == reference: %s)"
              % (report["swapped"], report["model_generation"],
                 np.array_equal(served, expected)))
        fleet.drain(timeout=30.0)  # graceful: outstanding work finishes first

    # 7. Kill-and-resume: give a sweep a run_dir and every cell transition
    #    is journaled (fsync'd, torn-tail tolerant) while artifacts land
    #    in a content-addressed store under run_dir/artifacts.  We mimic a
    #    crash by abandoning the engine halfway through the grid; a fresh
    #    process then resumes from the journal alone — completed cells are
    #    answered from the store (bit-identical, zero rebuilds) — and the
    #    rest of the grid reuses the same run_dir, building only what is
    #    missing.
    import tempfile
    from pathlib import Path

    from repro.experiments import ApproximationBudget, SweepEngine, approximation_jobs

    run_dir = Path(tempfile.mkdtemp(prefix="quickstart-")) / "grid-0"
    grid = approximation_jobs(("gelu", "exp"), ("nn-lut", "gqa-rm"),
                              budget=ApproximationBudget.quick())

    interrupted = SweepEngine(run_dir=run_dir)
    interrupted.run_manifest(grid[:2])          # ... SIGKILL lands here ...
    interrupted.close()                          # (simulated crash)

    resumed = SweepEngine().resume(run_dir)      # journal -> remaining work
    print("\nresume after crash: %d cells from the store, %d rebuilt -> ok=%s"
          % (resumed.stats.cache_hits, resumed.stats.builds, resumed.ok))

    finished = SweepEngine(run_dir=run_dir)
    full = finished.run_manifest(grid)           # the full grid, same run_dir
    print("full grid over the same run_dir: %d rebuilt (everything durable)"
          % full.stats.builds)
    finished.close()

    # 8. Compiled fine-tuning: train_engine="compiled" traces the entire
    #    training step — forward, cross-entropy, backward, and the
    #    optimizer update — into one optimised graph on the first batch,
    #    then replays it per batch (REPRO_TRAIN_ENGINE=compiled does the
    #    same globally, and engine_config.use(train_engine=...) scopes
    #    it).  The contract is bit-identity: per-step losses and final
    #    weights match the eager loop exactly.
    from repro.nn.training import Trainer, TrainingConfig

    rng = np.random.default_rng(7)
    train_images = rng.normal(size=(8, 16, 16, 3))
    train_labels = rng.integers(0, 3, size=(8, 16, 16))

    def finetune(engine):
        net = MiniSegformer(ModelConfig(image_size=16, embed_dim=16, depth=1),
                            suite=suite)
        trainer = Trainer(net, TrainingConfig(epochs=1, batch_size=4, seed=11))
        result = trainer.fit(train_images, train_labels, num_classes=3,
                             train_engine=engine)
        return result.losses, net.state_dict()

    eager_losses, eager_state = finetune("eager")
    compiled_losses, compiled_state = finetune("compiled")
    print("\ncompiled fine-tune losses identical:",
          compiled_losses == eager_losses)
    print("compiled fine-tune weights identical:",
          all(np.array_equal(compiled_state[k], eager_state[k])
              for k in eager_state))

    # 9. KV-cached autoregressive decode: the searched GELU pwl inside a
    #    causal decoder block, greedy-decoding through the compiled
    #    incremental step (decode_engine="compiled", or globally via
    #    REPRO_DECODE_ENGINE).  The KV cache makes each token O(1) model
    #    work instead of re-running the whole prefix, and cache capacity
    #    is bucketed in powers of two so the compiled step traces only a
    #    handful of plans for the whole stream.
    from repro.nn import DecoderConfig, MiniDecoder, greedy_generate

    decoder = MiniDecoder(DecoderConfig(vocab_size=32, max_seq=64,
                                        embed_dim=32, depth=2, seed=3),
                          suite=suite)
    decoder.eval()
    prompt = [1, 4, 7, 2]
    cached = greedy_generate(decoder, prompt, 20, cache=True, engine="compiled")
    uncached = greedy_generate(decoder, prompt, 20, cache=False, engine="eager")
    print("\nKV-cached decode stream:", cached)
    print("matches uncached O(T^2) baseline:", cached == uncached)
    print("cache-bucket plans traced:", decoder.compiled_step().specializations)


if __name__ == "__main__":
    main()
