"""Optimize: deterministic rewrite passes over the traced :class:`Graph`.

Four passes, composed by :func:`optimize` (each takes and returns a
:class:`~repro.graph.ir.Graph`; none mutates its input):

* :func:`fold_constants` — evaluate every node whose inputs are all
  constants once at compile time.  This collapses the parameter-only
  subtrees the eager path re-runs per call: LSQ weight fake-quantization
  chains, power-of-two scale snapping (``abs → log → round_ste → exp``),
  lifted scalar arithmetic.
* :func:`fuse_dense_lookups` — recognise the quantize → output-gather →
  slope-gather kernels the dense-LUT engine dispatches
  (``apply_elementwise_fused`` bound to :meth:`DenseLUT.lookup_with_slope`
  or :meth:`MultiRangePWL.lookup_with_slope`) and rewrite them to
  inference-only graph kernels that skip the slope gather entirely —
  inference consumes the output table only.
* :func:`dead_code_elimination` — drop nodes (and constants) that no
  graph output transitively consumes.
* :func:`plan_memory` — not a rewrite but the liveness analysis the
  executor replays: every value gets a buffer slot, slots are released at
  each value's last use and reused for later values, so steady-state
  inference holds only the live set instead of every intermediate.

All passes are semantics-preserving by construction: folding runs the
exact registered forward on the exact captured arrays, fusion swaps in a
kernel documented (and pinned by the engine-parity tests) to be
bit-identical to the fused pair's output half, and DCE only removes
unobservable work.  Compiled results therefore match eager bit for bit.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.core.lut import DenseLUT
from repro.graph.ir import Graph, Node
from repro.nn import ops as _ops
from repro.scaling.multi_range import MultiRangePWL

#: Inference-only kernels the fusion pass introduces.  Each entry maps the
#: node's params to the array-level callable the executor invokes; these
#: live outside the :mod:`repro.nn.ops` VJP registry on purpose — they have
#: no gradients and exist only inside compiled graphs.
GRAPH_KERNELS = {
    # One quantize pass + one gather from the dense output table
    # (bit-identical to the output half of DenseLUT.lookup_with_slope).
    "dense_lookup": lambda params: params["table"].__call__,
    # Single-searchsorted classify/rescale over the slot tables
    # (bit-identical to the output half of MultiRangePWL.lookup_with_slope).
    "multirange_lookup": lambda params: params["table"].lookup,
}


def dead_code_elimination(graph: Graph) -> Graph:
    """Remove nodes and constants no graph output transitively needs.

    Graph inputs are kept even when unused — they are the call signature.
    """
    needed = set(graph.outputs)
    kept_reversed: List[Node] = []
    for node in reversed(graph.nodes):
        if node.output in needed:
            kept_reversed.append(node)
            needed.update(node.inputs)
    return Graph(
        inputs=list(graph.inputs),
        outputs=list(graph.outputs),
        nodes=list(reversed(kept_reversed)),
        constants={v: a for v, a in graph.constants.items() if v in needed},
        num_values=graph.num_values,
    )


def fold_constants(graph: Graph) -> Graph:
    """Evaluate nodes whose inputs are all constants at compile time.

    The node's registered forward runs once on the captured arrays and the
    result becomes a constant, so the executor never revisits the subtree.
    Graph kernels (no registry entry) and nodes with non-constant inputs
    pass through untouched.  Run :func:`dead_code_elimination` afterwards
    to drop the source constants the folded nodes consumed.
    """
    constants = dict(graph.constants)
    nodes: List[Node] = []
    for node in graph.nodes:
        try:
            op = _ops.get_op(node.op)
        except KeyError:
            nodes.append(node)
            continue
        if all(vid in constants for vid in node.inputs):
            arrays = [constants[vid] for vid in node.inputs]
            out, _ = _ops.run_forward(op, *arrays, **node.params)
            constants[node.output] = out
        else:
            nodes.append(node)
    return Graph(
        inputs=list(graph.inputs),
        outputs=list(graph.outputs),
        nodes=nodes,
        constants=constants,
        num_values=graph.num_values,
    )


def fuse_dense_lookups(graph: Graph) -> Graph:
    """Rewrite fused LUT dispatches to output-only inference kernels.

    The dense engine's training form computes output *and* slope in one
    pass (the slope feeds backward).  Inference needs only the output, so
    an ``elementwise_fused`` node whose callable is bound to
    ``DenseLUT.lookup_with_slope`` becomes a ``dense_lookup`` kernel (one
    quantize + one gather) and one bound to
    ``MultiRangePWL.lookup_with_slope`` becomes a ``multirange_lookup``
    kernel (one classify + pwl evaluation), dropping the slope gather.
    """
    nodes: List[Node] = []
    for node in graph.nodes:
        replacement = None
        if node.op == "elementwise_fused":
            fused_fn = node.params.get("fused_fn")
            owner = getattr(fused_fn, "__self__", None)
            method = getattr(fused_fn, "__name__", "")
            if method == "lookup_with_slope":
                if isinstance(owner, DenseLUT):
                    replacement = "dense_lookup"
                elif isinstance(owner, MultiRangePWL):
                    replacement = "multirange_lookup"
        if replacement is not None:
            nodes.append(
                Node(
                    op=replacement,
                    inputs=node.inputs,
                    output=node.output,
                    params={"table": owner},
                    label=node.label,
                )
            )
        else:
            nodes.append(node)
    return Graph(
        inputs=list(graph.inputs),
        outputs=list(graph.outputs),
        nodes=nodes,
        constants=dict(graph.constants),
        num_values=graph.num_values,
    )


#: Default pipeline: fold parameter subtrees, fuse LUT kernels, then sweep
#: the now-dead slope machinery and folded-away source constants.
DEFAULT_PASSES: Tuple[str, ...] = ("fold", "fuse", "dce")

_PASS_TABLE = {
    "fold": fold_constants,
    "fuse": fuse_dense_lookups,
    "dce": dead_code_elimination,
}


def optimize(graph: Graph, passes: Sequence[str] = DEFAULT_PASSES) -> Graph:
    """Run the named passes in order and validate the result."""
    for name in passes:
        try:
            pass_fn = _PASS_TABLE[name]
        except KeyError:
            raise ValueError(
                "unknown pass %r; available: %s" % (name, sorted(_PASS_TABLE))
            ) from None
        graph = pass_fn(graph)
    graph.validate()
    return graph


# -- liveness-based buffer planning ---------------------------------------------


@dataclasses.dataclass(frozen=True)
class MemoryPlan:
    """Slot assignment produced by :func:`plan_memory`.

    ``slots`` maps every value id to a buffer slot in the executor's
    environment list.  ``constant_slots`` is the subset holding bound
    constants (prefilled once, never released).  ``releases[i]`` lists the
    slots to clear immediately after node ``i`` runs — each is the slot of
    a value whose last consumer was node ``i`` — which drops the array
    reference so the allocator can reuse the memory (views pin their base
    arrays through normal refcounting, so releasing a base early is safe).
    ``num_slots`` is the environment size; ``peak_live`` counts the most
    dynamic (non-constant) slots ever simultaneously occupied — the
    steady-state working set.
    """

    slots: Dict[int, int]
    constant_slots: Dict[int, int]
    releases: Tuple[Tuple[int, ...], ...]
    num_slots: int
    peak_live: int


def plan_memory(graph: Graph) -> MemoryPlan:
    """Assign buffer slots by liveness so later values reuse dead slots."""
    slots: Dict[int, int] = {}
    constant_slots: Dict[int, int] = {}
    for vid in sorted(graph.constants):
        slot = len(slots)
        slots[vid] = slot
        constant_slots[vid] = slot
    next_slot = len(slots)

    last_use: Dict[int, int] = {}
    for index, node in enumerate(graph.nodes):
        for vid in node.inputs:
            last_use[vid] = index
    never_released = set(graph.outputs) | set(constant_slots)

    free: List[int] = []
    peak_live = 0
    live = 0

    def acquire(vid: int) -> None:
        nonlocal next_slot, live, peak_live
        if free:
            slots[vid] = free.pop()
        else:
            slots[vid] = next_slot
            next_slot += 1
        live += 1
        peak_live = max(peak_live, live)

    for vid in graph.inputs:
        acquire(vid)

    releases: List[Tuple[int, ...]] = []
    for index, node in enumerate(graph.nodes):
        acquire(node.output)
        dead: List[int] = []
        candidates = set(node.inputs)
        # A value produced but never consumed (and not a graph output) dies
        # immediately; DCE removes these, but the plan must not rely on it.
        candidates.add(node.output)
        for vid in candidates:
            if vid in never_released:
                continue
            if last_use.get(vid, -1) <= index and vid in slots:
                slot = slots[vid]
                if slot not in dead and vid not in constant_slots:
                    dead.append(slot)
        for slot in dead:
            free.append(slot)
        live -= len(dead)
        releases.append(tuple(sorted(dead)))

    return MemoryPlan(
        slots=slots,
        constant_slots=constant_slots,
        releases=tuple(releases),
        num_slots=next_slot,
        peak_live=peak_live,
    )
