"""Optimize: deterministic rewrite passes over the traced :class:`Graph`.

Four passes, composed by :func:`optimize` (each takes and returns a
:class:`~repro.graph.ir.Graph`; none mutates its input):

* :func:`fold_constants` — evaluate every node whose inputs are all
  constants once at compile time.  This collapses the parameter-only
  subtrees the eager path re-runs per call: LSQ weight fake-quantization
  chains, power-of-two scale snapping (``abs → log → round_ste → exp``),
  lifted scalar arithmetic.
* :func:`fuse_dense_lookups` — recognise the quantize → output-gather →
  slope-gather kernels the dense-LUT engine dispatches
  (``apply_elementwise_fused`` bound to :meth:`DenseLUT.lookup_with_slope`
  or :meth:`MultiRangePWL.lookup_with_slope`) and rewrite them to
  inference-only graph kernels that skip the slope gather entirely —
  inference consumes the output table only.
* :func:`dead_code_elimination` — drop nodes (and constants) that no
  graph output transitively consumes.
* :func:`plan_memory` — not a rewrite but the liveness analysis the
  executor replays: every value gets a buffer slot, slots are released at
  each value's last use and reused for later values, so steady-state
  inference holds only the live set instead of every intermediate.

All passes are semantics-preserving by construction: folding runs the
exact registered forward on the exact captured arrays, fusion swaps in a
kernel documented (and pinned by the engine-parity tests) to be
bit-identical to the fused pair's output half, and DCE only removes
unobservable work.  Compiled results therefore match eager bit for bit.

Training graphs (PR 9) add one wrinkle and one pass:

* nodes may carry a ``saved_output`` — a second value id holding the
  forward's stashed intermediate (the fused LUT slope) that a traced VJP
  node consumes.  Every pass here treats it as a real produced value.
* :func:`fuse_elementwise_chains` — generalises the dense-LUT fusion:
  maximal single-consumer chains of element-wise registry ops (forward
  *and* traced-VJP chains alike) collapse into one ``fused_chain`` graph
  kernel that runs the exact same forwards in the exact same order from
  one dispatch, so replay pays one step instead of one per link.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.core.lut import DenseLUT
from repro.graph.ir import Graph, Node
from repro.nn import ops as _ops
from repro.scaling.multi_range import MultiRangePWL

#: Inference-only kernels the fusion pass introduces.  Each entry maps the
#: node's params to the array-level callable the executor invokes; these
#: live outside the :mod:`repro.nn.ops` VJP registry on purpose — they have
#: no gradients and exist only inside compiled graphs.
def _fused_chain_kernel(params):
    """Build the callable for a ``fused_chain`` node.

    ``params["steps"]`` is a tuple of ``(op_name, op_params, arg_spec)``
    triples; ``arg_spec`` maps each step argument to either the previous
    step's result (``-1``, the carry) or an index into the fused node's
    external inputs.  Each step runs the *registered* forward of its op, so
    the fused kernel is bit-identical to the unfused chain by construction
    — it is literally the same functions in the same order, minus the
    per-node executor dispatch.
    """
    resolved = tuple(
        (_ops.get_op(op_name).forward, op_params, arg_spec)
        for op_name, op_params, arg_spec in params["steps"]
    )

    def run(*arrays):
        carry = None
        for forward, op_params, arg_spec in resolved:
            out = forward(
                *[carry if j < 0 else arrays[j] for j in arg_spec], **op_params
            )
            if type(out) is tuple:  # (output, saved): chains never keep saved
                out = out[0]
            carry = out
        return carry

    return run


GRAPH_KERNELS = {
    # One quantize pass + one gather from the dense output table
    # (bit-identical to the output half of DenseLUT.lookup_with_slope).
    "dense_lookup": lambda params: params["table"].__call__,
    # Single-searchsorted classify/rescale over the slot tables
    # (bit-identical to the output half of MultiRangePWL.lookup_with_slope).
    "multirange_lookup": lambda params: params["table"].lookup,
    # A collapsed single-consumer chain of element-wise registry ops
    # (see fuse_elementwise_chains).
    "fused_chain": _fused_chain_kernel,
}


def dead_code_elimination(graph: Graph) -> Graph:
    """Remove nodes and constants no graph output transitively needs.

    Graph inputs are kept even when unused — they are the call signature.
    """
    needed = set(graph.outputs)
    kept_reversed: List[Node] = []
    for node in reversed(graph.nodes):
        saved_needed = node.saved_output is not None and node.saved_output in needed
        if node.output in needed or saved_needed:
            if node.saved_output is not None and not saved_needed:
                # The node survives but nothing consumes its saved half any
                # more; drop the extra output so the executor discards it.
                node = dataclasses.replace(node, saved_output=None)
            kept_reversed.append(node)
            needed.update(node.inputs)
    return Graph(
        inputs=list(graph.inputs),
        outputs=list(graph.outputs),
        nodes=list(reversed(kept_reversed)),
        constants={v: a for v, a in graph.constants.items() if v in needed},
        num_values=graph.num_values,
    )


def fold_constants(graph: Graph) -> Graph:
    """Evaluate nodes whose inputs are all constants at compile time.

    The node's registered forward runs once on the captured arrays and the
    result becomes a constant, so the executor never revisits the subtree.
    Graph kernels (no registry entry) and nodes with non-constant inputs
    pass through untouched.  Run :func:`dead_code_elimination` afterwards
    to drop the source constants the folded nodes consumed.
    """
    constants = dict(graph.constants)
    nodes: List[Node] = []
    for node in graph.nodes:
        try:
            op = _ops.get_op(node.op)
        except KeyError:
            nodes.append(node)
            continue
        if all(vid in constants for vid in node.inputs):
            arrays = [constants[vid] for vid in node.inputs]
            out, saved = _ops.run_forward(op, *arrays, **node.params)
            constants[node.output] = out
            if node.saved_output is not None:
                # Fold the saved half too — its consumers may fold in turn.
                constants[node.saved_output] = saved
        else:
            nodes.append(node)
    return Graph(
        inputs=list(graph.inputs),
        outputs=list(graph.outputs),
        nodes=nodes,
        constants=constants,
        num_values=graph.num_values,
    )


def fuse_dense_lookups(graph: Graph) -> Graph:
    """Rewrite fused LUT dispatches to output-only inference kernels.

    The dense engine's training form computes output *and* slope in one
    pass (the slope feeds backward).  Inference needs only the output, so
    an ``elementwise_fused`` node whose callable is bound to
    ``DenseLUT.lookup_with_slope`` becomes a ``dense_lookup`` kernel (one
    quantize + one gather) and one bound to
    ``MultiRangePWL.lookup_with_slope`` becomes a ``multirange_lookup``
    kernel (one classify + pwl evaluation), dropping the slope gather.
    """
    nodes: List[Node] = []
    for node in graph.nodes:
        replacement = None
        # A consumed saved_output means the slope feeds a traced VJP node
        # (training graph): the output-only kernel would drop it, so the
        # fused training form must stay.
        if node.op == "elementwise_fused" and node.saved_output is None:
            fused_fn = node.params.get("fused_fn")
            owner = getattr(fused_fn, "__self__", None)
            method = getattr(fused_fn, "__name__", "")
            if method == "lookup_with_slope":
                if isinstance(owner, DenseLUT):
                    replacement = "dense_lookup"
                elif isinstance(owner, MultiRangePWL):
                    replacement = "multirange_lookup"
        if replacement is not None:
            nodes.append(
                Node(
                    op=replacement,
                    inputs=node.inputs,
                    output=node.output,
                    params={"table": owner},
                    label=node.label,
                )
            )
        else:
            nodes.append(node)
    return Graph(
        inputs=list(graph.inputs),
        outputs=list(graph.outputs),
        nodes=nodes,
        constants=dict(graph.constants),
        num_values=graph.num_values,
    )


def fuse_elementwise_chains(graph: Graph) -> Graph:
    """Collapse single-consumer chains of element-wise ops into one kernel.

    Generalises the dense-LUT fusion pattern across arbitrary ops: any
    maximal chain ``a → b → c`` where every link is an element-wise
    registry op (or a traced VJP of one), each intermediate value has
    exactly one consumer and is not a graph output, becomes one
    ``fused_chain`` node at the last link's position.  The kernel replays
    the registered forwards in the original order (see
    :func:`_fused_chain_kernel`), so results are bit-identical; the win is
    one executor step — one dispatch, one slot write, one release scan —
    instead of one per link.  Links need not be adjacent in the node list;
    moving an earlier link down to the tail is safe because its output has
    no consumer other than the chain itself.

    Applied to traced training graphs this fuses both forward activation
    arithmetic (gelu's polynomial, hswish) and the mirrored VJP chains the
    backward capture emits.  ``unbroadcast`` links fuse too: though not
    element-wise (they sum the carry down to a parameter's shape), each is
    a pure function of carry + a static ``shape`` param, so the kernel
    replays its registered forward like any other step — this pulls the
    grad-reduction node that terminates most backward chains into the
    chain that produced the gradient instead of leaving a one-op
    remainder.  Nodes whose ``saved_output`` is consumed stay unfused —
    the chain kernel returns only the carry.
    """
    consumers: Dict[int, set] = {}
    for index, node in enumerate(graph.nodes):
        for vid in node.inputs:
            consumers.setdefault(vid, set()).add(index)
    output_vids = set(graph.outputs)

    def fusable(node: Node) -> bool:
        if node.saved_output is not None:
            return False
        if node.op in _ops.ELEMENTWISE_OPS or node.op == "unbroadcast":
            return True
        base = _ops.vjp_base(node.op)
        return base is not None and base in _ops.ELEMENTWISE_OPS

    # Link each fusable node to its unique fusable consumer (chain edges).
    nxt: Dict[int, int] = {}
    prev: Dict[int, int] = {}
    for index, node in enumerate(graph.nodes):
        if not fusable(node) or node.output in output_vids:
            continue
        cons = consumers.get(node.output, set())
        if len(cons) != 1:
            continue
        nxt_index = next(iter(cons))
        if nxt_index in prev or not fusable(graph.nodes[nxt_index]):
            # A node has at most one carry predecessor: when two producers
            # both feed the same consumer exclusively, the first claims the
            # chain and the other stays an external input.
            continue
        nxt[index] = nxt_index
        prev[nxt_index] = index

    replaced: Dict[int, Node] = {}   # tail index -> fused node
    dropped: set = set()             # non-tail chain member indices
    for head in sorted(nxt):
        if head in prev:
            continue  # not a chain head
        chain = [head]
        while chain[-1] in nxt:
            chain.append(nxt[chain[-1]])
        if len(chain) < 2:
            continue
        externals: List[int] = []
        steps = []
        carry_vid = None
        for link_index in chain:
            link = graph.nodes[link_index]
            spec: List[int] = []
            for vid in link.inputs:
                if carry_vid is not None and vid == carry_vid:
                    spec.append(-1)
                    continue
                if vid not in externals:
                    externals.append(vid)
                spec.append(externals.index(vid))
            steps.append((link.op, dict(link.params), tuple(spec)))
            carry_vid = link.output
        tail = chain[-1]
        replaced[tail] = Node(
            op="fused_chain",
            inputs=tuple(externals),
            output=graph.nodes[tail].output,
            params={"steps": tuple(steps)},
            label=",".join(graph.nodes[i].op for i in chain),
        )
        dropped.update(chain[:-1])

    nodes: List[Node] = []
    for index, node in enumerate(graph.nodes):
        if index in dropped:
            continue
        nodes.append(replaced.get(index, node))
    return Graph(
        inputs=list(graph.inputs),
        outputs=list(graph.outputs),
        nodes=nodes,
        constants=dict(graph.constants),
        num_values=graph.num_values,
    )


#: Default pipeline: fold parameter subtrees, fuse LUT kernels, then sweep
#: the now-dead slope machinery and folded-away source constants.
DEFAULT_PASSES: Tuple[str, ...] = ("fold", "fuse", "dce")

#: Training pipeline: same folding/LUT fusion (the LUT pass skips nodes
#: whose slope feeds backward), then chain fusion over the joint
#: forward+backward+update graph.  Chain fusion runs after DCE so dead
#: saved_outputs are already stripped and fuse maximally.
TRAIN_PASSES: Tuple[str, ...] = ("fold", "fuse", "dce", "fuse_chains")

_PASS_TABLE = {
    "fold": fold_constants,
    "fuse": fuse_dense_lookups,
    "dce": dead_code_elimination,
    "fuse_chains": fuse_elementwise_chains,
}


def optimize(graph: Graph, passes: Sequence[str] = DEFAULT_PASSES) -> Graph:
    """Run the named passes in order and validate the result."""
    for name in passes:
        try:
            pass_fn = _PASS_TABLE[name]
        except KeyError:
            raise ValueError(
                "unknown pass %r; available: %s" % (name, sorted(_PASS_TABLE))
            ) from None
        graph = pass_fn(graph)
    graph.validate()
    return graph


# -- liveness-based buffer planning ---------------------------------------------


@dataclasses.dataclass(frozen=True)
class MemoryPlan:
    """Slot assignment produced by :func:`plan_memory`.

    ``slots`` maps every value id to a buffer slot in the executor's
    environment list.  ``constant_slots`` is the subset holding bound
    constants (prefilled once, never released).  ``releases[i]`` lists the
    slots to clear immediately after node ``i`` runs — each is the slot of
    a value whose last consumer was node ``i`` — which drops the array
    reference so the allocator can reuse the memory (views pin their base
    arrays through normal refcounting, so releasing a base early is safe).
    ``num_slots`` is the environment size; ``peak_live`` counts the most
    dynamic (non-constant) slots ever simultaneously occupied — the
    steady-state working set.
    """

    slots: Dict[int, int]
    constant_slots: Dict[int, int]
    releases: Tuple[Tuple[int, ...], ...]
    num_slots: int
    peak_live: int


def plan_memory(graph: Graph) -> MemoryPlan:
    """Assign buffer slots by liveness so later values reuse dead slots."""
    slots: Dict[int, int] = {}
    constant_slots: Dict[int, int] = {}
    for vid in sorted(graph.constants):
        slot = len(slots)
        slots[vid] = slot
        constant_slots[vid] = slot
    next_slot = len(slots)

    last_use: Dict[int, int] = {}
    for index, node in enumerate(graph.nodes):
        for vid in node.inputs:
            last_use[vid] = index
    never_released = set(graph.outputs) | set(constant_slots)

    free: List[int] = []
    peak_live = 0
    live = 0

    def acquire(vid: int) -> None:
        nonlocal next_slot, live, peak_live
        if free:
            slots[vid] = free.pop()
        else:
            slots[vid] = next_slot
            next_slot += 1
        live += 1
        peak_live = max(peak_live, live)

    for vid in graph.inputs:
        acquire(vid)

    releases: List[Tuple[int, ...]] = []
    for index, node in enumerate(graph.nodes):
        acquire(node.output)
        if node.saved_output is not None:
            acquire(node.saved_output)
        dead: List[int] = []
        candidates = set(node.inputs)
        # A value produced but never consumed (and not a graph output) dies
        # immediately; DCE removes these, but the plan must not rely on it.
        candidates.add(node.output)
        if node.saved_output is not None:
            candidates.add(node.saved_output)
        for vid in candidates:
            if vid in never_released:
                continue
            if last_use.get(vid, -1) <= index and vid in slots:
                slot = slots[vid]
                if slot not in dead and vid not in constant_slots:
                    dead.append(slot)
        for slot in dead:
            free.append(slot)
        live -= len(dead)
        releases.append(tuple(sorted(dead)))

    return MemoryPlan(
        slots=slots,
        constant_slots=constant_slots,
        releases=tuple(releases),
        num_slots=next_slot,
        peak_live=peak_live,
    )
