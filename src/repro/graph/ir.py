"""Static graph IR for compiled inference.

A :class:`Graph` is the capture → optimize → execute substrate's common
currency: a flat, topologically ordered list of :class:`Node` records over
integer *value ids*.  Each node names a registered op (the same
``(forward, vjps)`` table :mod:`repro.nn.ops` uses for eager dispatch, or
one of the executor's inference-only graph kernels after fusion), the
value ids it consumes, its parameters, and the value id it produces.

Value ids fall into three classes:

* **inputs** — the placeholder leaves the traced callable was run with;
  bound fresh on every :meth:`repro.graph.executor.CompiledGraph.run`.
* **constants** — arrays that entered the trace from outside the input
  set: module parameters, LUT tables, literal scalars.  They are bound
  once at capture time (snapshot-by-reference; see the trace docs).
* **node outputs** — everything a node produces.

The IR is deliberately minimal — no control flow, one output per node,
edges are just ints — because the traced models are straight-line token
pipelines and every optimisation pass (:mod:`repro.graph.passes`) is a
simple list-and-dict rewrite over this shape.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class Node:
    """One operation of the static graph.

    ``op`` is a name in the :mod:`repro.nn.ops` registry or an
    executor-level graph kernel (see ``GRAPH_KERNELS``); ``inputs`` are the
    consumed value ids in positional order; ``params`` are the keyword
    parameters the forward is invoked with; ``output`` is the produced
    value id; ``label`` is an optional human-readable tag (e.g. the stable
    kernel name an ``apply_elementwise_fused`` caller supplied).
    """

    op: str
    inputs: Tuple[int, ...]
    output: int
    params: Dict[str, Any] = dataclasses.field(default_factory=dict)
    label: Optional[str] = None
    # Second output for ops whose forward returns ``(output, saved)`` —
    # e.g. the fused LUT lookup's slope.  ``None`` (the default, and always
    # the case for inference traces) means the saved half is discarded at
    # execution time; a value id means a later node (a traced VJP) consumes
    # it, so the executor must store it instead of dropping it.
    saved_output: Optional[int] = None


@dataclasses.dataclass
class Graph:
    """A captured straight-line computation over value ids.

    ``nodes`` are in execution (topological) order — the tracer appends
    them as the eager forward runs, so index order is always valid.
    """

    inputs: List[int] = dataclasses.field(default_factory=list)
    outputs: List[int] = dataclasses.field(default_factory=list)
    nodes: List[Node] = dataclasses.field(default_factory=list)
    constants: Dict[int, Any] = dataclasses.field(default_factory=dict)
    num_values: int = 0

    def new_value(self) -> int:
        """Allocate a fresh value id."""
        vid = self.num_values
        self.num_values += 1
        return vid

    def add_constant(self, array: Any) -> int:
        """Bind ``array`` as a constant and return its value id."""
        vid = self.new_value()
        self.constants[vid] = array
        return vid

    def producers(self) -> Dict[int, Node]:
        """Map from value id to the node that produces it."""
        return {node.output: node for node in self.nodes}

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation.

        Every node input must be defined before use (an input, a constant,
        or an earlier node's output), outputs must be defined somewhere,
        and no value may have two definitions.
        """
        defined = set(self.inputs)
        overlap = defined & set(self.constants)
        if overlap:
            raise ValueError("value ids defined as both input and constant: %s"
                             % sorted(overlap))
        defined |= set(self.constants)
        for index, node in enumerate(self.nodes):
            for vid in node.inputs:
                if vid not in defined:
                    raise ValueError(
                        "node %d (%s) consumes undefined value %d"
                        % (index, node.op, vid)
                    )
            if node.output in defined:
                raise ValueError(
                    "node %d (%s) redefines value %d" % (index, node.op, node.output)
                )
            defined.add(node.output)
            if node.saved_output is not None:
                if node.saved_output in defined:
                    raise ValueError(
                        "node %d (%s) redefines saved value %d"
                        % (index, node.op, node.saved_output)
                    )
                defined.add(node.saved_output)
        for vid in self.outputs:
            if vid not in defined:
                raise ValueError("graph output %d is never defined" % vid)

    def __str__(self) -> str:
        """Readable multi-line dump (debugging / golden tests)."""
        lines = ["graph(inputs=%s, outputs=%s)" % (self.inputs, self.outputs)]
        for vid in sorted(self.constants):
            value = self.constants[vid]
            shape = getattr(value, "shape", ())
            lines.append("  const %%%d : shape=%s" % (vid, tuple(shape)))
        for node in self.nodes:
            label = " # %s" % node.label if node.label else ""
            lines.append(
                "  %%%d = %s(%s)%s"
                % (node.output, node.op, ", ".join("%%%d" % i for i in node.inputs), label)
            )
        return "\n".join(lines)
