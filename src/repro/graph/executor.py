"""Execute: replay an optimised :class:`Graph` through ``backend.xp``.

Two layers:

* :class:`CompiledGraph` — one graph, one input signature.  At build time
  every node is resolved to a bound array-level callable (registry op
  forwards with their params pre-bound, or a fusion-pass graph kernel) and
  the :func:`~repro.graph.passes.plan_memory` slot assignment is frozen
  into a flat step list.  ``run`` is then a tight loop over plain arrays:
  no Tensor allocation, no graph bookkeeping, no ``no_grad`` checks, and
  buffers are released at their last use so steady-state inference holds
  only the live working set.
* :class:`CompiledModel` — a serving-grade wrapper around a ``Module``:
  traces + optimises lazily per input signature (the shape-specialisation
  cache), detects parameter rebinding between calls (optimiser steps,
  ``load_state_dict``) by identity-checking a snapshot of every
  parameter's array and re-traces when the weights moved, and exposes the
  ``predict`` surface the serving engine batches over.

All ops execute through the active :mod:`repro.backend`, so a compiled
graph retargets with ``use_backend`` exactly like the eager path (capture
and execution must use the same backend — node params and constants hold
that backend's arrays).
"""

from __future__ import annotations

import functools
import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.backend import xp as np
from repro.reliability.faults import fault_point
from repro.graph.ir import Graph
from repro.graph.passes import (
    DEFAULT_PASSES,
    GRAPH_KERNELS,
    MemoryPlan,
    optimize,
    plan_memory,
)
from repro.graph.trace import trace
from repro.nn import ops as _ops
from repro.nn.module import Module


class CompiledGraph:
    """A graph frozen into an executable step list for one signature."""

    def __init__(self, graph: Graph, plan: Optional[MemoryPlan] = None) -> None:
        graph.validate()
        self.graph = graph
        self.plan = plan if plan is not None else plan_memory(graph)
        template: List[Any] = [None] * self.plan.num_slots
        for vid, slot in self.plan.constant_slots.items():
            template[slot] = graph.constants[vid]
        self._template = template
        steps = []
        for node, releases in zip(graph.nodes, self.plan.releases):
            kernel_factory = GRAPH_KERNELS.get(node.op)
            if kernel_factory is not None:
                fn = kernel_factory(node.params)
            else:
                forward = _ops.get_op(node.op).forward
                fn = functools.partial(forward, **node.params) if node.params else forward
            src = tuple(self.plan.slots[vid] for vid in node.inputs)
            steps.append((fn, src, self.plan.slots[node.output], releases))
        self._steps = tuple(steps)
        self._input_slots = tuple(self.plan.slots[vid] for vid in graph.inputs)
        self._output_slots = tuple(self.plan.slots[vid] for vid in graph.outputs)

    def run(self, *inputs: Any) -> List[Any]:
        """Execute the plan on raw arrays; returns the output arrays.

        Not re-entrant: one run at a time per CompiledGraph (the serving
        engine funnels requests through a single worker for this reason).
        """
        if len(inputs) != len(self._input_slots):
            raise ValueError(
                "compiled graph expects %d input(s), got %d"
                % (len(self._input_slots), len(inputs))
            )
        env = list(self._template)
        for slot, array in zip(self._input_slots, inputs):
            env[slot] = array
        for fn, src, out_slot, releases in self._steps:
            out = fn(*[env[s] for s in src])
            if type(out) is tuple:  # (output, saved) registry convention
                out = out[0]
            env[out_slot] = out
            for slot in releases:
                env[slot] = None
        return [env[slot] for slot in self._output_slots]

    @property
    def num_steps(self) -> int:
        return len(self._steps)


def compile_graph(graph: Graph, passes: Sequence[str] = DEFAULT_PASSES) -> CompiledGraph:
    """Optimise ``graph`` with ``passes`` and freeze it for execution."""
    return CompiledGraph(optimize(graph, passes))


class CompiledModel:
    """Traced-and-optimised inference front-end for a :class:`Module`.

    Compilation is lazy and per input signature ``(shape, dtype)``: the
    first call with a new signature traces the module's eager forward once
    (running any first-call side effects — quantizer initialisation, dense
    table builds — exactly as eager would), optimises, and caches the
    executable.  Subsequent calls replay the cached plan.

    The captured constants reference the module's parameter arrays at
    trace time.  Before every call the wrapper identity-checks each
    parameter's ``.data`` against its trace-time snapshot and flushes the
    cache when any was rebound, so training between evaluations (optimiser
    steps rebind ``.data``) transparently re-compiles.  In-place array
    mutation (``param.data[:] = ...``) is not detected — nothing in this
    codebase mutates parameters in place.

    With ``fallback=True`` a trace/compile/replay failure degrades to the
    eager forward instead of failing the call: the eager path is run, and
    only if it *succeeds* (proving the input was fine and the compiled
    path itself broke) the call counts as a degradation —
    ``fallback_count`` increments and a single ``RuntimeWarning`` is
    emitted.  If eager also fails, the input was genuinely bad and the
    eager error propagates untouched.  Eager/compiled bit-parity is
    pinned by the test suite, so a fallback changes latency, never
    results.  The default stays ``False``: in tests and debugging a
    broken trace should fail loudly; the serving tier
    (:class:`repro.serve.engine.BatchingServer`) opts in.
    """

    def __init__(
        self,
        module: Module,
        passes: Sequence[str] = DEFAULT_PASSES,
        fallback: bool = False,
    ) -> None:
        self.module = module
        self.passes = tuple(passes)
        self.fallback = fallback
        self.fallback_count = 0
        self._fallback_warned = False
        self._cache: Dict[Tuple[Tuple[Tuple[int, ...], str], ...], CompiledGraph] = {}
        self._param_snapshot: List[Tuple[Any, Any]] = []
        self.compile_count = 0

    # -- cache management ------------------------------------------------------

    @staticmethod
    def _signature(arrays: Sequence[Any]) -> Tuple[Tuple[Tuple[int, ...], str], ...]:
        return tuple((tuple(a.shape), str(a.dtype)) for a in arrays)

    def _params_moved(self) -> bool:
        for param, data in self._param_snapshot:
            if param.data is not data:
                return True
        return False

    def _take_snapshot(self) -> None:
        self._param_snapshot = [(p, p.data) for p in self.module.parameters()]

    def invalidate(self) -> None:
        """Drop every cached specialisation (forces re-tracing)."""
        self._cache.clear()
        self._param_snapshot = []

    @property
    def specializations(self) -> int:
        """Number of cached input-signature specialisations."""
        return len(self._cache)

    # -- state swap (replicated serving) ---------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Copy of the wrapped module's parameters, keyed by dotted name.

        The supervisor's hot-swap protocol captures this before mutating a
        fleet so a failed swap can roll the old state back bit-exactly.
        """
        return self.module.state_dict()

    def rebind_state(self, state: Dict[str, Any], strict: bool = True) -> None:
        """Strict-load new parameters and drop every cached specialisation.

        ``load_state_dict`` rebinds parameter ``.data`` arrays, which the
        per-call staleness check would eventually notice — but a swap must
        not serve even one stale replay, so the cache is flushed here,
        synchronously, before the call returns.
        """
        self.module.load_state_dict(state, strict=strict)
        self.invalidate()

    def graph_for(self, *arrays: Any) -> CompiledGraph:
        """The cached (or freshly compiled) executable for this signature."""
        if self._param_snapshot and self._params_moved():
            self.invalidate()
        signature = self._signature(arrays)
        compiled = self._cache.get(signature)
        if compiled is None:
            fault_point("compiled.trace")
            captured = trace(self.module, *arrays)
            compiled = CompiledGraph(optimize(captured, self.passes))
            self._cache[signature] = compiled
            self.compile_count += 1
            # Snapshot *after* tracing: first-call side effects (quantizer
            # initialisation) rebind parameter data during capture and are
            # part of the captured state, not a reason to invalidate.
            self._take_snapshot()
        return compiled

    # -- inference surface -----------------------------------------------------

    def _eager_forward(self, arrays: Sequence[Any]):
        """The exact eager computation the compiled path replays."""
        from repro.nn.tensor import Tensor, no_grad

        with no_grad():
            outputs = self.module(*[Tensor(array) for array in arrays])
        if isinstance(outputs, tuple):
            return tuple(output.data for output in outputs)
        return outputs.data

    def _degrade(self, arrays: Sequence[Any], error: BaseException):
        """Answer ``arrays`` eagerly after a compiled-path failure.

        Runs the eager forward *first*: if it raises too, the request was
        bad (wrong shape, non-divisible image) and that genuine error
        propagates; only an eager success counts as a degradation.
        """
        result = self._eager_forward(arrays)
        self.fallback_count += 1
        if not self._fallback_warned:
            self._fallback_warned = True
            warnings.warn(
                "compiled inference failed (%s: %s); degraded to the eager path "
                "— results are bit-identical, latency is not"
                % (type(error).__name__, error),
                RuntimeWarning,
                stacklevel=3,
            )
        return result

    def __call__(self, *inputs: Any):
        """Run the compiled forward; returns the raw output array(s)."""
        arrays = [np.asarray(value, dtype=np.float64) for value in inputs]
        try:
            compiled = self.graph_for(*arrays)
            fault_point("compiled.replay")
            outputs = compiled.run(*arrays)
        except Exception as error:
            if not self.fallback:
                raise
            outputs = self._degrade(arrays, error)
            if not isinstance(outputs, tuple):
                return outputs
        return outputs[0] if len(outputs) == 1 else tuple(outputs)

    def predict(self, images: Any):
        """Per-pixel argmax class prediction (mirrors the eager predict)."""
        return np.argmax(self(images), axis=-1)


def compile_model(
    module: Module,
    passes: Sequence[str] = DEFAULT_PASSES,
    fallback: bool = False,
) -> CompiledModel:
    """Wrap ``module`` for compiled inference (lazy per-signature tracing)."""
    return CompiledModel(module, passes=passes, fallback=fallback)
