"""Execute: replay an optimised :class:`Graph` through ``backend.xp``.

Two layers:

* :class:`CompiledGraph` — one graph, one input signature.  At build time
  every node is resolved to a bound array-level callable (registry op
  forwards with their params pre-bound, or a fusion-pass graph kernel) and
  the :func:`~repro.graph.passes.plan_memory` slot assignment is frozen
  into a flat step list.  ``run`` is then a tight loop over plain arrays:
  no Tensor allocation, no graph bookkeeping, no ``no_grad`` checks, and
  buffers are released at their last use so steady-state inference holds
  only the live working set.
* :class:`CompiledModel` — a serving-grade wrapper around a ``Module``:
  traces + optimises lazily per input signature (the shape-specialisation
  cache), detects parameter rebinding between calls (optimiser steps,
  ``load_state_dict``) by identity-checking a snapshot of every
  parameter's array and re-traces when the weights moved, and exposes the
  ``predict`` surface the serving engine batches over.

All ops execute through the active :mod:`repro.backend`, so a compiled
graph retargets with ``use_backend`` exactly like the eager path (capture
and execution must use the same backend — node params and constants hold
that backend's arrays).
"""

from __future__ import annotations

import functools
import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.backend import xp as np
from repro.reliability.faults import fault_point
from repro.graph.ir import Graph
from repro.graph.passes import (
    DEFAULT_PASSES,
    GRAPH_KERNELS,
    MemoryPlan,
    TRAIN_PASSES,
    optimize,
    plan_memory,
)
from repro.graph.trace import Tracer, trace
from repro.nn import ops as _ops
from repro.nn.module import Module


def _output_only(forward):
    """Wrap a ``(output, saved)``-returning forward to drop the saved half."""
    def fn(*arrays):
        return forward(*arrays)[0]
    return fn


class CompiledGraph:
    """A graph frozen into an executable step list for one signature."""

    def __init__(self, graph: Graph, plan: Optional[MemoryPlan] = None) -> None:
        graph.validate()
        self.graph = graph
        self.plan = plan if plan is not None else plan_memory(graph)
        template: List[Any] = [None] * self.plan.num_slots
        for vid, slot in self.plan.constant_slots.items():
            template[slot] = graph.constants[vid]
        self._template = template
        steps = []
        for node, releases in zip(graph.nodes, self.plan.releases):
            kernel_factory = GRAPH_KERNELS.get(node.op)
            if kernel_factory is not None:
                fn = kernel_factory(node.params)
                tuple_result = False
            else:
                forward = _ops.get_op(node.op).forward
                fn = functools.partial(forward, **node.params) if node.params else forward
                tuple_result = node.op in _ops.SAVED_OUTPUT_OPS
            saved_slot = -1
            if node.saved_output is not None:
                # Training graphs keep the (output, saved) pair — e.g. the
                # fused LUT slope that feeds a traced VJP node.
                saved_slot = self.plan.slots[node.saved_output]
            elif tuple_result:
                # Discarded saved half: split at compile time so the replay
                # loop needs no per-step result-type check.
                fn = _output_only(fn)
            src = tuple(self.plan.slots[vid] for vid in node.inputs)
            steps.append((fn, src, self.plan.slots[node.output], saved_slot, releases))
        self._steps = tuple(steps)
        self._input_slots = tuple(self.plan.slots[vid] for vid in graph.inputs)
        self._output_slots = tuple(self.plan.slots[vid] for vid in graph.outputs)

    def run(self, *inputs: Any) -> List[Any]:
        """Execute the plan on raw arrays; returns the output arrays.

        Not re-entrant: one run at a time per CompiledGraph (the serving
        engine funnels requests through a single worker for this reason).

        The loop body is pre-resolved at compile time: each step is a bound
        callable plus plain slot ints — no per-step registry/dict/attribute
        lookups and no result-shape branching (tuple-returning forwards are
        split when compiled, see ``__init__``).
        """
        if len(inputs) != len(self._input_slots):
            raise ValueError(
                "compiled graph expects %d input(s), got %d"
                % (len(self._input_slots), len(inputs))
            )
        env = list(self._template)
        for slot, array in zip(self._input_slots, inputs):
            env[slot] = array
        for fn, src, out_slot, saved_slot, releases in self._steps:
            if saved_slot < 0:
                env[out_slot] = fn(*[env[s] for s in src])
            else:
                env[out_slot], env[saved_slot] = fn(*[env[s] for s in src])
            for slot in releases:
                env[slot] = None
        return [env[slot] for slot in self._output_slots]

    @property
    def num_steps(self) -> int:
        return len(self._steps)


def compile_graph(graph: Graph, passes: Sequence[str] = DEFAULT_PASSES) -> CompiledGraph:
    """Optimise ``graph`` with ``passes`` and freeze it for execution."""
    return CompiledGraph(optimize(graph, passes))


class CompiledModel:
    """Traced-and-optimised inference front-end for a :class:`Module`.

    Compilation is lazy and per input signature ``(shape, dtype)``: the
    first call with a new signature traces the module's eager forward once
    (running any first-call side effects — quantizer initialisation, dense
    table builds — exactly as eager would), optimises, and caches the
    executable.  Subsequent calls replay the cached plan.

    The captured constants reference the module's parameter arrays at
    trace time.  Before every call the wrapper identity-checks each
    parameter's ``.data`` against its trace-time snapshot and flushes the
    cache when any was rebound, so training between evaluations (optimiser
    steps rebind ``.data``) transparently re-compiles.  In-place array
    mutation (``param.data[:] = ...``) is not detected — nothing in this
    codebase mutates parameters in place.

    With ``fallback=True`` a trace/compile/replay failure degrades to the
    eager forward instead of failing the call: the eager path is run, and
    only if it *succeeds* (proving the input was fine and the compiled
    path itself broke) the call counts as a degradation —
    ``fallback_count`` increments and a single ``RuntimeWarning`` is
    emitted.  If eager also fails, the input was genuinely bad and the
    eager error propagates untouched.  Eager/compiled bit-parity is
    pinned by the test suite, so a fallback changes latency, never
    results.  The default stays ``False``: in tests and debugging a
    broken trace should fail loudly; the serving tier
    (:class:`repro.serve.engine.BatchingServer`) opts in.
    """

    def __init__(
        self,
        module: Module,
        passes: Sequence[str] = DEFAULT_PASSES,
        fallback: bool = False,
    ) -> None:
        self.module = module
        self.passes = tuple(passes)
        self.fallback = fallback
        self.fallback_count = 0
        self._fallback_warned = False
        self._cache: Dict[Tuple[Tuple[Tuple[int, ...], str], ...], CompiledGraph] = {}
        self._param_snapshot: List[Tuple[Any, Any]] = []
        self.compile_count = 0

    # -- cache management ------------------------------------------------------

    @staticmethod
    def _signature(arrays: Sequence[Any]) -> Tuple[Tuple[Tuple[int, ...], str], ...]:
        return tuple((tuple(a.shape), str(a.dtype)) for a in arrays)

    def _params_moved(self) -> bool:
        for param, data in self._param_snapshot:
            if param.data is not data:
                return True
        return False

    def _take_snapshot(self) -> None:
        self._param_snapshot = [(p, p.data) for p in self.module.parameters()]

    def invalidate(self) -> None:
        """Drop every cached specialisation (forces re-tracing)."""
        self._cache.clear()
        self._param_snapshot = []

    @property
    def specializations(self) -> int:
        """Number of cached input-signature specialisations."""
        return len(self._cache)

    # -- state swap (replicated serving) ---------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Copy of the wrapped module's parameters, keyed by dotted name.

        The supervisor's hot-swap protocol captures this before mutating a
        fleet so a failed swap can roll the old state back bit-exactly.
        """
        return self.module.state_dict()

    def rebind_state(self, state: Dict[str, Any], strict: bool = True) -> None:
        """Strict-load new parameters and drop every cached specialisation.

        ``load_state_dict`` rebinds parameter ``.data`` arrays, which the
        per-call staleness check would eventually notice — but a swap must
        not serve even one stale replay, so the cache is flushed here,
        synchronously, before the call returns.
        """
        self.module.load_state_dict(state, strict=strict)
        self.invalidate()

    def graph_for(self, *arrays: Any) -> CompiledGraph:
        """The cached (or freshly compiled) executable for this signature."""
        if self._param_snapshot and self._params_moved():
            self.invalidate()
        signature = self._signature(arrays)
        compiled = self._cache.get(signature)
        if compiled is None:
            fault_point("compiled.trace")
            captured = trace(self.module, *arrays)
            compiled = CompiledGraph(optimize(captured, self.passes))
            self._cache[signature] = compiled
            self.compile_count += 1
            # Snapshot *after* tracing: first-call side effects (quantizer
            # initialisation) rebind parameter data during capture and are
            # part of the captured state, not a reason to invalidate.
            self._take_snapshot()
        return compiled

    # -- inference surface -----------------------------------------------------

    def _eager_forward(self, arrays: Sequence[Any]):
        """The exact eager computation the compiled path replays."""
        from repro.nn.tensor import Tensor, no_grad

        with no_grad():
            outputs = self.module(*[Tensor(array) for array in arrays])
        if isinstance(outputs, tuple):
            return tuple(output.data for output in outputs)
        return outputs.data

    def _degrade(self, arrays: Sequence[Any], error: BaseException):
        """Answer ``arrays`` eagerly after a compiled-path failure.

        Runs the eager forward *first*: if it raises too, the request was
        bad (wrong shape, non-divisible image) and that genuine error
        propagates; only an eager success counts as a degradation.
        """
        result = self._eager_forward(arrays)
        self.fallback_count += 1
        if not self._fallback_warned:
            self._fallback_warned = True
            warnings.warn(
                "compiled inference failed (%s: %s); degraded to the eager path "
                "— results are bit-identical, latency is not"
                % (type(error).__name__, error),
                RuntimeWarning,
                stacklevel=3,
            )
        return result

    def __call__(self, *inputs: Any):
        """Run the compiled forward; returns the raw output array(s)."""
        arrays = [np.asarray(value, dtype=np.float64) for value in inputs]
        try:
            compiled = self.graph_for(*arrays)
            fault_point("compiled.replay")
            outputs = compiled.run(*arrays)
        except Exception as error:
            if not self.fallback:
                raise
            outputs = self._degrade(arrays, error)
            if not isinstance(outputs, tuple):
                return outputs
        return outputs[0] if len(outputs) == 1 else tuple(outputs)

    def predict(self, images: Any):
        """Per-pixel argmax class prediction (mirrors the eager predict)."""
        return np.argmax(self(images), axis=-1)


def compile_model(
    module: Module,
    passes: Sequence[str] = DEFAULT_PASSES,
    fallback: bool = False,
) -> CompiledModel:
    """Wrap ``module`` for compiled inference (lazy per-signature tracing)."""
    return CompiledModel(module, passes=passes, fallback=fallback)


# -- compiled training ----------------------------------------------------------


class _TrainPlan:
    """One batch signature's frozen train-step executable and its plumbing."""

    __slots__ = (
        "compiled", "params", "feeds", "updates", "advance", "onehot_width"
    )

    def __init__(
        self, compiled, params, feeds, updates, advance, onehot_width
    ) -> None:
        self.compiled = compiled
        self.params = params      # trace-time parameter order (input layout)
        self.feeds = feeds        # [(vid, fn)] dynamic per-step input sources
        self.updates = updates    # [(vid, apply)] output -> state rebinding
        self.advance = advance    # per-step Python bookkeeping (Adam _step)
        self.onehot_width = onehot_width  # logits' class dim (one-hot cols)


class CompiledTrainStep:
    """A whole fine-tune step — forward + backward + optimizer — replayed
    from a static plan.

    The first ``step()`` call for a batch signature runs one *real* eager
    training step under a gradient-capturing :class:`Tracer`: the forward
    records its ops, ``loss.backward()`` emits every VJP application as
    graph nodes mirroring the eager arithmetic term for term, and the
    optimizer's ``trace_step`` emits its update rules symbolically while
    performing the genuine eager update.  Parameters and optimizer buffers
    enter the graph as *inputs* (fed fresh each step) and their updated
    values are graph *outputs* rebound into the model/optimizer after each
    replay — the in-place state carry.  Dynamic scalars the Python side
    owns (the scheduled learning rate, Adam's bias corrections) are 0-d
    array inputs computed per step, so the cosine schedule stays ordinary
    Python.

    Replayed steps are bit-identical to eager steps by construction: every
    node either *is* the function the eager path calls or mirrors its
    exact expression order (pinned by the parity suite).  The per-signature
    cache re-specialises on new batch shapes (the last short batch of an
    epoch gets its own plan); external state rebinding — checkpoint
    restore, ``load_state_dict`` — is detected by identity-snapshotting
    every parameter and optimizer buffer, and invalidates the cache so the
    next step re-traces (again a real eager step, so the training
    trajectory never skews).
    """

    def __init__(
        self,
        model: Module,
        optimizer,
        num_classes: int,
        schedule=None,
        passes: Sequence[str] = TRAIN_PASSES,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.schedule = schedule
        # Advisory label-space size (kept for introspection); the traced
        # one-hot encoding is sized to the model's logit width, which may
        # legitimately be wider than the labels in play.
        self.num_classes = int(num_classes)
        self.passes = tuple(passes)
        self._cache: Dict[Tuple, _TrainPlan] = {}
        self._state_snapshot: List[Tuple[Any, Any]] = []
        self.compile_count = 0
        self.replay_count = 0
        self._check_supported()

    # -- guards ----------------------------------------------------------------

    def _check_supported(self) -> None:
        from repro.nn.layers import Dropout

        for module in self.model.modules():
            if isinstance(module, Dropout) and module.p > 0:
                raise ValueError(
                    "compiled training cannot capture stochastic Dropout "
                    "masks; use train_engine='eager' for this model"
                )
        if not hasattr(self.optimizer, "trace_step"):
            raise TypeError(
                "optimizer %s does not support traced updates (no trace_step)"
                % type(self.optimizer).__name__
            )

    # -- staleness -------------------------------------------------------------

    def _state_arrays(self) -> List[Tuple[Any, Any]]:
        pairs: List[Tuple[Any, Any]] = [
            (param, param.data) for param in self.model.parameters()
        ]
        for group in ("_velocity", "_m", "_v"):
            buffers = getattr(self.optimizer, group, None)
            if buffers is not None:
                pairs.extend((buffers, buffer) for buffer in buffers)
        return pairs

    def _take_snapshot(self) -> None:
        self._state_snapshot = self._state_arrays()

    def _stale(self) -> bool:
        current = self._state_arrays()
        if len(current) != len(self._state_snapshot):
            return True
        for (owner, array), (snap_owner, snap_array) in zip(
            current, self._state_snapshot
        ):
            if owner is not snap_owner or array is not snap_array:
                return True
        return False

    def invalidate(self) -> None:
        """Drop every cached plan (forces an eager re-trace next step)."""
        self._cache.clear()
        self._state_snapshot = []

    # -- capture ---------------------------------------------------------------

    def _trace(self, images: Any, labels: Any) -> Tuple[_TrainPlan, float]:
        """Run one real eager step under capture; freeze and cache the plan."""
        from repro.nn import functional as F
        from repro.nn.tensor import Tensor, tracing

        fault_point("compiled.train.trace")
        tracer = Tracer(capture_grads=True)
        image_t = Tensor(images)
        tracer.add_input(image_t)
        params = list(self.model.parameters())
        param_vids = {
            id(param): tracer.add_input(param) for param in params
        }
        with tracing(tracer):
            logits = self.model(image_t)
            # One-hot width follows the *logits'* class dimension, which
            # may exceed the label-space size (a wider head trained on
            # fewer classes) — exactly what eager cross_entropy indexes.
            onehot_width = logits.shape[-1]
            onehot_t = Tensor(F.one_hot(labels, onehot_width))
            tracer.add_input(onehot_t)
            loss = F.cross_entropy_onehot(logits, onehot_t)
            self.optimizer.zero_grad()
            loss.backward()
            feeds, updates, advance = self.optimizer.trace_step(
                tracer, param_vids
            )
        tracer.mark_output_vid(tracer.value_of(loss))
        for vid, _apply in updates:
            tracer.mark_output_vid(vid)
        graph = tracer.graph
        graph.validate()
        compiled = CompiledGraph(optimize(graph, self.passes))
        if self.schedule is not None:
            self.schedule.step()
        plan = _TrainPlan(compiled, params, feeds, updates, advance,
                          onehot_width)
        self.compile_count += 1
        return plan, float(loss.data)

    # -- the step surface ------------------------------------------------------

    def step(self, images: Any, labels: Any) -> float:
        """Run one training step (images, integer labels); returns the loss.

        Semantically identical to the eager loop body ``forward → loss →
        zero_grad → backward → optimizer.step() → schedule.step()``; the
        first call per batch signature (and the first after external state
        rebinding) *is* that eager body, every other call replays the plan.
        """
        if not self.model.training:
            raise RuntimeError(
                "compiled training requires the model in train() mode"
            )
        from repro.nn import functional as F

        images = np.asarray(images, dtype=np.float64)
        labels = np.asarray(labels)
        signature = (
            tuple(images.shape), str(images.dtype), tuple(labels.shape)
        )
        if self._state_snapshot and self._stale():
            self.invalidate()
        plan = self._cache.get(signature)
        if plan is None:
            plan, loss = self._trace(images, labels)
            self._cache[signature] = plan
            # Snapshot *after* tracing: the traced step itself rebound
            # parameters and buffers (it was a real step), and first-call
            # side effects (quantizer init) are part of the captured state.
            self._take_snapshot()
            return loss
        fault_point("compiled.train.replay")
        arrays = [images]
        arrays.extend(param.data for param in plan.params)
        arrays.append(F.one_hot(labels, plan.onehot_width))
        arrays.extend(fn() for _vid, fn in plan.feeds)
        outputs = plan.compiled.run(*arrays)
        for (vid, apply), array in zip(plan.updates, outputs[1:]):
            apply(array)
        plan.advance()
        if self.schedule is not None:
            self.schedule.step()
        self.replay_count += 1
        # Our own rebinding moved every identity; re-snapshot so only
        # *external* rebinds (checkpoint restore) trigger invalidation.
        self._take_snapshot()
        return float(outputs[0])

    # -- introspection ---------------------------------------------------------

    @property
    def specializations(self) -> int:
        """Number of cached batch-signature plans."""
        return len(self._cache)

    def stats(self) -> Dict[str, Any]:
        """Plan metrics per cached signature (memory regressions pin these).

        ``peak_live`` is :func:`~repro.graph.passes.plan_memory`'s count of
        dynamic buffers simultaneously live while replaying the joint
        forward+backward+update graph — the compiled step's working set.
        """
        per_signature = {}
        for signature, plan in self._cache.items():
            per_signature[repr(signature)] = {
                "nodes": plan.compiled.num_steps,
                "peak_live": plan.compiled.plan.peak_live,
                "num_slots": plan.compiled.plan.num_slots,
                "outputs": len(plan.updates) + 1,
            }
        return {
            "compile_count": self.compile_count,
            "replay_count": self.replay_count,
            "specializations": len(self._cache),
            "signatures": per_signature,
        }


# -- compiled autoregressive decode ----------------------------------------------


class CompiledDecodeStep:
    """The single-token decode step of a cache-carrying decoder, compiled.

    Wraps a model exposing ``step(token_onehot, pos_onehot, mask, *caches)
    -> (logits, *new_caches)`` — :class:`repro.nn.transformer.MiniDecoder` —
    and replays it from a per-signature static plan.  The KV cache arrays
    are *carried slots*: they enter each replay as plain array inputs and
    the step's outputs are handed back to the caller's
    :class:`~repro.nn.transformer.KVCache` to rebind, the same
    input→output state carry :class:`CompiledTrainStep` uses for
    parameters and optimizer buffers.  Nothing is captured by reference,
    so one compiled step serves any number of concurrent caches — the
    serving tier drains whole session groups through a single plan.

    The signature covers every input's shape/dtype, so specialisations are
    keyed by (batch, cache capacity).  Callers bucket capacity in powers
    of two (:func:`repro.nn.transformer.bucket_capacity`): a ``T``-token
    decode costs ``~log2(T)`` traces, and every step between bucket
    crossings is a pure replay.

    Parameter staleness mirrors :class:`CompiledModel`: an identity
    snapshot of every parameter array, taken after tracing so that
    first-call side effects (quantizer calibration) don't self-invalidate,
    flushes the cache whenever the weights were rebound externally.
    """

    def __init__(
        self, model: Module, passes: Sequence[str] = DEFAULT_PASSES
    ) -> None:
        if not hasattr(model, "step"):
            raise TypeError(
                "model %s has no step() method to compile"
                % type(model).__name__
            )
        self.model = model
        self.passes = tuple(passes)
        self._cache: Dict[Tuple[Tuple[Tuple[int, ...], str], ...], CompiledGraph] = {}
        self._param_snapshot: List[Tuple[Any, Any]] = []
        self.compile_count = 0
        self.replay_count = 0

    # -- staleness (identical contract to CompiledModel) -----------------------

    def _params_moved(self) -> bool:
        for param, data in self._param_snapshot:
            if param.data is not data:
                return True
        return False

    def _take_snapshot(self) -> None:
        self._param_snapshot = [(p, p.data) for p in self.model.parameters()]

    def invalidate(self) -> None:
        """Drop every cached specialisation (forces re-tracing)."""
        self._cache.clear()
        self._param_snapshot = []

    @property
    def specializations(self) -> int:
        """Number of cached (batch, capacity) specialisations."""
        return len(self._cache)

    # -- the step surface ------------------------------------------------------

    def step(
        self,
        token_onehot: Any,
        pos_onehot: Any,
        mask: Any,
        cache_arrays: Sequence[Any],
    ) -> Tuple[Any, List[Any]]:
        """Advance one token per row; returns ``(logits, new_cache_arrays)``.

        Inputs mirror the model's ``step`` signature with the cache arrays
        flattened in :meth:`repro.nn.transformer.KVCache.arrays` order; the
        returned cache arrays go straight into
        :meth:`~repro.nn.transformer.KVCache.update`.  Logits are
        bit-identical to the eager step on the same arrays — the plan
        replays the same registry ops in the same order.
        """
        arrays = [
            np.asarray(token_onehot, dtype=np.float64),
            np.asarray(pos_onehot, dtype=np.float64),
            np.asarray(mask, dtype=np.float64),
        ]
        arrays.extend(np.asarray(array, dtype=np.float64)
                      for array in cache_arrays)
        if self._param_snapshot and self._params_moved():
            self.invalidate()
        signature = CompiledModel._signature(arrays)
        compiled = self._cache.get(signature)
        if compiled is None:
            fault_point("compiled.decode.trace")
            captured = trace(self.model.step, *arrays)
            compiled = CompiledGraph(optimize(captured, self.passes))
            self._cache[signature] = compiled
            self.compile_count += 1
            # Snapshot *after* tracing — see CompiledModel.graph_for.
            self._take_snapshot()
        fault_point("compiled.decode.replay")
        outputs = compiled.run(*arrays)
        self.replay_count += 1
        return outputs[0], outputs[1:]

    # -- introspection ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Plan metrics per cached (batch, capacity) signature."""
        per_signature = {}
        for signature, compiled in self._cache.items():
            batch, capacity = signature[0][0][0], signature[3][0][2]
            per_signature["batch=%d,capacity=%d" % (batch, capacity)] = {
                "nodes": compiled.num_steps,
                "peak_live": compiled.plan.peak_live,
                "num_slots": compiled.plan.num_slots,
            }
        return {
            "compile_count": self.compile_count,
            "replay_count": self.replay_count,
            "specializations": len(self._cache),
            "signatures": per_signature,
        }
