"""Capture: run an eager forward once, emit a static :class:`Graph`.

The tracer piggybacks on the single dispatch point of the autograd
substrate: every Tensor operation routes through
:func:`repro.nn.tensor.apply_op`, which reports to the installed tracer
(see :func:`repro.nn.tensor.tracing`).  Running a ``Module.forward`` once
with placeholder inputs therefore yields the complete op sequence, with

* placeholder tensors becoming graph **inputs**,
* every tensor that enters a dispatch from outside the traced set
  (parameters, LUT tables, lifted Python scalars) becoming a bound
  **constant**,
* ``detach()`` recorded as an alias — detach cuts gradients, not values,
  so the detached tensor maps to the same value id as its source.

Tracing runs under ``no_grad`` (the capture targets inference), so the
eager pass builds no backward graph while being recorded.

Constants are bound **by reference**: the graph holds the same arrays the
module does at capture time.  Rebinding a parameter's ``.data`` afterwards
does not change the captured graph (the executor's model wrapper detects
this and re-traces); mutating an array *in place* would leak into compiled
results and is not something this codebase does.

Shape specialisation is inherent to capture: Python-level shape logic
(``reshape(batch, ...)``, grid arithmetic) executes at trace time and is
burned into node params, so a trace is valid exactly for the input
signature it was captured with.  :class:`repro.graph.executor.CompiledModel`
keys its cache on that signature and re-traces per new shape.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.backend import xp as np
from repro.graph.ir import Graph, Node
from repro.nn.tensor import Tensor, no_grad, tracing


class Tracer:
    """Records apply_op dispatches into a :class:`Graph`.

    Tensor identity is tracked with ``id()`` keys; the tracer keeps a
    strong reference to every tensor it has mapped so ids cannot be
    recycled mid-trace.

    With ``capture_grads=True`` the tracer captures a *training* step
    rather than an inference forward: every op's saved intermediate (the
    fused LUT slope) is materialised as a ``Node.saved_output`` value id,
    ``Tensor.backward`` emits its VJP applications as graph nodes (see
    :meth:`repro.nn.tensor.Tensor.backward`), and the final gradient value
    id of every parameter is remembered (:meth:`note_grad` /
    :meth:`grad_vid`) so optimizer-update emission can consume it.
    Inference traces (the default) are unchanged — no saved ids are
    allocated, keeping their graphs identical to previous releases.
    """

    def __init__(self, capture_grads: bool = False) -> None:
        self.graph = Graph()
        self.capture_grads = capture_grads
        self._value_ids: Dict[int, int] = {}
        self._keepalive: List[Tensor] = []
        self._saved_ids: Dict[int, int] = {}
        self._grad_ids: Dict[int, int] = {}

    # -- placeholder management ------------------------------------------------

    def add_input(self, tensor: Tensor) -> int:
        vid = self.graph.new_value()
        self.graph.inputs.append(vid)
        self._bind(tensor, vid)
        return vid

    def add_input_array(self) -> int:
        """Allocate a graph input with no tensor bound to it.

        Used for replay-time feeds that have no trace-time Tensor — the
        dynamic optimizer scalars (learning rate, Adam bias corrections)
        the compiled train step computes in Python each step.
        """
        vid = self.graph.new_value()
        self.graph.inputs.append(vid)
        return vid

    def _bind(self, tensor: Tensor, vid: int) -> None:
        self._value_ids[id(tensor)] = vid
        self._keepalive.append(tensor)

    def _value_of(self, tensor: Tensor) -> int:
        """The value id for ``tensor``, binding it as a constant if new."""
        vid = self._value_ids.get(id(tensor))
        if vid is None:
            vid = self.graph.add_constant(tensor.data)
            self._bind(tensor, vid)
        return vid

    # Public aliases used by the backward capture and update emission.
    value_of = _value_of

    def saved_value_of(self, out: Tensor) -> Optional[int]:
        """The saved-output value id recorded for ``out``, if any."""
        return self._saved_ids.get(id(out))

    def constant(self, array: Any) -> int:
        """Bind a raw array as a graph constant and return its value id."""
        return self.graph.add_constant(array)

    def emit(self, name: str, in_vids: Sequence[int],
             params: Optional[Dict[str, Any]] = None,
             label: Optional[str] = None) -> int:
        """Append a node symbolically (no computation) and return its vid.

        The backward capture and the optimizer-update emission build nodes
        for computations that eager code performs on raw arrays outside
        apply_op; ``emit`` is their direct line into the graph.
        """
        out_id = self.graph.new_value()
        self.graph.nodes.append(
            Node(op=name, inputs=tuple(in_vids), output=out_id,
                 params=dict(params) if params else {}, label=label)
        )
        return out_id

    def note_grad(self, tensor: Tensor, vid: int) -> None:
        """Remember the value id holding ``tensor``'s final gradient."""
        self._grad_ids[id(tensor)] = vid
        self._keepalive.append(tensor)

    def grad_vid(self, tensor: Tensor) -> Optional[int]:
        """The final-gradient value id captured for ``tensor``, if any."""
        return self._grad_ids.get(id(tensor))

    # -- hooks invoked by repro.nn.tensor --------------------------------------

    def record_op(self, name: str, inputs: Sequence[Tensor], params: Dict[str, Any],
                  out: Tensor, saved: Any = None) -> None:
        in_ids = tuple(self._value_of(t) for t in inputs)
        out_id = self.graph.new_value()
        self._bind(out, out_id)
        saved_id = None
        if self.capture_grads and saved is not None:
            # Materialise the stashed intermediate as a graph value so the
            # traced backward consumes it instead of re-running the
            # forward.  Inference traces never allocate these.
            saved_id = self.graph.new_value()
            self._saved_ids[id(out)] = saved_id
        label = params.get("name") if name in ("elementwise", "elementwise_fused") else None
        self.graph.nodes.append(
            Node(op=name, inputs=in_ids, output=out_id, params=dict(params),
                 label=label, saved_output=saved_id)
        )

    def record_alias(self, source: Tensor, alias: Tensor) -> None:
        self._bind(alias, self._value_of(source))

    # -- finalisation ----------------------------------------------------------

    def mark_outputs(self, tensors: Sequence[Tensor]) -> None:
        for tensor in tensors:
            # An output the trace never saw (a function returning a tensor
            # it was handed, or a freshly built constant) still resolves:
            # _value_of binds it as a constant.
            self.graph.outputs.append(self._value_of(tensor))

    def mark_output_vid(self, vid: int) -> None:
        """Mark an already-allocated value id as a graph output."""
        self.graph.outputs.append(vid)


def trace(fn: Callable[..., Any], *example_inputs: Any) -> Graph:
    """Run ``fn`` once on placeholder tensors and capture its graph.

    ``fn`` is any callable taking and returning :class:`Tensor` values — a
    ``Module`` works directly.  ``example_inputs`` are arrays (or anything
    ``asarray`` accepts) defining the input signature; the capture runs the
    real eager forward on them, so trace-time side effects (quantizer
    initialisation from first data, dense-table builds) happen exactly as
    the first eager call would cause them.

    Returns the validated :class:`Graph`.  Multi-output callables may
    return a tuple/list of tensors; single tensors become one output.
    """
    tracer = Tracer()
    placeholders = []
    for example in example_inputs:
        tensor = Tensor(np.asarray(example, dtype=np.float64))
        tracer.add_input(tensor)
        placeholders.append(tensor)
    with no_grad():
        with tracing(tracer):
            result = fn(*placeholders)
    outputs: Tuple[Tensor, ...]
    if isinstance(result, Tensor):
        outputs = (result,)
    elif isinstance(result, (tuple, list)) and all(isinstance(t, Tensor) for t in result):
        outputs = tuple(result)
    else:
        raise TypeError(
            "traced callable must return a Tensor or a tuple/list of Tensors, "
            "got %r" % type(result).__name__
        )
    tracer.mark_outputs(outputs)
    tracer.graph.validate()
    return tracer.graph
