"""Traced graph IR, optimisation passes and the compiled inference executor.

The capture → optimize → execute pipeline that turns one eager forward run
of a :class:`repro.nn.module.Module` into a static, replayable plan:

* :mod:`repro.graph.ir` — the :class:`Graph`/:class:`Node` IR.
* :mod:`repro.graph.trace` — capture via the ``apply_op`` dispatch hook.
* :mod:`repro.graph.passes` — constant folding, dense-LUT fusion,
  dead-code elimination, liveness-based buffer planning.
* :mod:`repro.graph.executor` — :class:`CompiledGraph` (one signature) and
  :class:`CompiledModel` (shape-specialisation cache + staleness checks).

Compiled outputs are bit-identical to eager — the passes only remove or
pre-evaluate work, never approximate it.  Select the engine through
:mod:`repro.core.engine_config` (``REPRO_INFER_ENGINE=compiled``) or call
:func:`compile_model` directly.

PR 9 extends the pipeline to whole *training* steps: a gradient-capturing
:class:`Tracer` records the backward traversal and the optimizer update as
graph nodes, and :class:`CompiledTrainStep` replays the joint
forward+backward+update plan (``REPRO_TRAIN_ENGINE=compiled``), again
bit-identical to the eager loop.

PR 10 adds autoregressive decode: :class:`CompiledDecodeStep` replays a
decoder's KV-cached single-token step per (batch, cache-capacity-bucket)
signature with the cache arrays as carried slots
(``REPRO_DECODE_ENGINE=compiled``), bit-identical logits to the eager
step.
"""

from repro.graph.executor import (
    CompiledDecodeStep,
    CompiledGraph,
    CompiledModel,
    CompiledTrainStep,
    compile_graph,
    compile_model,
)
from repro.graph.ir import Graph, Node
from repro.graph.passes import (
    DEFAULT_PASSES,
    TRAIN_PASSES,
    MemoryPlan,
    dead_code_elimination,
    fold_constants,
    fuse_dense_lookups,
    fuse_elementwise_chains,
    optimize,
    plan_memory,
)
from repro.graph.trace import Tracer, trace

__all__ = [
    "Graph",
    "Node",
    "Tracer",
    "trace",
    "optimize",
    "DEFAULT_PASSES",
    "TRAIN_PASSES",
    "dead_code_elimination",
    "fold_constants",
    "fuse_dense_lookups",
    "fuse_elementwise_chains",
    "MemoryPlan",
    "plan_memory",
    "CompiledDecodeStep",
    "CompiledGraph",
    "CompiledModel",
    "CompiledTrainStep",
    "compile_graph",
    "compile_model",
]
