"""Error metrics used by the approximation experiments."""

from __future__ import annotations

from repro.backend import xp as np


def _pair(a, b):
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("shape mismatch: %s vs %s" % (x.shape, y.shape))
    if x.size == 0:
        raise ValueError("cannot compute a metric on empty arrays")
    return x, y


def mse(approx, reference) -> float:
    """Mean squared error between an approximation and its reference."""
    x, y = _pair(approx, reference)
    return float(np.mean((x - y) ** 2))


def rmse(approx, reference) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(approx, reference)))


def mae(approx, reference) -> float:
    """Mean absolute error."""
    x, y = _pair(approx, reference)
    return float(np.mean(np.abs(x - y)))


def max_abs_error(approx, reference) -> float:
    """Worst-case absolute error."""
    x, y = _pair(approx, reference)
    return float(np.max(np.abs(x - y)))


def normalized_mse(approx, reference, eps: float = 1e-20) -> float:
    """MSE normalised by the reference signal power."""
    x, y = _pair(approx, reference)
    denom = float(np.mean(y ** 2)) + eps
    return float(np.mean((x - y) ** 2) / denom)


def sqnr_db(approx, reference, eps: float = 1e-20) -> float:
    """Signal-to-quantization-noise ratio in decibels."""
    x, y = _pair(approx, reference)
    noise = float(np.mean((x - y) ** 2)) + eps
    signal = float(np.mean(y ** 2)) + eps
    return float(10.0 * np.log10(signal / noise))
