"""Dyadic number arithmetic for integer-only rescaling.

Integer-only inference pipelines [Jacob et al., 15] replace floating-point
scale multiplications with a *dyadic* multiply: ``x * (m / 2^e)`` where ``m``
is an integer mantissa.  The quantized network substrate in :mod:`repro.nn`
uses these helpers when folding the product of input/weight scales into the
output scale.
"""

from __future__ import annotations

import dataclasses
import math

from repro.backend import xp as np


@dataclasses.dataclass(frozen=True)
class DyadicNumber:
    """A rational of the form ``mantissa / 2**exponent``."""

    mantissa: int
    exponent: int

    @property
    def value(self) -> float:
        return self.mantissa / float(2 ** self.exponent)

    def multiply(self, x) -> np.ndarray:
        """Integer-friendly multiply: ``(x * mantissa) >> exponent`` with rounding."""
        arr = np.asarray(x, dtype=np.float64)
        scaled = arr * self.mantissa
        return np.round(scaled / (2 ** self.exponent))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DyadicNumber(%d / 2^%d = %g)" % (self.mantissa, self.exponent, self.value)


def to_dyadic(value: float, bits: int = 16) -> DyadicNumber:
    """Approximate ``value`` by a dyadic number with a ``bits``-bit mantissa.

    The mantissa is chosen in ``[2^(bits-1), 2^bits)`` when possible so the
    representation uses the full precision, matching the fixed-point
    multiplier approach of integer-only inference.
    """
    if value <= 0:
        raise ValueError("dyadic conversion requires a positive value, got %r" % (value,))
    if bits < 2:
        raise ValueError("mantissa needs at least 2 bits")
    exponent = bits - 1 - int(math.floor(math.log2(value)))
    mantissa = int(round(value * (2 ** exponent)))
    # Rounding can push the mantissa to 2^bits; renormalise.
    if mantissa >= 2 ** bits:
        mantissa //= 2
        exponent -= 1
    return DyadicNumber(mantissa=mantissa, exponent=exponent)


def dyadic_rescale(x, scale: float, bits: int = 16) -> np.ndarray:
    """Rescale integer data by ``scale`` using dyadic arithmetic.

    Equivalent to ``round(x * scale)`` but performed via an integer multiply
    and shift, as an integer-only accelerator would.
    """
    return to_dyadic(scale, bits=bits).multiply(x)
