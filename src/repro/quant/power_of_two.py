"""Power-of-two scaling factors.

Section 3.1 of the paper forces the scaling factor of a non-linearity input
to be a power of two, ``S = 2^round(log2(alpha))``, so that dividing the
intercepts by ``S`` reduces to a right shift.  These helpers implement that
rounding and the associated shift amounts.
"""

from __future__ import annotations

import math

from repro.backend import xp as np


def power_of_two_exponent(scale: float) -> int:
    """Return the integer ``e`` with ``2^e`` closest to ``scale`` (log domain).

    The rounding happens on ``log2(scale)`` exactly as the paper rounds the
    logarithm of the learnable ``alpha``.
    """
    if scale <= 0:
        raise ValueError("scale must be positive, got %r" % (scale,))
    return int(np.round(math.log2(scale)))


def nearest_power_of_two(scale: float) -> float:
    """Snap ``scale`` to the nearest power of two."""
    return float(2.0 ** power_of_two_exponent(scale))


def round_scale_to_power_of_two(scale: float) -> float:
    """Alias of :func:`nearest_power_of_two` with a quantization-flavoured name."""
    return nearest_power_of_two(scale)


def is_power_of_two(scale: float, tol: float = 1e-12) -> bool:
    """True when ``scale`` equals ``2^e`` for some integer ``e``."""
    if scale <= 0:
        return False
    e = math.log2(scale)
    return abs(e - round(e)) < tol


def shift_for_scale(scale: float) -> int:
    """Right-shift amount implementing division by ``scale``.

    For a power-of-two scale ``S = 2^e`` the intercept rescaling
    ``b / S`` equals ``b >> e`` (a left shift when ``e`` is negative).  The
    returned value is ``e``: positive means shift right, negative means shift
    left.
    """
    if not is_power_of_two(scale):
        raise ValueError(
            "scale %r is not a power of two; round it first with "
            "round_scale_to_power_of_two()" % (scale,)
        )
    return power_of_two_exponent(scale)


def apply_shift(value, shift: int) -> np.ndarray:
    """Multiply ``value`` by ``2**(-shift)`` using float arithmetic.

    This mirrors the hardware shifter behaviour (``value >> shift``) but on
    real-valued intercepts, so it can be used on not-yet-FXP-rounded data.
    """
    return np.asarray(value, dtype=np.float64) * (2.0 ** (-shift))
