"""Fixed-point (FXP) conversion utilities.

Algorithm 1 rounds the searched slopes and intercepts to fixed-point with a
decimal bit-width ``lambda``:  ``K = round(K* · 2^lambda) / 2^lambda``.  This
module provides that rounding plus helpers to reason about the total
bit-width a value needs (integer bits + decimal bits + sign).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

from repro.backend import xp as np


def fxp_round(x, frac_bits: int) -> np.ndarray:
    """Round ``x`` to a fixed-point grid with ``frac_bits`` fractional bits.

    Exactly the paper's ``round(x * 2^lambda) / 2^lambda``.
    """
    if frac_bits < 0:
        raise ValueError("frac_bits must be non-negative, got %d" % frac_bits)
    factor = float(2 ** frac_bits)
    return np.round(np.asarray(x, dtype=np.float64) * factor) / factor


def to_fixed_point(x, frac_bits: int) -> np.ndarray:
    """Return the integer fixed-point codes ``round(x * 2^frac_bits)``."""
    if frac_bits < 0:
        raise ValueError("frac_bits must be non-negative, got %d" % frac_bits)
    return np.round(np.asarray(x, dtype=np.float64) * (2 ** frac_bits)).astype(np.int64)


def from_fixed_point(codes, frac_bits: int) -> np.ndarray:
    """Map integer fixed-point codes back to real values."""
    if frac_bits < 0:
        raise ValueError("frac_bits must be non-negative, got %d" % frac_bits)
    return np.asarray(codes, dtype=np.float64) / (2 ** frac_bits)


def required_integer_bits(x) -> int:
    """Minimum number of integer (magnitude) bits to represent ``x``.

    Excludes the sign bit and fractional bits; e.g. 3.7 needs 2 integer bits,
    -5.0 needs 3.
    """
    amax = float(np.max(np.abs(np.asarray(x, dtype=np.float64)))) if np.size(x) else 0.0
    if amax < 1.0:
        return 0
    return int(math.floor(math.log2(amax))) + 1


@dataclasses.dataclass(frozen=True)
class FixedPointFormat:
    """A signed fixed-point format Q(integer_bits).(frac_bits).

    ``total_bits`` includes the sign bit.
    """

    integer_bits: int
    frac_bits: int
    signed: bool = True

    @property
    def total_bits(self) -> int:
        return self.integer_bits + self.frac_bits + (1 if self.signed else 0)

    @property
    def resolution(self) -> float:
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        return 2.0 ** self.integer_bits - self.resolution

    @property
    def min_value(self) -> float:
        return -(2.0 ** self.integer_bits) if self.signed else 0.0

    def clamp(self, x) -> np.ndarray:
        """Saturate ``x`` to the representable interval of this format."""
        return np.clip(np.asarray(x, dtype=np.float64), self.min_value, self.max_value)

    def quantize(self, x) -> np.ndarray:
        """Round to the format's grid and saturate."""
        return self.clamp(fxp_round(x, self.frac_bits))

    @classmethod
    def for_values(cls, x, frac_bits: int, signed: bool = True) -> "FixedPointFormat":
        """Smallest format with ``frac_bits`` fractional bits covering ``x``."""
        return cls(required_integer_bits(x), frac_bits, signed)


def fxp_quantize_array(x, frac_bits: int, total_bits: int, signed: bool = True) -> np.ndarray:
    """Round to ``frac_bits`` fractional bits and saturate to ``total_bits``.

    This is the storage model of the INT8/INT16 LUT: a value stored in
    ``total_bits`` bits with ``frac_bits`` of them fractional.
    """
    if total_bits <= frac_bits:
        raise ValueError(
            "total_bits (%d) must exceed frac_bits (%d)" % (total_bits, frac_bits)
        )
    integer_bits = total_bits - frac_bits - (1 if signed else 0)
    fmt = FixedPointFormat(integer_bits, frac_bits, signed)
    return fmt.quantize(x)
