"""Uniform quantization (Eq. 2 of the paper).

The paper's quantization function is

    x_tilde = S * q = S * round(clip(x / S, Q_n, Q_p))

where ``S`` is the scaling factor, ``q`` the integer code and
``[Q_n, Q_p]`` the signed or unsigned k-bit bounds.  This module provides a
functional form (:func:`quantize` / :func:`dequantize`) and an object form
(:class:`UniformQuantizer`) used throughout the library.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.backend import xp as np


def quant_bounds(bits: int, signed: bool = True) -> Tuple[int, int]:
    """Return the integer clipping bounds ``(Q_n, Q_p)`` for k-bit data.

    Signed data uses ``[-2^(k-1), 2^(k-1) - 1]``; unsigned uses
    ``[0, 2^k - 1]``.
    """
    if bits < 2:
        raise ValueError("quantization needs at least 2 bits, got %d" % bits)
    if signed:
        return -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    return 0, 2 ** bits - 1


def quantize(x, scale: float, bits: int = 8, signed: bool = True) -> np.ndarray:
    """Quantize ``x`` to the integer code ``q = round(clip(x/S, Qn, Qp))``."""
    if scale <= 0:
        raise ValueError("scale must be positive, got %r" % (scale,))
    qn, qp = quant_bounds(bits, signed)
    arr = np.asarray(x, dtype=np.float64)
    q = np.clip(np.round(arr / scale), qn, qp)
    return q


def dequantize(q, scale: float) -> np.ndarray:
    """Map integer codes back to the real domain: ``x_tilde = S * q``."""
    if scale <= 0:
        raise ValueError("scale must be positive, got %r" % (scale,))
    return np.asarray(q, dtype=np.float64) * scale


@dataclasses.dataclass(frozen=True)
class QuantSpec:
    """Static description of a quantization format.

    Attributes
    ----------
    bits:
        Integer bit-width (8 for INT8, 16 for INT16, ...).
    signed:
        Whether codes are signed two's-complement values.
    power_of_two_scale:
        When true, scales handed to quantizers built from this spec are
        snapped to the nearest power of two (the paper's Section 3.1
        constraint for non-linearity inputs).
    """

    bits: int = 8
    signed: bool = True
    power_of_two_scale: bool = False

    @property
    def qmin(self) -> int:
        return quant_bounds(self.bits, self.signed)[0]

    @property
    def qmax(self) -> int:
        return quant_bounds(self.bits, self.signed)[1]

    @property
    def num_levels(self) -> int:
        return self.qmax - self.qmin + 1

    def integer_dtype(self) -> np.dtype:
        """Smallest numpy integer dtype that can hold codes of this spec."""
        if self.bits <= 8:
            return np.dtype(np.int8 if self.signed else np.uint8)
        if self.bits <= 16:
            return np.dtype(np.int16 if self.signed else np.uint16)
        if self.bits <= 32:
            return np.dtype(np.int32 if self.signed else np.uint32)
        return np.dtype(np.int64 if self.signed else np.uint64)


INT8 = QuantSpec(bits=8, signed=True)
UINT8 = QuantSpec(bits=8, signed=False)
INT16 = QuantSpec(bits=16, signed=True)
INT32 = QuantSpec(bits=32, signed=True)


class UniformQuantizer:
    """A uniform quantizer with a fixed scale.

    Parameters
    ----------
    scale:
        The scaling factor ``S``.
    spec:
        The integer format; defaults to signed INT8.

    The quantizer snaps the scale to a power of two when the spec requests
    it, mirroring the paper's treatment of non-linearity inputs.
    """

    def __init__(self, scale: float, spec: QuantSpec = INT8) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive, got %r" % (scale,))
        if spec.power_of_two_scale:
            from repro.quant.power_of_two import round_scale_to_power_of_two

            scale = round_scale_to_power_of_two(scale)
        self.scale = float(scale)
        self.spec = spec

    def quantize(self, x) -> np.ndarray:
        """Return integer codes for ``x``."""
        return quantize(x, self.scale, self.spec.bits, self.spec.signed)

    def dequantize(self, q) -> np.ndarray:
        """Return the real values represented by codes ``q``."""
        return dequantize(q, self.scale)

    def roundtrip(self, x) -> np.ndarray:
        """Quantize then dequantize (the fake-quant forward pass)."""
        return self.dequantize(self.quantize(x))

    def representable_range(self) -> Tuple[float, float]:
        """The real-valued interval representable by this quantizer."""
        return self.spec.qmin * self.scale, self.spec.qmax * self.scale

    def grid(self) -> np.ndarray:
        """All representable real values, i.e. ``S * [Qn .. Qp]``.

        This is the "dequantized range" the paper samples when evaluating
        operator-level accuracy (Section 4.1).
        """
        codes = np.arange(self.spec.qmin, self.spec.qmax + 1, dtype=np.float64)
        return codes * self.scale

    @classmethod
    def from_range(
        cls,
        lo: float,
        hi: float,
        spec: QuantSpec = INT8,
    ) -> "UniformQuantizer":
        """Build a symmetric quantizer covering ``[lo, hi]`` (min-max)."""
        if not lo < hi:
            raise ValueError("invalid range [%r, %r]" % (lo, hi))
        if spec.signed:
            amax = max(abs(lo), abs(hi))
            scale = amax / max(abs(spec.qmin), spec.qmax)
        else:
            if lo < 0:
                raise ValueError("unsigned quantizer cannot represent negative values")
            scale = hi / spec.qmax
        scale = max(scale, np.finfo(np.float64).tiny)
        return cls(scale, spec)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UniformQuantizer(scale=%g, bits=%d, signed=%s)" % (
            self.scale,
            self.spec.bits,
            self.spec.signed,
        )
