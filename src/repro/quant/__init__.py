"""Integer-only quantization substrate.

Implements the quantization machinery the paper relies on:

* uniform symmetric/affine quantization (Eq. 2) with signed/unsigned bounds,
* power-of-two scaling factors derived from a learnable ``alpha``
  (Section 3.1),
* dyadic-number rescaling for integer-only inference pipelines [15],
* fixed-point (FXP) conversion with a configurable decimal bit-width
  (the ``lambda`` of Algorithm 1),
* simple min-max observers and quantization-error metrics.
"""

from repro.quant.quantizer import (
    QuantSpec,
    UniformQuantizer,
    quantize,
    dequantize,
    quant_bounds,
)
from repro.quant.power_of_two import (
    nearest_power_of_two,
    power_of_two_exponent,
    round_scale_to_power_of_two,
    shift_for_scale,
)
from repro.quant.fxp import (
    to_fixed_point,
    from_fixed_point,
    fxp_round,
    fxp_quantize_array,
    required_integer_bits,
    FixedPointFormat,
)
from repro.quant.dyadic import DyadicNumber, to_dyadic, dyadic_rescale
from repro.quant.observer import MinMaxObserver, MovingAverageObserver
from repro.quant.metrics import mse, rmse, mae, max_abs_error, normalized_mse, sqnr_db

__all__ = [
    "QuantSpec",
    "UniformQuantizer",
    "quantize",
    "dequantize",
    "quant_bounds",
    "nearest_power_of_two",
    "power_of_two_exponent",
    "round_scale_to_power_of_two",
    "shift_for_scale",
    "to_fixed_point",
    "from_fixed_point",
    "fxp_round",
    "fxp_quantize_array",
    "required_integer_bits",
    "FixedPointFormat",
    "DyadicNumber",
    "to_dyadic",
    "dyadic_rescale",
    "MinMaxObserver",
    "MovingAverageObserver",
    "mse",
    "rmse",
    "mae",
    "max_abs_error",
    "normalized_mse",
    "sqnr_db",
]
