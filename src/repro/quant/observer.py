"""Range observers used to calibrate quantizer scales.

The paper's baseline quantized models initialise LSQ scales from observed
activation statistics; these observers provide the standard min-max and
exponential-moving-average variants.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.backend import xp as np

from repro.quant.quantizer import QuantSpec, UniformQuantizer


class MinMaxObserver:
    """Tracks the global min/max of everything it observes."""

    def __init__(self, spec: QuantSpec = QuantSpec()) -> None:
        self.spec = spec
        self.min_val: Optional[float] = None
        self.max_val: Optional[float] = None

    def observe(self, x) -> None:
        """Update statistics with a new batch of data."""
        arr = np.asarray(x, dtype=np.float64)
        if arr.size == 0:
            return
        lo = float(arr.min())
        hi = float(arr.max())
        self.min_val = lo if self.min_val is None else min(self.min_val, lo)
        self.max_val = hi if self.max_val is None else max(self.max_val, hi)

    @property
    def observed_range(self) -> Tuple[float, float]:
        if self.min_val is None or self.max_val is None:
            raise RuntimeError("observer has not seen any data")
        return self.min_val, self.max_val

    def make_quantizer(self) -> UniformQuantizer:
        """Build a symmetric quantizer covering the observed range."""
        lo, hi = self.observed_range
        if lo == hi:
            hi = lo + 1e-8
        return UniformQuantizer.from_range(lo, hi, self.spec)


class MovingAverageObserver:
    """Exponential-moving-average min/max observer."""

    def __init__(self, spec: QuantSpec = QuantSpec(), momentum: float = 0.9) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1), got %r" % (momentum,))
        self.spec = spec
        self.momentum = momentum
        self.min_val: Optional[float] = None
        self.max_val: Optional[float] = None

    def observe(self, x) -> None:
        """Update the moving-average statistics with a new batch."""
        arr = np.asarray(x, dtype=np.float64)
        if arr.size == 0:
            return
        lo = float(arr.min())
        hi = float(arr.max())
        if self.min_val is None:
            self.min_val, self.max_val = lo, hi
        else:
            m = self.momentum
            self.min_val = m * self.min_val + (1 - m) * lo
            self.max_val = m * self.max_val + (1 - m) * hi

    @property
    def observed_range(self) -> Tuple[float, float]:
        if self.min_val is None or self.max_val is None:
            raise RuntimeError("observer has not seen any data")
        return self.min_val, self.max_val

    def make_quantizer(self) -> UniformQuantizer:
        """Build a symmetric quantizer covering the smoothed range."""
        lo, hi = self.observed_range
        if lo == hi:
            hi = lo + 1e-8
        return UniformQuantizer.from_range(lo, hi, self.spec)
