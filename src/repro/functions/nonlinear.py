"""Definitions of the non-linear functions approximated in the paper.

All functions operate element-wise on numpy arrays (or python scalars) and
return ``numpy.ndarray`` (or a scalar float when given a scalar).  They are
implemented with plain numpy so they can serve both as the *reference*
("golden") implementation that the piece-wise linear approximation is scored
against, and as the activation functions of the numpy neural-network
substrate in :mod:`repro.nn`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Optional, Tuple

import numpy as np

ArrayLike = "np.ndarray | float"

_SQRT_2 = math.sqrt(2.0)
_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def _as_array(x) -> np.ndarray:
    return np.asarray(x, dtype=np.float64)


def gelu(x) -> np.ndarray:
    """Gaussian Error Linear Unit (exact, erf based).

    ``gelu(x) = x * 0.5 * (1 + erf(x / sqrt(2)))``
    """
    arr = _as_array(x)
    return arr * 0.5 * (1.0 + _erf_array(arr / _SQRT_2))


def gelu_tanh(x) -> np.ndarray:
    """The tanh approximation of GELU used by some frameworks."""
    arr = _as_array(x)
    inner = _SQRT_2_OVER_PI * (arr + 0.044715 * arr ** 3)
    return 0.5 * arr * (1.0 + np.tanh(inner))


def hswish(x) -> np.ndarray:
    """Hard swish: ``x * relu6(x + 3) / 6``."""
    arr = _as_array(x)
    return arr * np.clip(arr + 3.0, 0.0, 6.0) / 6.0


def hsigmoid(x) -> np.ndarray:
    """Hard sigmoid: ``relu6(x + 3) / 6``."""
    arr = _as_array(x)
    return np.clip(arr + 3.0, 0.0, 6.0) / 6.0


def exp(x) -> np.ndarray:
    """Exponential, the kernel of Softmax.

    In Softmax the input is shifted by the row maximum so the effective
    domain is ``(-inf, 0]``; the paper searches on ``[-8, 0]``.
    """
    arr = _as_array(x)
    return np.exp(arr)


def div(x) -> np.ndarray:
    """Reciprocal ``1 / x`` — the division in Softmax normalisation.

    The operand is the (positive) sum of exponentials, therefore the domain
    is strictly positive.  Inputs of exactly zero are mapped to ``inf``.
    """
    arr = _as_array(x)
    with np.errstate(divide="ignore"):
        return np.where(arr == 0.0, np.inf, 1.0 / np.where(arr == 0.0, 1.0, arr))


def rsqrt(x) -> np.ndarray:
    """Reciprocal square root ``1 / sqrt(x)`` — used by LayerNorm.

    The operand is the (positive) variance plus epsilon, so the domain is
    strictly positive.  Inputs of exactly zero are mapped to ``inf``.
    """
    arr = _as_array(x)
    with np.errstate(divide="ignore"):
        safe = np.where(arr <= 0.0, 1.0, arr)
        return np.where(arr <= 0.0, np.inf, 1.0 / np.sqrt(safe))


def sigmoid(x) -> np.ndarray:
    """Logistic sigmoid, numerically stable for large magnitudes."""
    arr = _as_array(x)
    out = np.empty_like(arr)
    pos = arr >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-arr[pos]))
    e = np.exp(arr[~pos])
    out[~pos] = e / (1.0 + e)
    return out


def tanh(x) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(_as_array(x))


def silu(x) -> np.ndarray:
    """SiLU / swish: ``x * sigmoid(x)``."""
    arr = _as_array(x)
    return arr * sigmoid(arr)


def softplus(x) -> np.ndarray:
    """Softplus ``log(1 + exp(x))``, numerically stable."""
    arr = _as_array(x)
    return np.logaddexp(0.0, arr)


def _erf_array(x: np.ndarray) -> np.ndarray:
    """Vectorised error function without relying on scipy.

    Uses the Abramowitz & Stegun 7.1.26 rational approximation which is
    accurate to ~1.5e-7 — far below the error floor of an 8-entry pwl — and
    keeps the core library dependent on numpy only.
    """
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    y = 1.0 - poly * np.exp(-ax * ax)
    return sign * y


def erf(x) -> np.ndarray:
    """Error function (numpy-only approximation, |err| < 2e-7)."""
    return _erf_array(_as_array(x))


@dataclasses.dataclass(frozen=True)
class NonLinearFunction:
    """A non-linear operator plus the metadata needed to approximate it.

    Attributes
    ----------
    name:
        Canonical lower-case operator name ("gelu", "exp", ...).
    fn:
        The reference callable, element-wise over numpy arrays.
    search_range:
        The ``[R_n, R_p]`` interval the genetic search samples (Table 1).
    scale_dependent:
        ``True`` for operators whose input is a quantized activation and
        therefore carries a scaling factor ``S`` (GELU, HSWISH, EXP);
        ``False`` for operators that receive intermediate fixed-point values
        with a wide range (DIV, RSQRT) and use multi-range input scaling.
    signed_input:
        Whether the quantized input is signed (affects the INT clipping
        bounds ``[Q_n, Q_p]``).
    rescale_power:
        Exponent applied to the sub-range scale when re-scaling the pwl
        output under multi-range input scaling.  ``1.0`` for DIV
        (``1/(s·x) = (1/s)·(1/x)``), ``0.5`` for RSQRT
        (``1/sqrt(s·x) = (1/sqrt(s))·(1/sqrt(x))``), ``0.0`` for
        scale-dependent operators (unused).
    """

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    search_range: Tuple[float, float]
    scale_dependent: bool = True
    signed_input: bool = True
    rescale_power: float = 0.0

    def __call__(self, x) -> np.ndarray:
        return self.fn(x)

    def sample_grid(self, step: float = 0.01) -> np.ndarray:
        """Return the dense evaluation grid used by the GA fitness."""
        lo, hi = self.search_range
        if step <= 0:
            raise ValueError("step must be positive, got %r" % (step,))
        count = int(round((hi - lo) / step)) + 1
        return np.linspace(lo, hi, count)

    def with_range(self, lo: float, hi: float) -> "NonLinearFunction":
        """Return a copy of this operator with a different search range."""
        if not lo < hi:
            raise ValueError("invalid range [%r, %r]" % (lo, hi))
        return dataclasses.replace(self, search_range=(float(lo), float(hi)))


# Canonical operator instances.  Search ranges follow Table 1 of the paper.
GELU = NonLinearFunction("gelu", gelu, (-4.0, 4.0), scale_dependent=True, signed_input=True)
HSWISH = NonLinearFunction("hswish", hswish, (-4.0, 4.0), scale_dependent=True, signed_input=True)
EXP = NonLinearFunction("exp", exp, (-8.0, 0.0), scale_dependent=True, signed_input=True)
DIV = NonLinearFunction(
    "div", div, (0.5, 4.0), scale_dependent=False, signed_input=False, rescale_power=1.0
)
RSQRT = NonLinearFunction(
    "rsqrt", rsqrt, (0.25, 4.0), scale_dependent=False, signed_input=False, rescale_power=0.5
)
SIGMOID = NonLinearFunction("sigmoid", sigmoid, (-6.0, 6.0))
TANH = NonLinearFunction("tanh", tanh, (-4.0, 4.0))
SILU = NonLinearFunction("silu", silu, (-4.0, 4.0))
SOFTPLUS = NonLinearFunction("softplus", softplus, (-4.0, 4.0))
ERF = NonLinearFunction("erf", erf, (-3.0, 3.0))

ALL_FUNCTIONS = (
    GELU,
    HSWISH,
    EXP,
    DIV,
    RSQRT,
    SIGMOID,
    TANH,
    SILU,
    SOFTPLUS,
    ERF,
)
