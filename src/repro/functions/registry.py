"""Registry mapping operator names to :class:`NonLinearFunction` records.

The registry is the single lookup point used by the search API, the
experiment runners and the neural-network substrate, so user code can refer
to operators by name ("gelu", "exp", ...) everywhere.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.functions.nonlinear import ALL_FUNCTIONS, NonLinearFunction


class FunctionRegistry:
    """A case-insensitive name → :class:`NonLinearFunction` mapping."""

    def __init__(self, functions: Iterable[NonLinearFunction] = ()) -> None:
        self._functions: Dict[str, NonLinearFunction] = {}
        for fn in functions:
            self.register(fn)

    def register(self, fn: NonLinearFunction, overwrite: bool = False) -> None:
        """Register ``fn`` under its canonical name.

        Raises ``ValueError`` if the name is already taken and ``overwrite``
        is false.
        """
        key = fn.name.lower()
        if key in self._functions and not overwrite:
            raise ValueError("function %r already registered" % (fn.name,))
        self._functions[key] = fn

    def get(self, name: str) -> NonLinearFunction:
        """Look up an operator by name (case-insensitive)."""
        key = name.lower()
        if key not in self._functions:
            raise KeyError(
                "unknown non-linear function %r; known: %s"
                % (name, ", ".join(sorted(self._functions)))
            )
        return self._functions[key]

    def names(self) -> List[str]:
        """Sorted list of registered operator names."""
        return sorted(self._functions)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._functions

    def __iter__(self):
        return iter(self._functions.values())

    def __len__(self) -> int:
        return len(self._functions)


DEFAULT_REGISTRY = FunctionRegistry(ALL_FUNCTIONS)


def get_function(name: str) -> NonLinearFunction:
    """Return the registered operator called ``name``."""
    return DEFAULT_REGISTRY.get(name)


def list_functions() -> List[str]:
    """Return the names of all registered operators."""
    return DEFAULT_REGISTRY.names()


def register_function(fn: NonLinearFunction, overwrite: bool = False) -> None:
    """Register a custom operator in the default registry."""
    DEFAULT_REGISTRY.register(fn, overwrite=overwrite)
