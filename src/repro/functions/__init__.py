"""Non-linear operator library.

This package defines the non-linear functions that the paper approximates
(GELU, HSWISH, EXP, DIV, RSQRT) plus a handful of other operators that are
common in Transformer variants (SIGMOID, TANH, SILU, SOFTPLUS, ERF).  Each
operator is described by a :class:`NonLinearFunction` record that bundles the
callable, its default search range and the quantization behaviour of its
input (whether the input arrives as a quantized activation with a scaling
factor, or as an intermediate fixed-point value with a wide range).
"""

from repro.functions.nonlinear import (
    NonLinearFunction,
    gelu,
    hswish,
    exp,
    div,
    rsqrt,
    sigmoid,
    tanh,
    silu,
    softplus,
    erf,
)
from repro.functions.registry import (
    FunctionRegistry,
    get_function,
    list_functions,
    register_function,
    DEFAULT_REGISTRY,
)

__all__ = [
    "NonLinearFunction",
    "gelu",
    "hswish",
    "exp",
    "div",
    "rsqrt",
    "sigmoid",
    "tanh",
    "silu",
    "softplus",
    "erf",
    "FunctionRegistry",
    "get_function",
    "list_functions",
    "register_function",
    "DEFAULT_REGISTRY",
]
