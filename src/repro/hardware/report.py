"""Text reports in the shape of the paper's hardware tables."""

from __future__ import annotations

from typing import List, Sequence

from repro.hardware.cost_model import Precision, SynthesisEstimate, savings_vs


def format_synthesis_report(estimate: SynthesisEstimate) -> str:
    """A Design-Compiler-flavoured per-component breakdown for one unit."""
    lines: List[str] = []
    lines.append(
        "pwl unit: precision=%s entries=%d%s"
        % (
            estimate.precision.value.upper(),
            estimate.num_entries,
            " (calibrated)" if estimate.calibrated else "",
        )
    )
    lines.append("-" * 56)
    lines.append("%-22s %14s %14s" % ("component", "area (um^2)", "power (mW)"))
    for name, (area, power) in sorted(estimate.breakdown().items()):
        lines.append("%-22s %14.1f %14.4f" % (name, area, power))
    lines.append("-" * 56)
    lines.append("%-22s %14.1f %14.4f" % ("TOTAL", estimate.area_um2, estimate.power_mw))
    return "\n".join(lines)


def format_table6(estimates: Sequence[SynthesisEstimate]) -> str:
    """Render a sweep of estimates in the layout of the paper's Table 6."""
    lines: List[str] = []
    lines.append("Table 6: Hardware Costs of the LUT-based pwl unit (model)")
    lines.append("%-10s %8s %14s %12s" % ("Precision", "Entry", "Area (um^2)", "Power (mW)"))
    for est in estimates:
        lines.append(
            "%-10s %8d %14.0f %12.2f"
            % (est.precision.value.upper(), est.num_entries, est.area_um2, est.power_mw)
        )
    # Headline savings: INT8 vs FP32 / INT32 at 8 entries, when present.
    by_key = {(e.precision, e.num_entries): e for e in estimates}
    int8 = by_key.get((Precision.INT8, 8))
    for ref_precision in (Precision.FP32, Precision.INT32):
        ref = by_key.get((ref_precision, 8))
        if int8 is not None and ref is not None:
            area_saving, power_saving = savings_vs(ref, int8)
            lines.append(
                "INT8 8-entry vs %s 8-entry: area saving %.1f%%, power saving %.1f%%"
                % (ref_precision.value.upper(), 100 * area_saving, 100 * power_saving)
            )
    return "\n".join(lines)
