"""Hardware cost modelling for the LUT-based pwl unit (Table 6 substitute).

The paper synthesizes Verilog implementations of the Fig. 1 pwl units with
Synopsys Design Compiler on TSMC 28-nm at 500 MHz.  Without the proprietary
toolchain and PDK we substitute an analytical, component-level cost model:

* :mod:`repro.hardware.components` — a 28-nm-calibrated library of datapath
  components (registers, adders, multipliers, comparators, shifters,
  multiplexers, FP32 units) with area and power estimates.
* :mod:`repro.hardware.cost_model` — composes those components into the
  Fig. 1a (high-precision) and Fig. 1b (quantization-aware) pwl units and
  produces a synthesis-style area/power report.
* :mod:`repro.hardware.verilog` — emits synthesizable Verilog RTL for the
  quantization-aware unit, so the modelled datapath is concrete and could be
  pushed through a real flow.

The coefficients are calibrated so the INT8 / 8-entry anchor lands near the
paper's 961 um^2 / 0.40 mW; the quantity of interest — the INT8 vs FP/INT32
ratio — is robust to the calibration.
"""

from repro.hardware.components import (
    Technology,
    TSMC28,
    HardwareComponent,
    register_bank,
    adder,
    multiplier,
    comparator,
    barrel_shifter,
    multiplexer,
    priority_encoder,
    fp32_multiplier,
    fp32_adder,
    fp32_comparator,
)
from repro.hardware.cost_model import (
    Precision,
    PWLUnitDesign,
    SynthesisEstimate,
    estimate_pwl_unit,
    table6_sweep,
)
from repro.hardware.verilog import generate_pwl_verilog, generate_testbench
from repro.hardware.report import format_synthesis_report, format_table6

__all__ = [
    "Technology",
    "TSMC28",
    "HardwareComponent",
    "register_bank",
    "adder",
    "multiplier",
    "comparator",
    "barrel_shifter",
    "multiplexer",
    "priority_encoder",
    "fp32_multiplier",
    "fp32_adder",
    "fp32_comparator",
    "Precision",
    "PWLUnitDesign",
    "SynthesisEstimate",
    "estimate_pwl_unit",
    "table6_sweep",
    "generate_pwl_verilog",
    "generate_testbench",
    "format_synthesis_report",
    "format_table6",
]
