"""Analytical area/power model of the LUT-based pwl unit (Table 6).

Two datapath variants are composed from the component library:

* **Quantization-aware unit** (Fig. 1b) — used for INT8 and INT16: the
  comparer operates on the integer input code, the LUT stores FXP
  slopes/intercepts and quantized breakpoints, the intercept is rescaled by
  a barrel shifter, and a narrow multiplier/adder produce the output.
* **High-precision unit** (Fig. 1a) — used for INT32 and FP32 (the NN-LUT /
  RI-LUT style): full-width storage, comparators, multiplier and adder, with
  no shifter because the parameters are not shared across scales.

The raw component estimates can optionally be calibrated to the paper's
synthesized INT8 / 8-entry anchor (961 um^2, 0.40 mW) so that the generated
Table 6 is directly comparable; the INT8-vs-FP32 savings ratio is unchanged
by that calibration.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

from repro.hardware.components import (
    HardwareComponent,
    Technology,
    TSMC28,
    adder,
    barrel_shifter,
    comparator,
    fp32_adder,
    fp32_comparator,
    fp32_multiplier,
    multiplexer,
    multiplier,
    priority_encoder,
    register_bank,
)

# The paper's synthesized anchor for calibration (Table 6, first row).
PAPER_ANCHOR_AREA_UM2 = 961.0
PAPER_ANCHOR_POWER_MW = 0.40


class Precision(enum.Enum):
    """Input / LUT-parameter precision of the pwl unit."""

    INT8 = "int8"
    INT16 = "int16"
    INT32 = "int32"
    FP32 = "fp32"

    @property
    def bits(self) -> int:
        return {"int8": 8, "int16": 16, "int32": 32, "fp32": 32}[self.value]

    @property
    def is_float(self) -> bool:
        return self is Precision.FP32

    @property
    def quantization_aware(self) -> bool:
        """INT8/INT16 use the Fig. 1b quantization-aware datapath."""
        return self in (Precision.INT8, Precision.INT16)


@dataclasses.dataclass
class SynthesisEstimate:
    """Synthesis-style result: total area/power plus a component breakdown."""

    precision: Precision
    num_entries: int
    area_um2: float
    power_mw: float
    components: List[HardwareComponent]
    calibrated: bool = False

    def breakdown(self) -> Dict[str, Tuple[float, float]]:
        """Per-component (area, power) totals keyed by component name."""
        out: Dict[str, Tuple[float, float]] = {}
        for comp in self.components:
            area, power = out.get(comp.name, (0.0, 0.0))
            out[comp.name] = (area + comp.total_area, power + comp.total_power)
        return out

    def scaled(self, area_factor: float, power_factor: float) -> "SynthesisEstimate":
        """Return a copy with area/power multiplied by calibration factors."""
        return SynthesisEstimate(
            precision=self.precision,
            num_entries=self.num_entries,
            area_um2=self.area_um2 * area_factor,
            power_mw=self.power_mw * power_factor,
            components=self.components,
            calibrated=True,
        )


@dataclasses.dataclass
class PWLUnitDesign:
    """A pwl LUT unit to be estimated.

    Parameters
    ----------
    precision:
        Input and LUT-parameter precision.
    num_entries:
        LUT entry count ``N`` (the unit stores ``N`` slope/intercept pairs
        and ``N - 1`` breakpoints).
    frac_bits:
        FXP decimal bits of the stored parameters (quantization-aware path).
    tech:
        Technology coefficients.
    """

    precision: Precision
    num_entries: int = 8
    frac_bits: int = 5
    tech: Technology = TSMC28

    def __post_init__(self) -> None:
        if self.num_entries < 2:
            raise ValueError("num_entries must be at least 2, got %d" % self.num_entries)

    # -- datapath composition --------------------------------------------------

    def components(self) -> List[HardwareComponent]:
        """Instantiate the component list for this unit."""
        n = self.num_entries
        bits = self.precision.bits
        tech = self.tech
        parts: List[HardwareComponent] = []

        # Parameter storage: N slopes + N intercepts + (N - 1) breakpoints.
        storage_bits = (3 * n - 1) * bits
        parts.append(register_bank(storage_bits, tech, name="lut_storage"))

        # Comparer: N - 1 comparators plus a priority encoder for the index.
        if self.precision.is_float:
            parts.append(fp32_comparator(tech).times(n - 1))
        else:
            parts.append(comparator(bits, tech).times(n - 1))
        parts.append(priority_encoder(n, tech))

        # Parameter read-out muxes for the selected slope and intercept.
        parts.append(multiplexer(bits, n, tech, name="slope_mux"))
        parts.append(multiplexer(bits, n, tech, name="intercept_mux"))

        # Arithmetic: k * x + b.
        if self.precision.is_float:
            parts.append(fp32_multiplier(tech))
            parts.append(fp32_adder(tech))
            out_bits = 32
        else:
            parts.append(multiplier(bits, bits, tech, name="mac_multiplier"))
            out_bits = 2 * bits
            parts.append(adder(out_bits, tech, name="mac_adder"))

        # Quantization-aware extras (Fig. 1b): the intercept shifter that
        # implements b >> log2(S), plus the output rescaling shifter.
        if self.precision.quantization_aware:
            parts.append(
                barrel_shifter(out_bits, bits, tech, name="intercept_shifter")
            )
            parts.append(
                barrel_shifter(out_bits, bits, tech, name="output_shifter")
            )

        # Output register.
        parts.append(register_bank(out_bits, tech, name="output_register"))
        return parts

    def estimate(self) -> SynthesisEstimate:
        """Sum component areas/powers into a synthesis-style estimate."""
        parts = self.components()
        area = sum(c.total_area for c in parts)
        power = sum(c.total_power for c in parts)
        return SynthesisEstimate(
            precision=self.precision,
            num_entries=self.num_entries,
            area_um2=area,
            power_mw=power,
            components=parts,
        )


def _calibration_factors(tech: Technology = TSMC28) -> Tuple[float, float]:
    """Factors mapping the raw INT8/8-entry estimate onto the paper anchor."""
    anchor = PWLUnitDesign(Precision.INT8, num_entries=8, tech=tech).estimate()
    return (
        PAPER_ANCHOR_AREA_UM2 / anchor.area_um2,
        PAPER_ANCHOR_POWER_MW / anchor.power_mw,
    )


def estimate_pwl_unit(
    precision: Precision,
    num_entries: int = 8,
    tech: Technology = TSMC28,
    calibrate: bool = True,
) -> SynthesisEstimate:
    """Estimate one pwl unit configuration.

    With ``calibrate=True`` (default) the result is scaled so the INT8
    8-entry configuration matches the paper's synthesized anchor, making the
    generated Table 6 directly comparable; ``calibrate=False`` returns the
    raw component-model numbers.
    """
    estimate = PWLUnitDesign(precision, num_entries=num_entries, tech=tech).estimate()
    if not calibrate:
        return estimate
    area_factor, power_factor = _calibration_factors(tech)
    return estimate.scaled(area_factor, power_factor)


def table6_sweep(
    entries: Tuple[int, ...] = (8, 16),
    precisions: Tuple[Precision, ...] = (
        Precision.INT8,
        Precision.INT16,
        Precision.INT32,
        Precision.FP32,
    ),
    tech: Technology = TSMC28,
    calibrate: bool = True,
) -> List[SynthesisEstimate]:
    """Reproduce the full Table 6 sweep (all precisions x entry counts)."""
    results: List[SynthesisEstimate] = []
    for precision in precisions:
        for n in entries:
            results.append(
                estimate_pwl_unit(precision, num_entries=n, tech=tech, calibrate=calibrate)
            )
    return results


def savings_vs(
    reference: SynthesisEstimate, target: SynthesisEstimate
) -> Tuple[float, float]:
    """Area/power savings (fractions) of ``target`` relative to ``reference``.

    Mirrors the paper's headline claim, e.g. INT8 vs FP32:
    ``savings_vs(fp32_estimate, int8_estimate) -> (0.81..., 0.80...)``.
    """
    if reference.area_um2 <= 0 or reference.power_mw <= 0:
        raise ValueError("reference estimate must have positive area and power")
    return (
        1.0 - target.area_um2 / reference.area_um2,
        1.0 - target.power_mw / reference.power_mw,
    )
