"""A 28-nm-calibrated datapath component library.

Each factory returns a :class:`HardwareComponent` with an area estimate in
square micrometres and a dynamic-power estimate in milliwatts at the
reference clock (500 MHz, the paper's synthesis constraint).  The
coefficients are first-order standard-cell models:

* registers scale linearly with bit count,
* ripple/prefix adders and comparators scale linearly with width,
* array multipliers scale with the product of operand widths,
* barrel shifters scale with ``bits * log2(max_shift)``,
* FP32 units are modelled as the mantissa integer datapath plus exponent
  and normalisation overhead.

They are calibrated such that the INT8 8-entry pwl unit lands near the
paper's synthesized 961 um^2 / 0.40 mW anchor; all Table 6 conclusions rest
on *ratios* between configurations, which a linear component model preserves.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List


@dataclasses.dataclass(frozen=True)
class Technology:
    """Process/operating-point coefficients used by the component factories.

    Areas in um^2 per unit, powers in mW per unit at the reference clock.
    """

    name: str = "TSMC28"
    clock_mhz: float = 500.0
    # Area coefficients (fitted against the relative costs of the paper's
    # synthesized Table 6; see EXPERIMENTS.md for the calibration residuals).
    area_per_register_bit: float = 3.6
    area_per_adder_bit: float = 5.5
    area_per_comparator_bit: float = 3.2
    area_per_multiplier_bit2: float = 4.3
    area_per_shifter_bit_stage: float = 1.2
    area_per_mux_bit_input: float = 1.4
    area_per_encoder_input: float = 3.0
    fp32_overhead_factor: float = 1.45
    # Power coefficients (dynamic + leakage lumped), mW at 500 MHz.
    power_per_register_bit: float = 2.4e-3
    power_per_adder_bit: float = 2.0e-3
    power_per_comparator_bit: float = 1.2e-3
    power_per_multiplier_bit2: float = 1.6e-3
    power_per_shifter_bit_stage: float = 0.9e-3
    power_per_mux_bit_input: float = 0.45e-3
    power_per_encoder_input: float = 1.0e-3

    def scaled_to_clock(self, clock_mhz: float) -> "Technology":
        """Return a copy with dynamic power rescaled to another clock."""
        if clock_mhz <= 0:
            raise ValueError("clock must be positive, got %r" % (clock_mhz,))
        ratio = clock_mhz / self.clock_mhz
        scaled = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }
        for key in list(scaled):
            if key.startswith("power_per"):
                scaled[key] = scaled[key] * ratio
        scaled["clock_mhz"] = clock_mhz
        return Technology(**scaled)


TSMC28 = Technology()


@dataclasses.dataclass(frozen=True)
class HardwareComponent:
    """One datapath component with its area/power estimate."""

    name: str
    area_um2: float
    power_mw: float
    count: int = 1

    @property
    def total_area(self) -> float:
        return self.area_um2 * self.count

    @property
    def total_power(self) -> float:
        return self.power_mw * self.count

    def times(self, count: int) -> "HardwareComponent":
        """Return a copy replicated ``count`` times."""
        if count < 0:
            raise ValueError("count must be non-negative, got %d" % count)
        return dataclasses.replace(self, count=count)


def register_bank(bits: int, tech: Technology = TSMC28, name: str = "register") -> HardwareComponent:
    """Flip-flop storage for ``bits`` bits (the LUT parameter store)."""
    if bits < 0:
        raise ValueError("bits must be non-negative")
    return HardwareComponent(
        name=name,
        area_um2=bits * tech.area_per_register_bit,
        power_mw=bits * tech.power_per_register_bit,
    )


def adder(bits: int, tech: Technology = TSMC28, name: str = "adder") -> HardwareComponent:
    """Two's-complement adder of the given width."""
    if bits <= 0:
        raise ValueError("bits must be positive")
    return HardwareComponent(
        name=name,
        area_um2=bits * tech.area_per_adder_bit,
        power_mw=bits * tech.power_per_adder_bit,
    )


def comparator(bits: int, tech: Technology = TSMC28, name: str = "comparator") -> HardwareComponent:
    """Signed magnitude comparator of the given width."""
    if bits <= 0:
        raise ValueError("bits must be positive")
    return HardwareComponent(
        name=name,
        area_um2=bits * tech.area_per_comparator_bit,
        power_mw=bits * tech.power_per_comparator_bit,
    )


def multiplier(
    a_bits: int, b_bits: int, tech: Technology = TSMC28, name: str = "multiplier"
) -> HardwareComponent:
    """Array multiplier with operand widths ``a_bits`` x ``b_bits``."""
    if a_bits <= 0 or b_bits <= 0:
        raise ValueError("operand widths must be positive")
    cells = a_bits * b_bits
    return HardwareComponent(
        name=name,
        area_um2=cells * tech.area_per_multiplier_bit2,
        power_mw=cells * tech.power_per_multiplier_bit2,
    )


def barrel_shifter(
    bits: int, max_shift: int, tech: Technology = TSMC28, name: str = "shifter"
) -> HardwareComponent:
    """Barrel shifter over ``bits`` data bits with ``max_shift`` positions."""
    if bits <= 0 or max_shift <= 0:
        raise ValueError("bits and max_shift must be positive")
    stages = max(1, math.ceil(math.log2(max_shift + 1)))
    return HardwareComponent(
        name=name,
        area_um2=bits * stages * tech.area_per_shifter_bit_stage,
        power_mw=bits * stages * tech.power_per_shifter_bit_stage,
    )


def multiplexer(
    bits: int, num_inputs: int, tech: Technology = TSMC28, name: str = "mux"
) -> HardwareComponent:
    """``num_inputs``-to-1 multiplexer over ``bits``-bit words."""
    if bits <= 0 or num_inputs <= 1:
        raise ValueError("need positive width and at least 2 inputs")
    return HardwareComponent(
        name=name,
        area_um2=bits * num_inputs * tech.area_per_mux_bit_input,
        power_mw=bits * num_inputs * tech.power_per_mux_bit_input,
    )


def priority_encoder(
    num_inputs: int, tech: Technology = TSMC28, name: str = "priority_encoder"
) -> HardwareComponent:
    """Priority encoder turning comparator outputs into a LUT index."""
    if num_inputs <= 0:
        raise ValueError("num_inputs must be positive")
    return HardwareComponent(
        name=name,
        area_um2=num_inputs * tech.area_per_encoder_input,
        power_mw=num_inputs * tech.power_per_encoder_input,
    )


def fp32_multiplier(tech: Technology = TSMC28, name: str = "fp32_multiplier") -> HardwareComponent:
    """IEEE-754 single-precision multiplier.

    Modelled as a 24x24 mantissa multiplier plus exponent adder and
    normalisation logic (the ``fp32_overhead_factor``).
    """
    mantissa = multiplier(24, 24, tech)
    exponent = adder(8, tech)
    area = (mantissa.area_um2 + exponent.area_um2) * tech.fp32_overhead_factor
    power = (mantissa.power_mw + exponent.power_mw) * tech.fp32_overhead_factor
    return HardwareComponent(name=name, area_um2=area, power_mw=power)


def fp32_adder(tech: Technology = TSMC28, name: str = "fp32_adder") -> HardwareComponent:
    """IEEE-754 single-precision adder (align + add + normalise)."""
    mantissa = adder(24, tech)
    align = barrel_shifter(24, 24, tech)
    normalise = barrel_shifter(24, 24, tech)
    exponent = adder(8, tech)
    area = (
        mantissa.area_um2 + align.area_um2 + normalise.area_um2 + exponent.area_um2
    ) * tech.fp32_overhead_factor
    power = (
        mantissa.power_mw + align.power_mw + normalise.power_mw + exponent.power_mw
    ) * tech.fp32_overhead_factor
    return HardwareComponent(name=name, area_um2=area, power_mw=power)


def fp32_comparator(tech: Technology = TSMC28, name: str = "fp32_comparator") -> HardwareComponent:
    """FP32 comparator (sign/exponent/mantissa compare)."""
    base = comparator(32, tech)
    return HardwareComponent(
        name=name, area_um2=base.area_um2 * 1.2, power_mw=base.power_mw * 1.2
    )
