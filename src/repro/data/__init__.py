"""Synthetic data generation for the fine-tuning experiments."""

from repro.data.synthetic_segmentation import (
    SyntheticSegmentationConfig,
    SyntheticSegmentationDataset,
    generate_scene,
)

__all__ = [
    "SyntheticSegmentationConfig",
    "SyntheticSegmentationDataset",
    "generate_scene",
]
