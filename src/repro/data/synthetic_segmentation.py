"""Procedural multi-class segmentation dataset ("synthetic cityscapes").

The paper fine-tunes on Cityscapes (urban scenes, 19 classes, pixel-level
labels).  That dataset cannot be shipped here, so this module generates a
synthetic stand-in that preserves the properties the experiment actually
exercises:

* dense per-pixel multi-class labels,
* structured scenes with a background gradient ("road/sky"), large regions
  ("buildings"), and small objects ("vehicles", "poles"), so both global
  context and local detail matter,
* a fixed train/validation split with deterministic seeding, so baseline
  and pwl-replaced fine-tuning runs see identical data.

Each scene is built by compositing colored geometric primitives (horizon
gradient, rectangles, discs, vertical bars) onto an image; the label map
follows the compositing order.  Gaussian pixel noise makes the task
non-trivial for a small model without requiring many epochs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class SyntheticSegmentationConfig:
    """Shape and content parameters of the synthetic dataset."""

    image_size: int = 32
    num_classes: int = 5
    num_train: int = 128
    num_val: int = 32
    noise_std: float = 0.05
    max_rectangles: int = 3
    max_discs: int = 2
    max_bars: int = 2
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.num_classes < 3:
            raise ValueError("need at least 3 classes (background, region, object)")
        if self.image_size < 8:
            raise ValueError("image_size must be at least 8")


# Fixed per-class base colours (RGB in [0, 1]); extra classes reuse hues with
# a deterministic perturbation so any num_classes up to 10 works.
_BASE_COLORS = np.array(
    [
        [0.25, 0.25, 0.28],  # class 0: road / background
        [0.53, 0.81, 0.92],  # class 1: sky band
        [0.55, 0.27, 0.07],  # class 2: building rectangles
        [0.86, 0.08, 0.24],  # class 3: vehicle discs
        [0.93, 0.91, 0.67],  # class 4: poles / bars
        [0.13, 0.55, 0.13],
        [0.58, 0.00, 0.83],
        [1.00, 0.65, 0.00],
        [0.00, 0.50, 0.50],
        [0.75, 0.75, 0.75],
    ]
)


def _class_color(class_id: int) -> np.ndarray:
    color = _BASE_COLORS[class_id % len(_BASE_COLORS)].copy()
    if class_id >= len(_BASE_COLORS):
        color = np.clip(color * 0.7 + 0.15, 0.0, 1.0)
    return color


def generate_scene(
    rng: np.random.Generator, config: SyntheticSegmentationConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate one ``(image, label)`` pair.

    Returns ``image`` with shape ``(H, W, 3)`` in ``[0, 1]`` and ``label``
    with shape ``(H, W)`` holding integer class ids.
    """
    size = config.image_size
    image = np.zeros((size, size, 3), dtype=np.float64)
    label = np.zeros((size, size), dtype=np.int64)

    # Background: class 0 (lower part) and class 1 (sky band above a horizon).
    horizon = rng.integers(size // 4, size // 2)
    image[:, :, :] = _class_color(0) * (0.8 + 0.4 * np.linspace(0, 1, size))[:, None, None]
    image[:horizon] = _class_color(1) * (0.9 + 0.2 * rng.random())
    label[:horizon] = 1

    ys, xs = np.mgrid[0:size, 0:size]

    # Large rectangles: class 2.
    for _ in range(rng.integers(1, config.max_rectangles + 1)):
        h = rng.integers(size // 5, size // 2)
        w = rng.integers(size // 5, size // 2)
        top = rng.integers(0, size - h)
        left = rng.integers(0, size - w)
        shade = 0.7 + 0.5 * rng.random()
        image[top:top + h, left:left + w] = _class_color(2) * shade
        label[top:top + h, left:left + w] = 2

    # Discs: class 3.
    if config.num_classes > 3:
        for _ in range(rng.integers(1, config.max_discs + 1)):
            radius = rng.integers(max(2, size // 12), max(3, size // 6))
            cy = rng.integers(radius, size - radius)
            cx = rng.integers(radius, size - radius)
            mask = (ys - cy) ** 2 + (xs - cx) ** 2 <= radius ** 2
            shade = 0.7 + 0.5 * rng.random()
            image[mask] = _class_color(3) * shade
            label[mask] = 3

    # Thin vertical bars: class 4 (and higher classes cycle through bars).
    if config.num_classes > 4:
        for _ in range(rng.integers(1, config.max_bars + 1)):
            class_id = int(rng.integers(4, config.num_classes))
            width = max(1, size // 16)
            left = rng.integers(0, size - width)
            top = rng.integers(0, size // 2)
            height = rng.integers(size // 3, size - top)
            shade = 0.7 + 0.5 * rng.random()
            image[top:top + height, left:left + width] = _class_color(class_id) * shade
            label[top:top + height, left:left + width] = class_id

    image = image + rng.normal(0.0, config.noise_std, size=image.shape)
    return np.clip(image, 0.0, 1.0), label


class SyntheticSegmentationDataset:
    """Deterministic train/val split of procedurally generated scenes."""

    def __init__(self, config: SyntheticSegmentationConfig = SyntheticSegmentationConfig()) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        train = [generate_scene(rng, config) for _ in range(config.num_train)]
        val = [generate_scene(rng, config) for _ in range(config.num_val)]
        self.train_images = np.stack([img for img, _ in train])
        self.train_labels = np.stack([lbl for _, lbl in train])
        self.val_images = np.stack([img for img, _ in val])
        self.val_labels = np.stack([lbl for _, lbl in val])

    @property
    def num_classes(self) -> int:
        return self.config.num_classes

    def class_frequencies(self) -> Dict[int, float]:
        """Pixel frequency of each class in the training split."""
        counts = np.bincount(self.train_labels.reshape(-1), minlength=self.num_classes)
        total = counts.sum()
        return {cls: float(counts[cls]) / total for cls in range(self.num_classes)}

    def summary(self) -> str:
        """Human-readable description of the dataset."""
        freq = self.class_frequencies()
        lines = [
            "SyntheticSegmentationDataset: %dx%d images, %d classes"
            % (self.config.image_size, self.config.image_size, self.num_classes),
            "train=%d val=%d" % (self.config.num_train, self.config.num_val),
        ]
        lines.extend("  class %d: %.1f%% of pixels" % (cls, 100 * f) for cls, f in freq.items())
        return "\n".join(lines)
