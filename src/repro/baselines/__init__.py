"""Baseline approximation methods the paper compares against (or that serve
as sanity references for the genetic search).

* :class:`repro.baselines.nn_lut.NNLUT` — re-implementation of NN-LUT
  [Yu et al., DAC'22]: a single-hidden-layer ReLU network trained to mimic
  the operator, whose weights are then *exactly* converted into pwl
  parameters.
* :func:`repro.baselines.uniform.uniform_pwl` — evenly spaced breakpoints.
* :func:`repro.baselines.chebyshev.chebyshev_pwl` — Chebyshev-node
  breakpoints.
* :mod:`repro.baselines.ibert` — the I-BERT polynomial approximations
  (i-exp, i-gelu, i-sqrt) as an operator-specific, non-LUT reference.
"""

from repro.baselines.nn_lut import NNLUT, NNLUTTrainingConfig
from repro.baselines.uniform import uniform_pwl
from repro.baselines.chebyshev import chebyshev_pwl, chebyshev_nodes
from repro.baselines.ibert import i_exp, i_gelu, i_sqrt, i_rsqrt, IBertSoftmax

__all__ = [
    "NNLUT",
    "NNLUTTrainingConfig",
    "uniform_pwl",
    "chebyshev_pwl",
    "chebyshev_nodes",
    "i_exp",
    "i_gelu",
    "i_sqrt",
    "i_rsqrt",
    "IBertSoftmax",
]
