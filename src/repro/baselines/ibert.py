"""I-BERT style polynomial approximations [Kim et al., ICML 2021].

I-BERT replaces GELU, Softmax and LayerNorm kernels with second-order
polynomial (or iterative) integer-friendly approximations.  The paper cites
it as the operator-specific (non-general) alternative to LUT approximation;
we provide the floating-point functional forms as a reference baseline so
the generality argument can be evaluated quantitatively.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

# Coefficients from the I-BERT paper.
_GELU_A = -0.2888
_GELU_B = -1.769
_EXP_LN2 = math.log(2.0)
_EXP_A = 0.3585
_EXP_B = 1.353
_EXP_C = 0.344


def _poly_erf(x: np.ndarray) -> np.ndarray:
    """I-BERT's second-order polynomial approximation of erf."""
    sign = np.sign(x)
    clipped = np.minimum(np.abs(x), -_GELU_B)
    poly = _GELU_A * (clipped + _GELU_B) ** 2 + 1.0
    return sign * poly


def i_gelu(x) -> np.ndarray:
    """i-GELU: ``x * 0.5 * (1 + poly_erf(x / sqrt(2)))``."""
    arr = np.asarray(x, dtype=np.float64)
    return arr * 0.5 * (1.0 + _poly_erf(arr / math.sqrt(2.0)))


def i_exp(x) -> np.ndarray:
    """i-exp: range-reduced second-order polynomial approximation of exp.

    Valid for non-positive inputs (the Softmax use case): ``x`` is
    decomposed as ``x = -z * ln2 + r`` with ``r in (-ln2, 0]`` and
    ``exp(x) = 2^-z * poly(r)``.
    """
    arr = np.asarray(x, dtype=np.float64)
    arr = np.minimum(arr, 0.0)
    z = np.floor(-arr / _EXP_LN2)
    r = arr + z * _EXP_LN2
    poly = _EXP_A * (r + _EXP_B) ** 2 + _EXP_C
    return poly * (2.0 ** (-z))


def i_sqrt(x, iterations: int = 4) -> np.ndarray:
    """Integer-friendly Newton iteration for sqrt (i-sqrt).

    Uses the Newton update ``s <- (s + x / s) / 2`` starting from a
    power-of-two initial guess, which converges in a handful of iterations.
    """
    arr = np.asarray(x, dtype=np.float64)
    if np.any(arr < 0):
        raise ValueError("i_sqrt requires non-negative inputs")
    safe = np.maximum(arr, 1e-12)
    exponent = np.ceil(np.log2(safe) / 2.0)
    s = 2.0 ** exponent
    for _ in range(iterations):
        s = 0.5 * (s + safe / s)
    return np.where(arr == 0.0, 0.0, s)


def i_rsqrt(x, iterations: int = 4) -> np.ndarray:
    """Reciprocal square root via i-sqrt plus one division."""
    s = i_sqrt(x, iterations=iterations)
    with np.errstate(divide="ignore"):
        return np.where(s == 0.0, np.inf, 1.0 / np.where(s == 0.0, 1.0, s))


class IBertSoftmax:
    """Softmax built from i-exp, as a reference integer-friendly pipeline."""

    def __init__(self, axis: int = -1) -> None:
        self.axis = axis

    def __call__(self, x) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        shifted = arr - np.max(arr, axis=self.axis, keepdims=True)
        num = i_exp(shifted)
        return num / np.sum(num, axis=self.axis, keepdims=True)
