"""Re-implementation of NN-LUT [Yu et al., DAC 2022].

NN-LUT approximates a non-linear operator with a single-hidden-layer ReLU
network

    h(x) = sum_j  w2_j * relu(w1_j * x + b1_j)  +  a * x  +  c

which is itself a piece-wise linear function: each hidden unit contributes a
kink at ``p_j = -b1_j / w1_j``.  After training on samples of the operator
(the paper reports 100K samples), the network weights are converted
*exactly* into LUT parameters — breakpoints from the kink locations, slopes
and intercepts from the analytic derivative of the network on each segment.

This mirrors the paper's own re-implementation: the resulting slopes,
intercepts and breakpoints are then converted to the same FXP precision as
GQA-LUT for a fair comparison.  Crucially the breakpoints are *deduced from*
the weights, so there is no direct handle with which to make them
quantization aware — the limitation GQA-LUT's RM strategy addresses.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.engine_config import resolve_infer_engine, resolve_pwl_engine
from repro.core.lut import DenseLUT, QuantizedLUT
from repro.core.pwl import PiecewiseLinear
from repro.functions.nonlinear import NonLinearFunction
from repro.quant.quantizer import QuantSpec


@dataclasses.dataclass(frozen=True)
class NNLUTTrainingConfig:
    """Training hyper-parameters for the NN-LUT network.

    The defaults are sized for reproducibility rather than speed: 100K
    samples as in the original paper, full-batch Adam.  Tests and quick
    experiments can shrink ``num_samples`` and ``iterations``.
    """

    num_samples: int = 100_000
    iterations: int = 3000
    learning_rate: float = 5e-3
    batch_size: int = 4096
    weight_decay: float = 0.0
    seed: Optional[int] = 0


class NNLUT:
    """Single-hidden-layer ReLU approximator with exact pwl extraction.

    Parameters
    ----------
    function:
        Target operator (provides the callable and training range).
    num_entries:
        LUT entry count ``N``; the network uses ``N - 1`` hidden units so
        the extracted pwl has exactly ``N`` segments.
    config:
        Training configuration.
    """

    def __init__(
        self,
        function: NonLinearFunction,
        num_entries: int = 8,
        config: NNLUTTrainingConfig = NNLUTTrainingConfig(),
    ) -> None:
        if num_entries < 2:
            raise ValueError("num_entries must be at least 2, got %d" % num_entries)
        self.function = function
        self.num_entries = num_entries
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._init_parameters()
        self._trained = False

    # -- network definition ---------------------------------------------------

    def _init_parameters(self) -> None:
        lo, hi = self.function.search_range
        hidden = self.num_entries - 1
        # Spread the initial kinks uniformly over the range so the optimiser
        # starts from a sensible pwl; w1 alternates sign to diversify slopes.
        kinks = np.linspace(lo, hi, hidden + 2)[1:-1]
        self.w1 = np.where(np.arange(hidden) % 2 == 0, 1.0, -1.0) * (
            1.0 + 0.1 * self._rng.standard_normal(hidden)
        )
        self.b1 = -self.w1 * kinks
        self.w2 = 0.1 * self._rng.standard_normal(hidden)
        self.a = 0.0
        self.c = 0.0

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Network output for inputs ``x`` (vectorised)."""
        pre = np.outer(x, self.w1) + self.b1
        hidden = np.maximum(pre, 0.0)
        return hidden @ self.w2 + self.a * x + self.c

    def _forward_backward(self, x: np.ndarray, y: np.ndarray):
        pre = np.outer(x, self.w1) + self.b1
        hidden = np.maximum(pre, 0.0)
        pred = hidden @ self.w2 + self.a * x + self.c
        err = pred - y
        n = x.size
        grad_pred = 2.0 * err / n
        grads = {
            "w2": hidden.T @ grad_pred,
            "a": float(grad_pred @ x),
            "c": float(grad_pred.sum()),
        }
        dhidden = np.outer(grad_pred, self.w2)
        dpre = dhidden * (pre > 0)
        grads["w1"] = dpre.T @ x
        grads["b1"] = dpre.sum(axis=0)
        loss = float(np.mean(err ** 2))
        return loss, grads

    # -- training -------------------------------------------------------------

    def train(self, verbose: bool = False) -> float:
        """Train with Adam on samples of the operator; returns the final loss."""
        cfg = self.config
        lo, hi = self.function.search_range
        x_all = self._rng.uniform(lo, hi, size=cfg.num_samples)
        y_all = np.asarray(self.function(x_all), dtype=np.float64)

        params = ["w1", "b1", "w2", "a", "c"]
        m = {p: np.zeros_like(np.asarray(getattr(self, p), dtype=np.float64)) for p in params}
        v = {p: np.zeros_like(np.asarray(getattr(self, p), dtype=np.float64)) for p in params}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        loss = float("inf")

        for it in range(1, cfg.iterations + 1):
            if cfg.batch_size and cfg.batch_size < cfg.num_samples:
                idx = self._rng.integers(0, cfg.num_samples, size=cfg.batch_size)
                x, y = x_all[idx], y_all[idx]
            else:
                x, y = x_all, y_all
            loss, grads = self._forward_backward(x, y)
            for p in params:
                g = np.asarray(grads[p], dtype=np.float64)
                if cfg.weight_decay:
                    g = g + cfg.weight_decay * np.asarray(getattr(self, p), dtype=np.float64)
                m[p] = beta1 * m[p] + (1 - beta1) * g
                v[p] = beta2 * v[p] + (1 - beta2) * g ** 2
                m_hat = m[p] / (1 - beta1 ** it)
                v_hat = v[p] / (1 - beta2 ** it)
                update = cfg.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
                new_value = np.asarray(getattr(self, p), dtype=np.float64) - update
                if np.isscalar(getattr(self, p)) or np.ndim(getattr(self, p)) == 0:
                    setattr(self, p, float(new_value))
                else:
                    setattr(self, p, new_value)
            if verbose and it % max(cfg.iterations // 10, 1) == 0:
                print("NN-LUT[%s] iter %d loss %.3e" % (self.function.name, it, loss))
        self._trained = True
        return loss

    # -- pwl extraction -------------------------------------------------------

    def breakpoints(self) -> np.ndarray:
        """Kink locations ``-b1_j / w1_j`` clipped to the search range."""
        lo, hi = self.function.search_range
        with np.errstate(divide="ignore", invalid="ignore"):
            kinks = np.where(self.w1 != 0, -self.b1 / self.w1, lo)
        return np.sort(np.clip(kinks, lo, hi))

    def extract_pwl(self) -> PiecewiseLinear:
        """Convert the trained network into an exact :class:`PiecewiseLinear`.

        The slope/intercept of each segment is the analytic slope of the
        network at the segment midpoint, so the extracted pwl is identical
        to the network everywhere except at the (measure-zero) kinks.
        """
        lo, hi = self.function.search_range
        bp = self.breakpoints()
        edges = np.concatenate(([lo], bp, [hi]))
        mids = (edges[:-1] + edges[1:]) / 2.0
        active = (np.outer(mids, self.w1) + self.b1) > 0
        slopes = self.a + active @ (self.w1 * self.w2)
        values = self.forward(mids)
        intercepts = values - slopes * mids
        return PiecewiseLinear(breakpoints=bp, slopes=slopes, intercepts=intercepts)

    def extract_fxp_pwl(self, frac_bits: int = 5) -> PiecewiseLinear:
        """Extract the pwl and round slopes/intercepts to FXP (paper protocol)."""
        return self.extract_pwl().to_fixed_point(frac_bits)

    def fit(self, verbose: bool = False) -> PiecewiseLinear:
        """Train (if needed) and return the extracted FP pwl."""
        if not self._trained:
            self.train(verbose=verbose)
        return self.extract_pwl()

    def deploy(
        self,
        scale: float,
        spec: QuantSpec = QuantSpec(bits=8, signed=True),
        frac_bits: int = 5,
        engine: Optional[str] = None,
        infer_engine: Optional[str] = None,
    ) -> Union[DenseLUT, QuantizedLUT]:
        """Deploy the trained network as a quantization-aware LUT unit.

        This is the inference form NN-LUT actually ships: the extracted pwl
        behind the Fig. 1b pipeline at the runtime power-of-two ``scale``.
        ``engine="dense"`` materialises the ``2^bits``-entry gather table,
        ``engine="legacy"`` returns the comparer-based :class:`QuantizedLUT`;
        both are bit-identical over every input code, and ``None`` resolves
        through :mod:`repro.core.engine_config`.  When no pwl engine is
        requested explicitly and the *model* inference engine resolves to
        ``"compiled"`` (``REPRO_INFER_ENGINE=compiled``), the dense gather
        table is materialised — the compiled executor serves LUT operators
        from precomputed tables, never from the per-call comparer pipeline.
        An explicit ``engine=`` kwarg always wins (the engine-config
        contract), so requesting the legacy comparer form stays possible
        under a compiled deployment.  Trains first if the network has not
        been trained yet.
        """
        if engine is None and resolve_infer_engine(infer_engine) == "compiled":
            engine = "dense"
        engine = resolve_pwl_engine(engine)
        if not self._trained:
            self.train()
        pwl = self.extract_fxp_pwl(frac_bits=frac_bits)
        quantized = QuantizedLUT(pwl=pwl, scale=scale, spec=spec, frac_bits=frac_bits)
        if engine == "dense":
            return quantized.to_dense()
        return quantized
