"""Chebyshev-node pwl baseline.

Breakpoints placed at Chebyshev nodes concentrate resolution near the range
boundaries, which is the classical heuristic for minimising interpolation
error.  It is a stronger non-search baseline than uniform spacing for
operators whose curvature concentrates near the boundaries (e.g. EXP).
"""

from __future__ import annotations

import numpy as np

from repro.core.pwl import PiecewiseLinear, fit_pwl
from repro.functions.nonlinear import NonLinearFunction


def chebyshev_nodes(lo: float, hi: float, count: int) -> np.ndarray:
    """``count`` Chebyshev nodes mapped onto ``[lo, hi]`` (ascending)."""
    if count < 1:
        raise ValueError("count must be positive, got %d" % count)
    if not lo < hi:
        raise ValueError("invalid range [%r, %r]" % (lo, hi))
    k = np.arange(1, count + 1, dtype=np.float64)
    nodes = np.cos((2 * k - 1) * np.pi / (2 * count))
    return np.sort((lo + hi) / 2.0 + (hi - lo) / 2.0 * nodes)


def chebyshev_pwl(
    function: NonLinearFunction,
    num_entries: int = 8,
    fit_method: str = "interpolate",
) -> PiecewiseLinear:
    """Fit a pwl with breakpoints at Chebyshev nodes of the search range."""
    lo, hi = function.search_range
    breakpoints = chebyshev_nodes(lo, hi, num_entries - 1)
    return fit_pwl(function.fn, breakpoints, function.search_range, method=fit_method)
