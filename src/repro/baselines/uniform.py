"""Uniform-breakpoint pwl baseline.

The simplest possible LUT approximation: breakpoints evenly spaced over the
search range.  Useful as a floor for judging how much the genetic search
actually buys.
"""

from __future__ import annotations

from repro.core.pwl import PiecewiseLinear, fit_pwl, uniform_breakpoints
from repro.functions.nonlinear import NonLinearFunction


def uniform_pwl(
    function: NonLinearFunction,
    num_entries: int = 8,
    fit_method: str = "interpolate",
) -> PiecewiseLinear:
    """Fit a pwl with evenly spaced breakpoints over the operator's range."""
    lo, hi = function.search_range
    breakpoints = uniform_breakpoints(lo, hi, num_entries)
    return fit_pwl(function.fn, breakpoints, function.search_range, method=fit_method)
