"""Replica worker: the in-process batching core behind a request pipe.

One :func:`worker_main` runs per replica process of a
:class:`~repro.serve.supervisor.ReplicatedServer`.  The protocol is a
duplex ``multiprocessing.Pipe`` carrying plain tuples (picklable, tiny):

Supervisor → worker
    ``(MSG_BATCH, seq, batch)``            one padded, shape-uniform batch
    ``(MSG_SWAP, seq, state, tables, canary)``  hot-swap command
    ``(MSG_STOP,)``                        graceful shutdown

Worker → supervisor
    ``(MSG_READY, pid)``                   executor built, accepting work
    ``(MSG_RESULT, seq, predictions)``     answered batch
    ``(MSG_ERROR, seq, type_name, message)``  application error (bad
    shape etc.) — the *request's* fault, not the replica's; no restart
    ``(MSG_SWAPPED, seq, canary_prediction)``  swap applied; the
    supervisor bit-compares the canary before promoting
    ``(MSG_HB, fallback_count)``           heartbeat (daemon thread)

Design constraints the implementation encodes:

* **Fork-safety.**  Workers are forked, so the parent's fault-injection
  state (and its held lock, if the fork raced a ``fault_point``) is
  inherited.  The worker reinstalls the active plan first thing — a
  fresh ``_FaultState`` with a fresh lock and *fresh per-site counters*
  (chaos plans see each worker generation as call 1, 2, ...).
* **Heartbeats are a thread, not the serve loop.**  A replica wedged
  mid-batch still beats; a replica whose *process* hangs (the
  ``replica.heartbeat:<i>`` delay seam) stops beating and the supervisor
  SIGKILLs it.  Missing heartbeats — not pipe EOF — are the hang signal,
  because sibling replicas forked later hold copies of this pipe's child
  end, which keeps it open after this process dies.
* **Crash seams use ``os._exit``.**  ``fault_flag("replica.kill:<i>")``
  and ``replica.boot.kill:<i>`` model SIGKILL-grade death: no cleanup,
  no exception, no flush — exactly what the supervisor must survive.

Every fault site is suffixed with the replica index, so chaos tests can
kill replica 0 while replica 1 serves (``"replica.kill:0"``) or target
the whole fleet with a glob (``"replica.kill:*"``).
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, Optional

from repro.backend import xp as np

from repro.nn.approx import swap_lut_tables
from repro.nn.module import Module
from repro.reliability import faults
from repro.reliability.faults import fault_flag, fault_point

MSG_BATCH = "batch"
MSG_SWAP = "swap"
MSG_STOP = "stop"
MSG_READY = "ready"
MSG_RESULT = "result"
MSG_ERROR = "error"
MSG_SWAPPED = "swapped"
MSG_HB = "hb"

# Exit codes for the self-inflicted crash seams (visible in the
# supervisor's death reason, so chaos tests can tell seam deaths apart).
BOOT_KILL_EXIT = 13
BATCH_KILL_EXIT = 17


class _Worker:
    """Per-process serving state: the executor and its model."""

    def __init__(self, model: Module, index: int, engine: str, fallback: bool) -> None:
        self.model = model
        self.index = index
        self.engine = engine
        if engine == "compiled":
            from repro.graph.executor import CompiledModel

            self.compiled: Optional["CompiledModel"] = CompiledModel(
                model, fallback=fallback
            )
        else:
            self.compiled = None

    def predict(self, batch: Any) -> Any:
        if self.compiled is not None:
            return self.compiled.predict(batch)
        return self.model.predict(batch, engine="eager")

    def fallback_count(self) -> int:
        return self.compiled.fallback_count if self.compiled is not None else 0

    def apply_swap(
        self,
        state: Dict[str, Any],
        tables: Optional[Dict[str, Any]],
        canary: Any,
    ) -> Any:
        """Strict-load new weights (+ LUTs), return the canary prediction."""
        if fault_flag("replica.swap.corrupt:%d" % self.index):
            # Silent corruption seam: the state still strict-loads (same
            # keys, same shapes) but every tensor's bits are wrong — only
            # the canary parity check downstream can catch this.
            state = {
                key: -np.asarray(value) - 1.0 for key, value in state.items()
            }
        if self.compiled is not None:
            self.compiled.rebind_state(state)
        else:
            self.model.load_state_dict(state, strict=True)
        if tables:
            swap_lut_tables(self.model, tables)
            if self.compiled is not None:
                self.compiled.invalidate()
        return self.predict(canary[None])[0]


def worker_main(
    conn: Any,
    model: Module,
    index: int,
    heartbeat_seconds: float,
    engine: str = "compiled",
    fallback: bool = True,
) -> None:
    """Entry point of one replica process (runs until stop/EOF/kill)."""
    # Reinstall fault state: a fresh lock (the forked copy may be held by
    # a parent thread that no longer exists here) and fresh counters.
    faults.install(faults.active_plan())
    if fault_flag("replica.boot.kill:%d" % index):
        os._exit(BOOT_KILL_EXIT)

    worker = _Worker(model, index, engine, fallback)
    stop = threading.Event()
    send_lock = threading.Lock()  # heartbeat thread and serve loop share conn

    def _beat() -> None:
        while not stop.is_set():
            # The hang seam: a delay spec here stalls the beat, modelling
            # a process that is alive but wedged.
            fault_point("replica.heartbeat:%d" % index)
            try:
                with send_lock:
                    conn.send((MSG_HB, worker.fallback_count()))
            except (OSError, ValueError, BrokenPipeError):
                return  # supervisor went away; the serve loop will exit too
            stop.wait(heartbeat_seconds)

    try:
        conn.send((MSG_READY, os.getpid()))
        heartbeat = threading.Thread(
            target=_beat, name="repro-replica-heartbeat-%d" % index, daemon=True
        )
        heartbeat.start()
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == MSG_STOP:
                return
            if kind == MSG_BATCH:
                _handle_batch(conn, send_lock, worker, message)
            elif kind == MSG_SWAP:
                _handle_swap(conn, send_lock, worker, message)
    finally:
        stop.set()


def _handle_batch(conn: Any, send_lock: threading.Lock, worker: _Worker, message) -> None:
    seq, batch = message[1], message[2]
    if fault_flag("replica.kill:%d" % worker.index):
        os._exit(BATCH_KILL_EXIT)  # die with the batch in flight
    try:
        fault_point("replica.batch:%d" % worker.index)
        predictions = worker.predict(batch)
    except Exception as error:
        reply = (MSG_ERROR, seq, type(error).__name__, str(error))
    else:
        reply = (MSG_RESULT, seq, predictions)
    with send_lock:
        conn.send(reply)


def _handle_swap(conn: Any, send_lock: threading.Lock, worker: _Worker, message) -> None:
    seq, state, tables, canary = message[1], message[2], message[3], message[4]
    try:
        fault_point("replica.swap:%d" % worker.index)
        canary_prediction = worker.apply_swap(state, tables, canary)
    except Exception as error:
        reply = (MSG_ERROR, seq, type(error).__name__, str(error))
    else:
        reply = (MSG_SWAPPED, seq, canary_prediction)
    with send_lock:
        conn.send(reply)
