"""Micro-batching serving front-end over the compiled inference executor.

:class:`BatchingServer` is the heavy-traffic entry point the ROADMAP's
north star asks for: many concurrent callers submit single images, a
background worker drains them into batches, pads each batch up to a fixed
bucket size, runs **one** compiled forward per batch, and splits the
result back to per-request futures.

Why each piece exists:

* **Batching** amortises the per-call Python dispatch over many requests —
  one compiled replay for up to ``max_batch`` images instead of one per
  image.  The worker collects until ``max_batch`` requests are waiting or
  ``max_wait_ms`` has elapsed since the batch opened (the classic
  throughput/latency knob pair).
* **Bucket padding** rounds every batch up to the next power-of-two size
  (by repeating the last image) so the compiled executor's
  shape-specialisation cache sees a handful of signatures instead of one
  per distinct batch size; padded rows are dropped before responding.
  Results are per-row independent (every model op is batch-parallel), so
  padding never changes a real request's prediction — pinned by the
  serving parity tests.
* **Shape grouping** keeps correctness for mixed workloads: only requests
  with identical image shapes are stacked together, so no request is ever
  resized or spatially padded.  A failing shape-group fails only its own
  requests; the other groups in the same batch still answer.

Reliability tier (PR 6) — admission control, deadlines, degradation:

* **Bounded admission queue.**  ``max_queue`` caps queued requests;
  ``submit`` on a full queue raises
  :class:`~repro.reliability.errors.QueueFullError` *without enqueuing* —
  overload sheds at the door instead of growing memory and latency
  unboundedly.  ``0`` keeps the queue unbounded (the benchmark-burst
  configuration).
* **Per-request deadlines.**  ``submit(image, deadline_ms=...)`` (or the
  server-wide ``deadline_ms`` default) stamps an absolute expiry; the
  worker rejects expired requests with
  :class:`~repro.reliability.errors.DeadlineExceededError` *before* batch
  assembly, so a backlogged server never wastes a forward on an answer
  nobody is waiting for.
* **Caller timeouts.**  ``predict(timeout=...)`` / ``predict_many``
  bound the wait on the response future, so a wedged batch (worker
  stall, injected delay) cannot hang callers forever.
* **Graceful degradation.**  The compiled executor is wrapped with
  ``fallback=True``: a trace/replay failure degrades that batch to the
  eager path (bit-identical results, one warning, counted) instead of
  failing requests — an un-traceable model still serves.
* **Observability.**  Counters live in a lock-guarded mutable record;
  :meth:`BatchingServer.stats` returns an immutable snapshot (the
  previous unlocked ``stats`` attribute was a data race with the worker
  thread).  :meth:`BatchingServer.health` returns an endpoint-shaped
  dict: queue depth, shed/expired counters, fallback count, and
  p50/p95/p99 latency overall and per padding bucket.

Knob defaults resolve through :mod:`repro.core.engine_config`
(kwarg > context > ``REPRO_SERVE_QUEUE_LIMIT`` /
``REPRO_SERVE_DEADLINE_MS`` > unbounded / no deadline).

Autoregressive decode tier (PR 10) — sequence-bucketed KV-cached serving:

* **Sessions.**  :meth:`BatchingServer.open_session` opens one live
  stream (prompt + growing KV cache) against a cache-carrying decoder
  (:class:`repro.nn.transformer.MiniDecoder`); :meth:`submit_decode`
  enqueues *one token step* for a session through the same admission
  queue (bounds, deadlines, close ordering all shared with prefill).
* **Cache-bucket grouping.**  Each drain, live decode requests are
  grouped by their session's cache capacity bucket (powers of two, see
  :func:`repro.nn.transformer.bucket_capacity`) and each group runs as
  **one** batched step — rows are independent, so sessions at different
  lengths share a step as long as they share a bucket.  Group sizes pad
  to the next power of two (ghost rows repeat the last session, outputs
  discarded), so the compiled decode executor sees a handful of
  (batch, capacity) signatures under arbitrary traffic.
* **Engine knob.**  ``decode_engine`` (kwarg > context >
  ``REPRO_DECODE_ENGINE`` > ``"eager"``) picks the per-group step:
  :class:`repro.graph.executor.CompiledDecodeStep` replay or the eager
  step.  Greedy token streams are identical either way.

Responses are plain ``concurrent.futures.Future`` objects; exceptions
raised by a shape-group propagate to every request in it.  The server is
a context manager — ``close()`` stops the worker after the queue empties,
then assert-drains the queue: anything still there is a stranded request
(a bug), which is failed loudly rather than left hanging.
"""

from __future__ import annotations

import dataclasses
import itertools
import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.backend import xp as np

from repro.core.engine_config import (
    resolve_decode_engine,
    resolve_infer_engine,
    resolve_serve_deadline_ms,
    resolve_serve_queue_limit,
)
from repro.nn.module import Module
from repro.reliability.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServerClosedError,
)
from repro.reliability.faults import fault_point

_STOP = object()

# Latency samples kept per histogram (overall + per padding bucket); a
# bounded window so a long-lived server's memory stays flat while the
# percentiles track recent behaviour.
_LATENCY_WINDOW = 4096


@dataclasses.dataclass(frozen=True)
class ServerStats:
    """Immutable snapshot of a server's lifetime counters.

    ``requests`` counts admitted submissions; ``completed``/``failed``
    partition answered requests by outcome; ``shed`` and ``expired`` are
    the admission-control rejections (queue full / deadline passed) and
    are *not* part of ``requests``/``failed``.  ``fallbacks`` counts
    batches answered by the eager path after a compiled failure.
    ``decode_steps``/``decode_batches`` count answered single-token
    decode requests and the bucket-grouped batched steps that served
    them — ``decode_steps > decode_batches`` is the direct evidence that
    concurrent sessions shared steps.
    """

    requests: int = 0
    batches: int = 0
    padded_rows: int = 0
    max_batch_size: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    expired: int = 0
    fallbacks: int = 0
    decode_steps: int = 0
    decode_batches: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.completed / self.batches if self.batches else 0.0


class _Request:
    """One queued image with its response future and timing metadata."""

    __slots__ = ("image", "future", "enqueued", "deadline")

    def __init__(self, image: Any, future: "Future", deadline: Optional[float]) -> None:
        self.image = image
        self.future = future
        self.enqueued = time.monotonic()
        self.deadline = deadline

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline

    # Every answer path goes through these two, so subclasses can attach
    # cleanup (the decode request releases its session's in-flight latch).

    def resolve(self, value: Any) -> None:
        self.future.set_result(value)

    def fail(self, error: BaseException) -> None:
        self.future.set_exception(error)


class DecodeSession:
    """One live autoregressive stream: its token history and KV cache.

    Created by :meth:`BatchingServer.open_session`; advanced one token at
    a time by :meth:`BatchingServer.submit_decode`.  ``tokens`` holds the
    prompt plus every token generated so far; ``cache`` carries the
    attention prefix at the session's power-of-two capacity bucket.  The
    worker thread owns both between submit and resolution — the
    ``_inflight`` latch makes a double-submit fail fast instead of racing
    two steps of the same stream.
    """

    _ids = itertools.count()

    def __init__(self, prompt: Sequence[int], cache: Any) -> None:
        self.session_id = next(DecodeSession._ids)
        self.tokens: List[int] = [int(token) for token in prompt]
        self.prompt_len = len(self.tokens)
        self.cache = cache
        self._inflight = False

    @property
    def position(self) -> int:
        """The next position to consume (= tokens already in the cache)."""
        return self.cache.length

    @property
    def generated(self) -> List[int]:
        """Tokens produced after the prompt, in order."""
        return self.tokens[self.prompt_len:]


class _DecodeRequest(_Request):
    """One queued single-token decode step for a live session."""

    __slots__ = ("session",)

    def __init__(
        self, session: DecodeSession, future: "Future", deadline: Optional[float]
    ) -> None:
        super().__init__(None, future, deadline)
        self.session = session

    def resolve(self, value: Any) -> None:
        self.session._inflight = False
        super().resolve(value)

    def fail(self, error: BaseException) -> None:
        self.session._inflight = False
        super().fail(error)


def _bucket_size(count: int, max_batch: int) -> int:
    """The padded batch size: next power of two, capped at ``max_batch``."""
    size = 1
    while size < count:
        size *= 2
    return min(size, max_batch)


def _percentiles(samples: Sequence[float]) -> Dict[str, float]:
    """Endpoint-shaped latency summary (milliseconds) of one window."""
    if not samples:
        return {"count": 0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    array = np.asarray(samples, dtype=np.float64) * 1e3
    p50, p95, p99 = np.percentile(array, (50.0, 95.0, 99.0))
    return {
        "count": int(array.size),
        "p50_ms": float(p50),
        "p95_ms": float(p95),
        "p99_ms": float(p99),
    }


class BatchingServer:
    """Batches concurrent ``submit`` calls into single compiled forwards.

    Parameters
    ----------
    model:
        The segmentation model to serve.  Put it in ``eval()`` mode first
        if it contains train-only layers; the server does not change modes.
    max_batch:
        Largest number of requests fused into one forward (and the padding
        bucket cap).
    max_wait_ms:
        How long an open batch waits for more requests before running
        under-full.  ``0`` runs whatever a single queue drain finds.
    engine:
        Inference engine for the batched forward, resolved through
        :mod:`repro.core.engine_config` (kwarg > context >
        ``REPRO_INFER_ENGINE`` > default).  The server exists to feed the
        ``"compiled"`` executor, but ``"eager"`` is honoured for
        comparisons — predictions are bit-identical either way.
    max_queue:
        Admission bound: queued (not yet batch-assembled) requests beyond
        this are shed with :class:`QueueFullError`.  ``0`` = unbounded.
        Resolves through the engine config (``REPRO_SERVE_QUEUE_LIMIT``).
    deadline_ms:
        Default per-request deadline; ``0`` disables.  Per-call
        ``submit(..., deadline_ms=...)`` overrides.  Resolves through the
        engine config (``REPRO_SERVE_DEADLINE_MS``).
    fallback:
        Wrap the compiled executor with eager degradation (default on —
        this is the production path; pass ``False`` to make compiled
        failures fail requests loudly instead).
    decode_engine:
        Engine for the bucket-grouped decode steps (only consulted when
        the served model is a cache-carrying decoder), resolved through
        :mod:`repro.core.engine_config` (kwarg > context >
        ``REPRO_DECODE_ENGINE`` > default).
    """

    def __init__(
        self,
        model: Module,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
        engine: Optional[str] = None,
        max_queue: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        fallback: bool = True,
        decode_engine: Optional[str] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1, got %d" % max_batch)
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0, got %r" % (max_wait_ms,))
        self.model = model
        self.max_batch = max_batch
        self.max_wait = max_wait_ms / 1000.0
        self.engine = resolve_infer_engine(engine)
        self.decode_engine = resolve_decode_engine(decode_engine)
        self.max_queue = resolve_serve_queue_limit(max_queue)
        self.default_deadline = resolve_serve_deadline_ms(deadline_ms) / 1000.0
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._lock = threading.Lock()  # guards _closed + _depth (admission)
        self._depth = 0
        self._decode_step = None       # lazy CompiledDecodeStep
        self._decode_lock = threading.Lock()  # session open / calibration
        # Counters are mutated by the worker thread and read by any caller:
        # one lock guards the mutable record; stats() snapshots under it.
        self._stats_lock = threading.Lock()
        self._counters = {field.name: 0 for field in dataclasses.fields(ServerStats)}
        self._latency: List[float] = []
        self._bucket_latency: Dict[Any, List[float]] = {}
        self._worker_error: Optional[BaseException] = None
        self._fallback = fallback
        self._setup_executor()
        self._worker = threading.Thread(
            target=self._serve_loop, name="repro-batching-server", daemon=True
        )
        self._worker.start()

    def _setup_executor(self) -> None:
        """Build the in-process executor.  The replicated supervisor
        overrides this with a no-op — its forwards run in worker processes."""
        if self.engine == "compiled":
            from repro.graph.executor import CompiledModel

            self._compiled: Optional["CompiledModel"] = CompiledModel(
                self.model, fallback=self._fallback
            )
        else:
            self._compiled = None

    # -- client surface --------------------------------------------------------

    def submit(self, image: Any, deadline_ms: Optional[float] = None) -> "Future":
        """Enqueue one image ``(H, W, C)``; resolves to its ``(H, W)`` labels.

        Raises :class:`QueueFullError` (and sheds the request) when the
        admission queue is at ``max_queue``.  ``deadline_ms`` bounds how
        long the request may wait for batch assembly; an expired request
        fails with :class:`DeadlineExceededError` instead of running.
        """
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError("deadline_ms must be > 0, got %r" % (deadline_ms,))
        # Convert outside the lock: for non-float64 inputs asarray copies,
        # and serialising that across client threads would bottleneck
        # submission on single-threaded preprocessing.
        array = np.asarray(image, dtype=np.float64)
        deadline_s = (
            deadline_ms / 1000.0 if deadline_ms is not None else self.default_deadline
        )
        deadline = time.monotonic() + deadline_s if deadline_s > 0 else None
        with self._lock:
            if self._closed:
                raise RuntimeError("server is closed")
            if self.max_queue and self._depth >= self.max_queue:
                shed = True
            else:
                shed = False
                self._depth += 1
                future: Future = Future()
                self._queue.put(_Request(array, future, deadline))
        if shed:
            self._count(shed=1)
            raise QueueFullError(
                "admission queue full (%d queued, limit %d)"
                % (self.max_queue, self.max_queue)
            )
        self._count(requests=1)
        return future

    def predict(
        self,
        image: Any,
        timeout: Optional[float] = None,
        deadline_ms: Optional[float] = None,
    ):
        """Synchronous wrapper: ``submit(image).result(timeout)``.

        ``timeout`` (seconds) bounds the wait on the response, so a wedged
        batch cannot hang the caller; ``concurrent.futures.TimeoutError``
        propagates when it expires.
        """
        return self.submit(image, deadline_ms=deadline_ms).result(timeout)

    def predict_many(
        self, images: Sequence[Any], timeout: Optional[float] = None
    ) -> List[Any]:
        """Submit a burst of images and wait for all results (in order).

        ``timeout`` bounds the *total* wait across the burst.
        """
        futures = [self.submit(image) for image in images]
        if timeout is None:
            return [future.result() for future in futures]
        deadline = time.monotonic() + timeout
        return [
            future.result(max(0.0, deadline - time.monotonic())) for future in futures
        ]

    # -- decode client surface -------------------------------------------------

    def open_session(self, prompt: Sequence[int]) -> DecodeSession:
        """Open a live decode stream for ``prompt`` (a token-id sequence).

        Calibrates the decoder's operator quantizers from the prompt on
        the first session (identical to every other decode path — the
        stream-parity precondition) and allocates the session's KV cache
        at the smallest capacity bucket.
        """
        if not hasattr(self.model, "step"):
            raise TypeError(
                "model %s is not a cache-carrying decoder (no step())"
                % type(self.model).__name__
            )
        prompt = [int(token) for token in prompt]
        if not prompt:
            raise ValueError("prompt must contain at least one token")
        if len(prompt) >= self.model.config.max_seq:
            raise ValueError(
                "prompt length %d leaves no room to decode (max_seq %d)"
                % (len(prompt), self.model.config.max_seq)
            )
        with self._decode_lock:
            if self._closed:
                raise RuntimeError("server is closed")
            self.model.calibrate(prompt)
            if self._decode_step is None and self.decode_engine == "compiled":
                from repro.graph.executor import CompiledDecodeStep

                self._decode_step = CompiledDecodeStep(self.model)
        return DecodeSession(prompt, self.model.new_cache(batch=1))

    def submit_decode(
        self, session: DecodeSession, deadline_ms: Optional[float] = None
    ) -> "Future":
        """Enqueue one token step; resolves to the predicted next token.

        While the session's position is inside the prompt this is a
        prefill step (the prediction is reported but the next prompt
        token is what enters the cache); once past it, each step appends
        its greedy prediction to ``session.tokens``.  A session supports
        one in-flight step at a time — a second submit before the first
        resolves raises ``RuntimeError`` instead of racing the cache.

        Shares the prefill path's admission control: ``QueueFullError``
        on a full queue, deadline expiry before batch assembly.
        """
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError("deadline_ms must be > 0, got %r" % (deadline_ms,))
        if session.position + 1 >= self.model.config.max_seq:
            raise ValueError(
                "session %d is at max_seq %d; cannot decode further"
                % (session.session_id, self.model.config.max_seq)
            )
        deadline_s = (
            deadline_ms / 1000.0 if deadline_ms is not None else self.default_deadline
        )
        deadline = time.monotonic() + deadline_s if deadline_s > 0 else None
        with self._lock:
            if self._closed:
                raise RuntimeError("server is closed")
            if session._inflight:
                raise RuntimeError(
                    "session %d already has a step in flight" % session.session_id
                )
            if self.max_queue and self._depth >= self.max_queue:
                shed = True
            else:
                shed = False
                session._inflight = True
                self._depth += 1
                future: Future = Future()
                self._queue.put(_DecodeRequest(session, future, deadline))
        if shed:
            self._count(shed=1)
            raise QueueFullError(
                "admission queue full (%d queued, limit %d)"
                % (self.max_queue, self.max_queue)
            )
        self._count(requests=1)
        return future

    def generate(
        self,
        prompt: Sequence[int],
        num_new: int,
        timeout: Optional[float] = None,
    ) -> List[int]:
        """Greedy-decode ``num_new`` tokens after ``prompt``; returns them.

        Sequential per session — the batching win comes from *concurrent*
        sessions whose steps share bucket groups, so run ``generate``
        from several threads to exercise it (the decode benchmark does).
        """
        session = self.open_session(prompt)
        steps = len(prompt) + num_new - 1
        for _ in range(steps):
            self.submit_decode(session).result(timeout)
        return session.generated

    def close(self) -> None:
        """Stop the worker after every queued request has been answered.

        The stop sentinel is enqueued *under the admission lock*, so no
        submit can slip a request behind it.  After the worker joins, the
        queue is assert-drained: a remaining request would mean the
        ordering contract broke — its future is failed with
        :class:`ServerClosedError` and the bug is raised loudly.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_STOP)
        self._worker.join()
        self._assert_drained()

    def _assert_drained(self) -> None:
        stranded = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if isinstance(item, _Request):
                stranded.append(item)
        if stranded:
            error = ServerClosedError(
                "server closed with %d unserved request(s) stranded in the queue"
                % len(stranded)
            )
            for request in stranded:
                request.fail(error)
            raise AssertionError(
                "BatchingServer.close() ordering contract violated: "
                "%d request(s) were queued behind the stop sentinel" % len(stranded)
            )

    def __enter__(self) -> "BatchingServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- observability ---------------------------------------------------------

    def _count(self, **deltas: int) -> None:
        with self._stats_lock:
            for name, delta in deltas.items():
                self._counters[name] += delta

    def _observe_max_batch(self, count: int) -> None:
        with self._stats_lock:
            if count > self._counters["max_batch_size"]:
                self._counters["max_batch_size"] = count

    def _record_latency(self, bucket: Any, seconds: float) -> None:
        """Add one sample to the overall and per-bucket windows.

        ``bucket`` is the padded batch size (int) for prefill groups, or a
        ``"decode/batch<G>/cap<C>"`` string for decode groups — the cache
        capacity is part of the key so a decode group never aliases a
        prefill group of the same padded size in the percentile stats.
        """
        with self._stats_lock:
            window = self._bucket_latency.setdefault(bucket, [])
            window.append(seconds)
            del window[:-_LATENCY_WINDOW]
            self._latency.append(seconds)
            del self._latency[:-_LATENCY_WINDOW]

    def _fallback_count(self) -> int:
        """Eager-degradation count; subclasses aggregate across replicas."""
        return self._compiled.fallback_count if self._compiled is not None else 0

    def stats(self) -> ServerStats:
        """An immutable, internally consistent snapshot of the counters."""
        fallbacks = self._fallback_count()
        with self._stats_lock:
            values = dict(self._counters)
        values["fallbacks"] = fallbacks
        return ServerStats(**values)

    def health(self) -> Dict[str, Any]:
        """Endpoint-shaped health report (JSON-serialisable).

        Carries everything a load balancer or dashboard needs: liveness,
        queue depth against its bound, the admission-control counters,
        the compiled-fallback count, and p50/p95/p99 latency overall and
        per padding bucket.
        """
        snapshot = self.stats()
        with self._lock:
            depth = self._depth
            closed = self._closed
        with self._stats_lock:
            latency = _percentiles(self._latency)
            # Prefill keys are padded batch sizes (ints, sorted numerically
            # first); decode keys are "decode/batch<G>/cap<C>" strings —
            # distinct key spaces, so the two tiers never alias.
            buckets = {
                str(bucket): _percentiles(window)
                for bucket, window in sorted(
                    self._bucket_latency.items(),
                    key=lambda item: (isinstance(item[0], str), str(item[0])),
                )
            }
        degraded = snapshot.fallbacks > 0 or self._worker_error is not None
        if closed:
            status = "closed"
        elif self._worker_error is not None or not self._worker.is_alive():
            status = "failed"
        elif degraded:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "engine": self.engine,
            "queue_depth": depth,
            "queue_limit": self.max_queue,
            "worker_alive": self._worker.is_alive(),
            "worker_error": (
                repr(self._worker_error) if self._worker_error is not None else None
            ),
            "counters": dataclasses.asdict(snapshot),
            "latency_ms": latency,
            "bucket_latency_ms": buckets,
        }

    # -- worker ----------------------------------------------------------------

    def _take(self, item: Any, now: float) -> Optional[_Request]:
        """Account one dequeued item; expire it here if its deadline passed."""
        if not isinstance(item, _Request):
            return None
        with self._lock:
            self._depth -= 1
        if item.expired(now):
            self._count(expired=1)
            item.fail(
                DeadlineExceededError(
                    "deadline expired %.1f ms before batch assembly"
                    % (1e3 * (now - item.deadline))
                )
            )
            return None
        return item

    def _collect(self) -> Tuple[List[_Request], bool]:
        """Block for the next request, then drain up to a full batch.

        Returns ``(requests, stop)``; ``stop`` is set when the shutdown
        sentinel was consumed (after which no request follows it — close()
        enqueues it last *under the admission lock* and submit() refuses
        once closed).  Requests whose deadline already passed are rejected
        here — before batch assembly — and never occupy a batch slot.
        """
        pending: List[_Request] = []
        while not pending:
            first = self._queue.get()
            if first is _STOP:
                return [], True
            taken = self._take(first, time.monotonic())
            if taken is not None:
                pending.append(taken)
        deadline = None
        while len(pending) < self.max_batch:
            if self.max_wait <= 0:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
            else:
                if deadline is None:
                    deadline = time.monotonic() + self.max_wait
                    remaining = self.max_wait
                else:
                    remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
            if item is _STOP:
                return pending, True
            taken = self._take(item, time.monotonic())
            if taken is not None:
                pending.append(taken)
        return pending, False

    def _run_batch(self, requests: List[_Request]) -> None:
        fault_point("serve.batch")
        # A second expiry sweep: time passed while the batch filled.
        now = time.monotonic()
        live: List[_Request] = []
        for request in requests:
            if request.expired(now):
                self._count(expired=1)
                request.fail(
                    DeadlineExceededError("deadline expired during batch collection")
                )
            else:
                live.append(request)
        decode = [r for r in live if isinstance(r, _DecodeRequest)]
        prefill = [r for r in live if not isinstance(r, _DecodeRequest)]
        # Group by image shape so no request is spatially padded; each
        # group becomes one stacked forward.
        groups: Dict[Tuple[int, ...], List[_Request]] = {}
        for request in prefill:
            groups.setdefault(request.image.shape, []).append(request)
        for _, group in sorted(groups.items()):
            self._submit_group(group)
        self._run_decode(decode)

    @staticmethod
    def _pad_group(group: List[_Request], max_batch: int) -> Tuple[Any, int]:
        """Stack one shape-group into its padded batch array.

        Returns ``(batch, padded_to)``; padding repeats the last image up
        to the power-of-two bucket so the compiled executor's signature
        cache stays small.
        """
        images = [request.image for request in group]
        count = len(images)
        padded_to = _bucket_size(count, max_batch)
        if padded_to > count:
            images = images + [images[-1]] * (padded_to - count)
        return np.stack(images, axis=0), padded_to

    def _submit_group(self, group: List[_Request]) -> None:
        """Answer one shape-group.  The base server executes inline; the
        replicated supervisor overrides this to enqueue the padded batch
        for a worker-process dispatcher instead."""
        try:
            batch, padded_to = self._pad_group(group, self.max_batch)
            predictions = self._predict_batch(batch)
        except BaseException as error:  # propagate to every caller in the group
            self._fail_group(group, error)
            return
        self._finish_group(group, predictions, padded_to)

    def _predict_batch(self, batch: Any) -> Any:
        """One forward over a stacked batch via the configured engine."""
        if self._compiled is not None:
            return self._compiled.predict(batch)
        return self.model.predict(batch, engine="eager")

    def _finish_group(self, group: List[_Request], predictions: Any, padded_to: int) -> None:
        """Account a served group and resolve its futures (padding dropped)."""
        done = time.monotonic()
        count = len(group)
        self._count(batches=1, completed=count, padded_rows=padded_to - count)
        self._observe_max_batch(count)
        for index, request in enumerate(group):
            self._record_latency(padded_to, done - request.enqueued)
            request.resolve(predictions[index])

    def _fail_group(self, group: List[_Request], error: BaseException) -> None:
        """Fail every caller in a group with the same error."""
        self._count(failed=len(group))
        for request in group:
            request.fail(error)

    # -- decode drain ----------------------------------------------------------

    def _run_decode(self, requests: List["_DecodeRequest"]) -> None:
        """Serve this drain's decode requests, one batched step per bucket.

        Each session's cache is first grown to the bucket holding its next
        position, then requests sharing a capacity bucket run as a single
        batched step — the sequence-bucketed group drain.  A failing group
        fails only its own sessions' steps.
        """
        if not requests:
            return
        groups: Dict[int, List[_DecodeRequest]] = {}
        for request in requests:
            capacity = request.session.cache.ensure(request.session.position + 1)
            groups.setdefault(capacity, []).append(request)
        for _, group in sorted(groups.items()):
            try:
                self._decode_group(group)
            except BaseException as error:
                self._fail_group(group, error)

    def _decode_group(self, group: List["_DecodeRequest"]) -> None:
        """One batched compiled/eager step over a same-bucket group."""
        from repro.nn.transformer import stack_caches, step_inputs

        sessions = [request.session for request in group]
        count = len(sessions)
        padded_to = _bucket_size(count, self.max_batch)
        # Ghost rows repeat the last session; per-row outputs beyond the
        # real count are discarded.  Reading one cache twice is safe — the
        # step is functional in the cache arrays.
        rows = sessions + [sessions[-1]] * (padded_to - count)
        capacity = rows[0].cache.capacity
        positions = [session.position for session in rows]
        tokens = [session.tokens[position]
                  for session, position in zip(rows, positions)]
        token_onehot, pos_onehot, mask = step_inputs(
            self.model, tokens, positions, capacity
        )
        stacked = stack_caches([session.cache for session in rows])
        logits, new_caches = self._decode_predict(
            token_onehot, pos_onehot, mask, stacked.arrays()
        )
        done = time.monotonic()
        self._count(decode_batches=1, decode_steps=count,
                    padded_rows=padded_to - count)
        bucket_key = "decode/batch%d/cap%d" % (padded_to, capacity)
        for index, request in enumerate(group):
            session = request.session
            session.cache.update(
                [array[index:index + 1].copy() for array in new_caches]
            )
            predicted = int(np.argmax(logits[index]))
            if session.cache.length == len(session.tokens):
                session.tokens.append(predicted)
            self._record_latency(bucket_key, done - request.enqueued)
            request.resolve(predicted)

    def _decode_predict(
        self, token_onehot: Any, pos_onehot: Any, mask: Any,
        cache_arrays: Sequence[Any],
    ) -> Tuple[Any, Sequence[Any]]:
        """One batched decode step via the configured decode engine."""
        if self._decode_step is not None:
            return self._decode_step.step(
                token_onehot, pos_onehot, mask, cache_arrays
            )
        return self.model.eager_step(token_onehot, pos_onehot, mask, cache_arrays)

    def _serve_loop(self) -> None:
        try:
            while True:
                requests, stop = self._collect()
                if requests:
                    self._run_batch(requests)
                if stop:
                    return
        except BaseException as error:  # worker must never die silently
            self._worker_error = error
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(item, _Request):
                    with self._lock:
                        self._depth -= 1
                    self._count(failed=1)
                    item.fail(error)
            raise
