"""Micro-batching serving front-end over the compiled inference executor.

:class:`BatchingServer` is the heavy-traffic entry point the ROADMAP's
north star asks for: many concurrent callers submit single images, a
background worker drains them into batches, pads each batch up to a fixed
bucket size, runs **one** compiled forward per batch, and splits the
result back to per-request futures.

Why each piece exists:

* **Batching** amortises the per-call Python dispatch over many requests —
  one compiled replay for up to ``max_batch`` images instead of one per
  image.  The worker collects until ``max_batch`` requests are waiting or
  ``max_wait_ms`` has elapsed since the batch opened (the classic
  throughput/latency knob pair).
* **Bucket padding** rounds every batch up to the next power-of-two size
  (by repeating the last image) so the compiled executor's
  shape-specialisation cache sees a handful of signatures instead of one
  per distinct batch size; padded rows are dropped before responding.
  Results are per-row independent (every model op is batch-parallel), so
  padding never changes a real request's prediction — pinned by the
  serving parity tests.
* **Shape grouping** keeps correctness for mixed workloads: only requests
  with identical image shapes are stacked together, so no request is ever
  resized or spatially padded.  A failing shape-group fails only its own
  requests; the other groups in the same batch still answer.

Reliability tier (PR 6) — admission control, deadlines, degradation:

* **Bounded admission queue.**  ``max_queue`` caps queued requests;
  ``submit`` on a full queue raises
  :class:`~repro.reliability.errors.QueueFullError` *without enqueuing* —
  overload sheds at the door instead of growing memory and latency
  unboundedly.  ``0`` keeps the queue unbounded (the benchmark-burst
  configuration).
* **Per-request deadlines.**  ``submit(image, deadline_ms=...)`` (or the
  server-wide ``deadline_ms`` default) stamps an absolute expiry; the
  worker rejects expired requests with
  :class:`~repro.reliability.errors.DeadlineExceededError` *before* batch
  assembly, so a backlogged server never wastes a forward on an answer
  nobody is waiting for.
* **Caller timeouts.**  ``predict(timeout=...)`` / ``predict_many``
  bound the wait on the response future, so a wedged batch (worker
  stall, injected delay) cannot hang callers forever.
* **Graceful degradation.**  The compiled executor is wrapped with
  ``fallback=True``: a trace/replay failure degrades that batch to the
  eager path (bit-identical results, one warning, counted) instead of
  failing requests — an un-traceable model still serves.
* **Observability.**  Counters live in a lock-guarded mutable record;
  :meth:`BatchingServer.stats` returns an immutable snapshot (the
  previous unlocked ``stats`` attribute was a data race with the worker
  thread).  :meth:`BatchingServer.health` returns an endpoint-shaped
  dict: queue depth, shed/expired counters, fallback count, and
  p50/p95/p99 latency overall and per padding bucket.

Knob defaults resolve through :mod:`repro.core.engine_config`
(kwarg > context > ``REPRO_SERVE_QUEUE_LIMIT`` /
``REPRO_SERVE_DEADLINE_MS`` > unbounded / no deadline).

Responses are plain ``concurrent.futures.Future`` objects; exceptions
raised by a shape-group propagate to every request in it.  The server is
a context manager — ``close()`` stops the worker after the queue empties,
then assert-drains the queue: anything still there is a stranded request
(a bug), which is failed loudly rather than left hanging.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.backend import xp as np

from repro.core.engine_config import (
    resolve_infer_engine,
    resolve_serve_deadline_ms,
    resolve_serve_queue_limit,
)
from repro.nn.module import Module
from repro.reliability.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServerClosedError,
)
from repro.reliability.faults import fault_point

_STOP = object()

# Latency samples kept per histogram (overall + per padding bucket); a
# bounded window so a long-lived server's memory stays flat while the
# percentiles track recent behaviour.
_LATENCY_WINDOW = 4096


@dataclasses.dataclass(frozen=True)
class ServerStats:
    """Immutable snapshot of a server's lifetime counters.

    ``requests`` counts admitted submissions; ``completed``/``failed``
    partition answered requests by outcome; ``shed`` and ``expired`` are
    the admission-control rejections (queue full / deadline passed) and
    are *not* part of ``requests``/``failed``.  ``fallbacks`` counts
    batches answered by the eager path after a compiled failure.
    """

    requests: int = 0
    batches: int = 0
    padded_rows: int = 0
    max_batch_size: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    expired: int = 0
    fallbacks: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.completed / self.batches if self.batches else 0.0


class _Request:
    """One queued image with its response future and timing metadata."""

    __slots__ = ("image", "future", "enqueued", "deadline")

    def __init__(self, image: Any, future: "Future", deadline: Optional[float]) -> None:
        self.image = image
        self.future = future
        self.enqueued = time.monotonic()
        self.deadline = deadline

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline


def _bucket_size(count: int, max_batch: int) -> int:
    """The padded batch size: next power of two, capped at ``max_batch``."""
    size = 1
    while size < count:
        size *= 2
    return min(size, max_batch)


def _percentiles(samples: Sequence[float]) -> Dict[str, float]:
    """Endpoint-shaped latency summary (milliseconds) of one window."""
    if not samples:
        return {"count": 0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    array = np.asarray(samples, dtype=np.float64) * 1e3
    p50, p95, p99 = np.percentile(array, (50.0, 95.0, 99.0))
    return {
        "count": int(array.size),
        "p50_ms": float(p50),
        "p95_ms": float(p95),
        "p99_ms": float(p99),
    }


class BatchingServer:
    """Batches concurrent ``submit`` calls into single compiled forwards.

    Parameters
    ----------
    model:
        The segmentation model to serve.  Put it in ``eval()`` mode first
        if it contains train-only layers; the server does not change modes.
    max_batch:
        Largest number of requests fused into one forward (and the padding
        bucket cap).
    max_wait_ms:
        How long an open batch waits for more requests before running
        under-full.  ``0`` runs whatever a single queue drain finds.
    engine:
        Inference engine for the batched forward, resolved through
        :mod:`repro.core.engine_config` (kwarg > context >
        ``REPRO_INFER_ENGINE`` > default).  The server exists to feed the
        ``"compiled"`` executor, but ``"eager"`` is honoured for
        comparisons — predictions are bit-identical either way.
    max_queue:
        Admission bound: queued (not yet batch-assembled) requests beyond
        this are shed with :class:`QueueFullError`.  ``0`` = unbounded.
        Resolves through the engine config (``REPRO_SERVE_QUEUE_LIMIT``).
    deadline_ms:
        Default per-request deadline; ``0`` disables.  Per-call
        ``submit(..., deadline_ms=...)`` overrides.  Resolves through the
        engine config (``REPRO_SERVE_DEADLINE_MS``).
    fallback:
        Wrap the compiled executor with eager degradation (default on —
        this is the production path; pass ``False`` to make compiled
        failures fail requests loudly instead).
    """

    def __init__(
        self,
        model: Module,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
        engine: Optional[str] = None,
        max_queue: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        fallback: bool = True,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1, got %d" % max_batch)
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0, got %r" % (max_wait_ms,))
        self.model = model
        self.max_batch = max_batch
        self.max_wait = max_wait_ms / 1000.0
        self.engine = resolve_infer_engine(engine)
        self.max_queue = resolve_serve_queue_limit(max_queue)
        self.default_deadline = resolve_serve_deadline_ms(deadline_ms) / 1000.0
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._lock = threading.Lock()  # guards _closed + _depth (admission)
        self._depth = 0
        # Counters are mutated by the worker thread and read by any caller:
        # one lock guards the mutable record; stats() snapshots under it.
        self._stats_lock = threading.Lock()
        self._counters = {field.name: 0 for field in dataclasses.fields(ServerStats)}
        self._latency: List[float] = []
        self._bucket_latency: Dict[int, List[float]] = {}
        self._worker_error: Optional[BaseException] = None
        self._fallback = fallback
        self._setup_executor()
        self._worker = threading.Thread(
            target=self._serve_loop, name="repro-batching-server", daemon=True
        )
        self._worker.start()

    def _setup_executor(self) -> None:
        """Build the in-process executor.  The replicated supervisor
        overrides this with a no-op — its forwards run in worker processes."""
        if self.engine == "compiled":
            from repro.graph.executor import CompiledModel

            self._compiled: Optional["CompiledModel"] = CompiledModel(
                self.model, fallback=self._fallback
            )
        else:
            self._compiled = None

    # -- client surface --------------------------------------------------------

    def submit(self, image: Any, deadline_ms: Optional[float] = None) -> "Future":
        """Enqueue one image ``(H, W, C)``; resolves to its ``(H, W)`` labels.

        Raises :class:`QueueFullError` (and sheds the request) when the
        admission queue is at ``max_queue``.  ``deadline_ms`` bounds how
        long the request may wait for batch assembly; an expired request
        fails with :class:`DeadlineExceededError` instead of running.
        """
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError("deadline_ms must be > 0, got %r" % (deadline_ms,))
        # Convert outside the lock: for non-float64 inputs asarray copies,
        # and serialising that across client threads would bottleneck
        # submission on single-threaded preprocessing.
        array = np.asarray(image, dtype=np.float64)
        deadline_s = (
            deadline_ms / 1000.0 if deadline_ms is not None else self.default_deadline
        )
        deadline = time.monotonic() + deadline_s if deadline_s > 0 else None
        with self._lock:
            if self._closed:
                raise RuntimeError("server is closed")
            if self.max_queue and self._depth >= self.max_queue:
                shed = True
            else:
                shed = False
                self._depth += 1
                future: Future = Future()
                self._queue.put(_Request(array, future, deadline))
        if shed:
            self._count(shed=1)
            raise QueueFullError(
                "admission queue full (%d queued, limit %d)"
                % (self.max_queue, self.max_queue)
            )
        self._count(requests=1)
        return future

    def predict(
        self,
        image: Any,
        timeout: Optional[float] = None,
        deadline_ms: Optional[float] = None,
    ):
        """Synchronous wrapper: ``submit(image).result(timeout)``.

        ``timeout`` (seconds) bounds the wait on the response, so a wedged
        batch cannot hang the caller; ``concurrent.futures.TimeoutError``
        propagates when it expires.
        """
        return self.submit(image, deadline_ms=deadline_ms).result(timeout)

    def predict_many(
        self, images: Sequence[Any], timeout: Optional[float] = None
    ) -> List[Any]:
        """Submit a burst of images and wait for all results (in order).

        ``timeout`` bounds the *total* wait across the burst.
        """
        futures = [self.submit(image) for image in images]
        if timeout is None:
            return [future.result() for future in futures]
        deadline = time.monotonic() + timeout
        return [
            future.result(max(0.0, deadline - time.monotonic())) for future in futures
        ]

    def close(self) -> None:
        """Stop the worker after every queued request has been answered.

        The stop sentinel is enqueued *under the admission lock*, so no
        submit can slip a request behind it.  After the worker joins, the
        queue is assert-drained: a remaining request would mean the
        ordering contract broke — its future is failed with
        :class:`ServerClosedError` and the bug is raised loudly.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_STOP)
        self._worker.join()
        self._assert_drained()

    def _assert_drained(self) -> None:
        stranded = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if isinstance(item, _Request):
                stranded.append(item)
        if stranded:
            error = ServerClosedError(
                "server closed with %d unserved request(s) stranded in the queue"
                % len(stranded)
            )
            for request in stranded:
                request.future.set_exception(error)
            raise AssertionError(
                "BatchingServer.close() ordering contract violated: "
                "%d request(s) were queued behind the stop sentinel" % len(stranded)
            )

    def __enter__(self) -> "BatchingServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- observability ---------------------------------------------------------

    def _count(self, **deltas: int) -> None:
        with self._stats_lock:
            for name, delta in deltas.items():
                self._counters[name] += delta

    def _observe_max_batch(self, count: int) -> None:
        with self._stats_lock:
            if count > self._counters["max_batch_size"]:
                self._counters["max_batch_size"] = count

    def _record_latency(self, bucket: int, seconds: float) -> None:
        with self._stats_lock:
            window = self._bucket_latency.setdefault(bucket, [])
            window.append(seconds)
            del window[:-_LATENCY_WINDOW]
            self._latency.append(seconds)
            del self._latency[:-_LATENCY_WINDOW]

    def _fallback_count(self) -> int:
        """Eager-degradation count; subclasses aggregate across replicas."""
        return self._compiled.fallback_count if self._compiled is not None else 0

    def stats(self) -> ServerStats:
        """An immutable, internally consistent snapshot of the counters."""
        fallbacks = self._fallback_count()
        with self._stats_lock:
            values = dict(self._counters)
        values["fallbacks"] = fallbacks
        return ServerStats(**values)

    def health(self) -> Dict[str, Any]:
        """Endpoint-shaped health report (JSON-serialisable).

        Carries everything a load balancer or dashboard needs: liveness,
        queue depth against its bound, the admission-control counters,
        the compiled-fallback count, and p50/p95/p99 latency overall and
        per padding bucket.
        """
        snapshot = self.stats()
        with self._lock:
            depth = self._depth
            closed = self._closed
        with self._stats_lock:
            latency = _percentiles(self._latency)
            buckets = {
                str(bucket): _percentiles(window)
                for bucket, window in sorted(self._bucket_latency.items())
            }
        degraded = snapshot.fallbacks > 0 or self._worker_error is not None
        if closed:
            status = "closed"
        elif self._worker_error is not None or not self._worker.is_alive():
            status = "failed"
        elif degraded:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "engine": self.engine,
            "queue_depth": depth,
            "queue_limit": self.max_queue,
            "worker_alive": self._worker.is_alive(),
            "worker_error": (
                repr(self._worker_error) if self._worker_error is not None else None
            ),
            "counters": dataclasses.asdict(snapshot),
            "latency_ms": latency,
            "bucket_latency_ms": buckets,
        }

    # -- worker ----------------------------------------------------------------

    def _take(self, item: Any, now: float) -> Optional[_Request]:
        """Account one dequeued item; expire it here if its deadline passed."""
        if not isinstance(item, _Request):
            return None
        with self._lock:
            self._depth -= 1
        if item.expired(now):
            self._count(expired=1)
            item.future.set_exception(
                DeadlineExceededError(
                    "deadline expired %.1f ms before batch assembly"
                    % (1e3 * (now - item.deadline))
                )
            )
            return None
        return item

    def _collect(self) -> Tuple[List[_Request], bool]:
        """Block for the next request, then drain up to a full batch.

        Returns ``(requests, stop)``; ``stop`` is set when the shutdown
        sentinel was consumed (after which no request follows it — close()
        enqueues it last *under the admission lock* and submit() refuses
        once closed).  Requests whose deadline already passed are rejected
        here — before batch assembly — and never occupy a batch slot.
        """
        pending: List[_Request] = []
        while not pending:
            first = self._queue.get()
            if first is _STOP:
                return [], True
            taken = self._take(first, time.monotonic())
            if taken is not None:
                pending.append(taken)
        deadline = None
        while len(pending) < self.max_batch:
            if self.max_wait <= 0:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
            else:
                if deadline is None:
                    deadline = time.monotonic() + self.max_wait
                    remaining = self.max_wait
                else:
                    remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
            if item is _STOP:
                return pending, True
            taken = self._take(item, time.monotonic())
            if taken is not None:
                pending.append(taken)
        return pending, False

    def _run_batch(self, requests: List[_Request]) -> None:
        fault_point("serve.batch")
        # A second expiry sweep: time passed while the batch filled.
        now = time.monotonic()
        live: List[_Request] = []
        for request in requests:
            if request.expired(now):
                self._count(expired=1)
                request.future.set_exception(
                    DeadlineExceededError("deadline expired during batch collection")
                )
            else:
                live.append(request)
        # Group by image shape so no request is spatially padded; each
        # group becomes one stacked forward.
        groups: Dict[Tuple[int, ...], List[_Request]] = {}
        for request in live:
            groups.setdefault(request.image.shape, []).append(request)
        for _, group in sorted(groups.items()):
            self._submit_group(group)

    @staticmethod
    def _pad_group(group: List[_Request], max_batch: int) -> Tuple[Any, int]:
        """Stack one shape-group into its padded batch array.

        Returns ``(batch, padded_to)``; padding repeats the last image up
        to the power-of-two bucket so the compiled executor's signature
        cache stays small.
        """
        images = [request.image for request in group]
        count = len(images)
        padded_to = _bucket_size(count, max_batch)
        if padded_to > count:
            images = images + [images[-1]] * (padded_to - count)
        return np.stack(images, axis=0), padded_to

    def _submit_group(self, group: List[_Request]) -> None:
        """Answer one shape-group.  The base server executes inline; the
        replicated supervisor overrides this to enqueue the padded batch
        for a worker-process dispatcher instead."""
        try:
            batch, padded_to = self._pad_group(group, self.max_batch)
            predictions = self._predict_batch(batch)
        except BaseException as error:  # propagate to every caller in the group
            self._fail_group(group, error)
            return
        self._finish_group(group, predictions, padded_to)

    def _predict_batch(self, batch: Any) -> Any:
        """One forward over a stacked batch via the configured engine."""
        if self._compiled is not None:
            return self._compiled.predict(batch)
        return self.model.predict(batch, engine="eager")

    def _finish_group(self, group: List[_Request], predictions: Any, padded_to: int) -> None:
        """Account a served group and resolve its futures (padding dropped)."""
        done = time.monotonic()
        count = len(group)
        self._count(batches=1, completed=count, padded_rows=padded_to - count)
        self._observe_max_batch(count)
        for index, request in enumerate(group):
            self._record_latency(padded_to, done - request.enqueued)
            request.future.set_result(predictions[index])

    def _fail_group(self, group: List[_Request], error: BaseException) -> None:
        """Fail every caller in a group with the same error."""
        self._count(failed=len(group))
        for request in group:
            request.future.set_exception(error)

    def _serve_loop(self) -> None:
        try:
            while True:
                requests, stop = self._collect()
                if requests:
                    self._run_batch(requests)
                if stop:
                    return
        except BaseException as error:  # worker must never die silently
            self._worker_error = error
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(item, _Request):
                    with self._lock:
                        self._depth -= 1
                    self._count(failed=1)
                    item.future.set_exception(error)
            raise
