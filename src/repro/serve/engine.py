"""Micro-batching serving front-end over the compiled inference executor.

:class:`BatchingServer` is the heavy-traffic entry point the ROADMAP's
north star asks for: many concurrent callers submit single images, a
background worker drains them into batches, pads each batch up to a fixed
bucket size, runs **one** compiled forward per batch, and splits the
result back to per-request futures.

Why each piece exists:

* **Batching** amortises the per-call Python dispatch over many requests —
  one compiled replay for up to ``max_batch`` images instead of one per
  image.  The worker collects until ``max_batch`` requests are waiting or
  ``max_wait_ms`` has elapsed since the batch opened (the classic
  throughput/latency knob pair).
* **Bucket padding** rounds every batch up to the next power-of-two size
  (by repeating the last image) so the compiled executor's
  shape-specialisation cache sees a handful of signatures instead of one
  per distinct batch size; padded rows are dropped before responding.
  Results are per-row independent (every model op is batch-parallel), so
  padding never changes a real request's prediction — pinned by the
  serving parity tests.
* **Shape grouping** keeps correctness for mixed workloads: only requests
  with identical image shapes are stacked together, so no request is ever
  resized or spatially padded.

Responses are plain ``concurrent.futures.Future`` objects; exceptions
raised by a batch propagate to every request in it.  The server is a
context manager — ``close()`` drains nothing, it stops the worker after
the queue empties.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, List, Optional, Sequence, Tuple

from repro.backend import xp as np

from repro.core.engine_config import resolve_infer_engine
from repro.nn.module import Module

_STOP = object()


@dataclasses.dataclass
class ServerStats:
    """Counters describing the batching behaviour of a server's lifetime."""

    requests: int = 0
    batches: int = 0
    padded_rows: int = 0
    max_batch_size: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


def _bucket_size(count: int, max_batch: int) -> int:
    """The padded batch size: next power of two, capped at ``max_batch``."""
    size = 1
    while size < count:
        size *= 2
    return min(size, max_batch)


class BatchingServer:
    """Batches concurrent ``submit`` calls into single compiled forwards.

    Parameters
    ----------
    model:
        The segmentation model to serve.  Put it in ``eval()`` mode first
        if it contains train-only layers; the server does not change modes.
    max_batch:
        Largest number of requests fused into one forward (and the padding
        bucket cap).
    max_wait_ms:
        How long an open batch waits for more requests before running
        under-full.  ``0`` runs whatever a single queue drain finds.
    engine:
        Inference engine for the batched forward, resolved through
        :mod:`repro.core.engine_config` (kwarg > context >
        ``REPRO_INFER_ENGINE`` > default).  The server exists to feed the
        ``"compiled"`` executor, but ``"eager"`` is honoured for
        comparisons — predictions are bit-identical either way.
    """

    def __init__(
        self,
        model: Module,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
        engine: Optional[str] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1, got %d" % max_batch)
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0, got %r" % (max_wait_ms,))
        self.model = model
        self.max_batch = max_batch
        self.max_wait = max_wait_ms / 1000.0
        self.engine = resolve_infer_engine(engine)
        self.stats = ServerStats()
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._lock = threading.Lock()
        if self.engine == "compiled":
            from repro.graph.executor import CompiledModel

            self._compiled: Optional["CompiledModel"] = CompiledModel(model)
        else:
            self._compiled = None
        self._worker = threading.Thread(
            target=self._serve_loop, name="repro-batching-server", daemon=True
        )
        self._worker.start()

    # -- client surface --------------------------------------------------------

    def submit(self, image: Any) -> "Future":
        """Enqueue one image ``(H, W, C)``; resolves to its ``(H, W)`` labels."""
        # Convert outside the lock: for non-float64 inputs asarray copies,
        # and serialising that across client threads would bottleneck
        # submission on single-threaded preprocessing.
        array = np.asarray(image, dtype=np.float64)
        with self._lock:
            if self._closed:
                raise RuntimeError("server is closed")
            future: Future = Future()
            self._queue.put((array, future))
        return future

    def predict(self, image: Any):
        """Synchronous convenience wrapper: ``submit(image).result()``."""
        return self.submit(image).result()

    def predict_many(self, images: Sequence[Any]) -> List[Any]:
        """Submit a burst of images and wait for all results (in order)."""
        futures = [self.submit(image) for image in images]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Stop the worker after every queued request has been answered."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_STOP)
        self._worker.join()

    def __enter__(self) -> "BatchingServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker ----------------------------------------------------------------

    def _collect(self) -> Tuple[List[Tuple[Any, Future]], bool]:
        """Block for the next request, then drain up to a full batch.

        Returns ``(requests, stop)``; ``stop`` is set when the shutdown
        sentinel was consumed (after which no request follows it — close()
        enqueues it last and submit() refuses once closed).
        """
        first = self._queue.get()
        if first is _STOP:
            return [], True
        pending = [first]
        deadline = None
        while len(pending) < self.max_batch:
            if self.max_wait <= 0:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
            else:
                if deadline is None:
                    deadline = time.monotonic() + self.max_wait
                    remaining = self.max_wait
                else:
                    remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
            if item is _STOP:
                return pending, True
            pending.append(item)
        return pending, False

    def _run_batch(self, requests: List[Tuple[Any, Future]]) -> None:
        # Group by image shape so no request is spatially padded; each
        # group becomes one stacked forward.
        groups: dict = {}
        for image, future in requests:
            groups.setdefault(image.shape, []).append((image, future))
        for _, group in sorted(groups.items()):
            images = [image for image, _ in group]
            futures = [future for _, future in group]
            count = len(images)
            padded_to = _bucket_size(count, self.max_batch)
            if padded_to > count:
                images = images + [images[-1]] * (padded_to - count)
            try:
                batch = np.stack(images, axis=0)
                if self._compiled is not None:
                    predictions = self._compiled.predict(batch)
                else:
                    predictions = self.model.predict(batch, engine="eager")
            except BaseException as error:  # propagate to every caller
                for future in futures:
                    future.set_exception(error)
                continue
            self.stats.requests += count
            self.stats.batches += 1
            self.stats.padded_rows += padded_to - count
            self.stats.max_batch_size = max(self.stats.max_batch_size, count)
            for index, future in enumerate(futures):
                future.set_result(predictions[index])

    def _serve_loop(self) -> None:
        while True:
            requests, stop = self._collect()
            if requests:
                self._run_batch(requests)
            if stop:
                return
