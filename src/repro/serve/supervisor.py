"""Replicated serving supervisor: crash recovery, hot-swap, graceful drain.

:class:`ReplicatedServer` fronts N worker *processes* (one
:func:`~repro.serve.worker.worker_main` each) behind the same admission
surface as :class:`~repro.serve.engine.BatchingServer` — it *is* one: the
bounded queue, deadlines, shed semantics and batch assembly are inherited
unchanged; only :meth:`_submit_group` is overridden to enqueue padded
shape-groups for per-replica dispatcher threads instead of executing
inline.  What the supervisor adds is surviving the process itself dying,
and updating the model, without dropping traffic or returning wrong bits.

Replica lifecycle (one ``_Replica`` slot per index, states guarded by one
lock)::

    STARTING ──ready──▶ HEALTHY ◀──promote/rollback── DRAINING
        │                  │  ▲                           │
        │ sentinel/timeout │  └────────── swap drains ────┘
        ▼                  ▼
       DEAD ◀── heartbeat stale (SIGKILL) / process sentinel
        │ restart after RetryPolicy backoff
        │
        └──▶ FAILED   when >= crash_loop_threshold deaths land inside
                      crash_loop_window_s (the circuit breaker), or the
                      policy's max_elapsed restart budget is exhausted

* **Death detection** is `process.is_alive()` sentinels plus heartbeat
  staleness (5x the heartbeat interval → SIGKILL + restart).  Pipe EOF
  is deliberately *not* trusted: later-forked siblings hold copies of an
  earlier replica's pipe ends, which keep the pipe open after it dies.
  A serve loop that wedges while its heartbeat *thread* keeps beating is
  caught by ``batch_timeout_s``: every pipe exchange has a hard
  deadline, past which the replica is killed and its batch re-dispatched.
* **Re-dispatch.**  Inference is pure, so a dead replica's in-flight
  batch is re-enqueued for a survivor instead of failing its callers —
  bit-identical answers, bounded by ``max_redispatch`` attempts.  Worker
  *application* errors (bad shape) are the request's fault and propagate
  without re-dispatch, exactly like the single-process server.
* **Crash-loop breaker.**  Deaths are timestamped per slot; too many
  inside the window flips the slot to FAILED (no more restarts) and
  ``health()`` reports ``degraded``.  All slots FAILED → pending and
  future requests fail fast with ``NoHealthyReplicaError`` and the
  status is ``failed``.
* **Rolling hot-swap.**  :meth:`swap_state` validates the new state on
  the supervisor's reference model first (strict ``load_state_dict`` —
  a bad dict fails before any replica is touched, and a validation
  failure restores the old reference state before propagating, so a
  shape mismatch that aborts the load mid-loop never leaves the
  reference half-loaded), computes the expected canary prediction, then
  per replica: drain in-flight work → send the swap → bit-compare the
  returned canary prediction → promote.  Any mismatch or error rolls
  the reference model *and every already-promoted replica* back to the
  old state (verifying the canary in the rollback direction too) and
  raises ``SwapFailedError`` — the fleet never serves two silently
  different models.  Restarts are deferred while a swap is active; a
  replica that is DEAD during the swap simply restarts afterwards by
  forking the (new or rolled-back) reference model, which is always the
  promoted truth.  A replica that *missed* the swap (still STARTING
  when its turn came) carries a stale ``model_generation``: it is never
  promoted to HEALTHY — the supervisor retires and respawns it from the
  promoted reference instead, so a stale fork never takes traffic.

Knobs resolve through :mod:`repro.core.engine_config`
(``REPRO_SERVE_REPLICAS`` / ``REPRO_SERVE_HEARTBEAT_MS`` /
``REPRO_SERVE_CRASH_LOOP_THRESHOLD``).  Workers are forked, so build and
warm the model (one eager predict initialises the LSQ quantizer scales)
*before* constructing the server — every replica then shares identical
frozen scales and answers are bit-identical regardless of which replica
serves them (pinned by the chaos tests).
"""

from __future__ import annotations

import builtins
import multiprocessing
import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional

from repro.backend import xp as np

from repro.core.engine_config import (
    resolve_serve_crash_loop_threshold,
    resolve_serve_heartbeat_ms,
    resolve_serve_replicas,
)
from repro.nn.approx import swap_lut_tables
from repro.nn.module import Module
from repro.reliability.errors import (
    NoHealthyReplicaError,
    ReplicaCrashLoopError,
    ReplicaDiedError,
    ServerClosedError,
    SwapFailedError,
)
from repro.reliability.retry import RetryPolicy
from repro.serve.engine import BatchingServer, _Request
from repro.serve.worker import (
    MSG_BATCH,
    MSG_ERROR,
    MSG_HB,
    MSG_READY,
    MSG_RESULT,
    MSG_STOP,
    MSG_SWAP,
    MSG_SWAPPED,
    worker_main,
)

# Heartbeats older than this many intervals mean the replica is wedged.
_HEARTBEAT_STALE_FACTOR = 5.0

STARTING = "starting"
HEALTHY = "healthy"
DRAINING = "draining"
DEAD = "dead"
FAILED = "failed"


class _GroupWork:
    """One padded shape-group waiting for (or riding on) a replica."""

    __slots__ = ("group", "batch", "padded_to", "attempts")

    def __init__(self, group: List[_Request], batch: Any, padded_to: int) -> None:
        self.group = group
        self.batch = batch
        self.padded_to = padded_to
        self.attempts = 0


class _SwapCommand:
    """A targeted hot-swap command routed via one replica's direct queue."""

    __slots__ = ("state", "tables", "canary", "reply")

    def __init__(self, state, tables, canary, reply: Future) -> None:
        self.state = state
        self.tables = tables
        self.canary = canary
        self.reply = reply


class _Replica:
    """One replica slot: the current process/pipe plus lifecycle history.

    The slot object is stable across restarts — ``process`` / ``conn``
    are replaced per generation, so the dispatcher thread bound to this
    index never has to rebind anything but what it reads per loop.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.conn = None
        self.state = STARTING
        self.generation = 0  # incremented per spawn
        self.model_generation = 0  # which promoted model this replica serves
        self.started_at = 0.0
        self.last_heartbeat = 0.0
        self.fallbacks = 0
        self.crash_times: List[float] = []
        self.first_crash: Optional[float] = None
        self.restart_at: Optional[float] = None
        self.reason: Optional[str] = None
        self.direct: "queue.Queue" = queue.Queue()  # targeted commands (swap)
        self.in_flight: Optional[_GroupWork] = None
        self.busy = False  # dispatcher is inside a send/recv exchange


def _rebuild_error(type_name: str, message: str) -> Exception:
    """Reconstruct a worker-side application error for the caller.

    Builtins (``ValueError`` for a non-divisible image) and reliability
    errors round-trip by name; anything else degrades to ``RuntimeError``
    with the original type folded into the message.
    """
    candidate = getattr(builtins, type_name, None)
    if not (isinstance(candidate, type) and issubclass(candidate, Exception)):
        from repro.reliability import errors as _errors

        candidate = getattr(_errors, type_name, None)
    if not (isinstance(candidate, type) and issubclass(candidate, Exception)):
        return RuntimeError("%s: %s" % (type_name, message))
    try:
        return candidate(message)
    except Exception:
        return RuntimeError("%s: %s" % (type_name, message))


class ReplicatedServer(BatchingServer):
    """N replica processes behind one admission queue, supervised.

    Parameters (beyond :class:`BatchingServer`'s)
    ----------
    replicas:
        Fleet size; resolves through the engine config
        (``REPRO_SERVE_REPLICAS`` > ``2``).
    heartbeat_ms:
        Worker heartbeat interval; staleness past 5x this is a hang and
        the replica is killed (``REPRO_SERVE_HEARTBEAT_MS`` > ``100``).
    crash_loop_threshold / crash_loop_window_s:
        The circuit breaker: this many deaths inside the window marks
        the replica FAILED instead of restarting it
        (``REPRO_SERVE_CRASH_LOOP_THRESHOLD`` > ``3``; window default 5s).
    restart_policy:
        :class:`RetryPolicy` supplying restart backoff (attempt = deaths
        in window) and, via ``max_elapsed``, an optional total restart
        budget per crash burst.  ``max_attempts`` is not consulted — the
        breaker owns give-up semantics.
    canary:
        Default canary image for :meth:`swap_state` (a single ``(H,W,C)``
        array); per-call ``canary=`` overrides.
    max_redispatch:
        How many times one batch may be re-dispatched after replica
        deaths before its callers fail with ``ReplicaDiedError``.
    batch_timeout_s:
        Hard ceiling on one pipe exchange (batch or swap command).  A
        replica whose serve loop wedges while its heartbeat thread keeps
        beating never goes heartbeat-stale; this timeout is what catches
        it — the replica is killed and the in-flight batch re-dispatched
        to a survivor.
    """

    def __init__(
        self,
        model: Module,
        replicas: Optional[int] = None,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
        engine: Optional[str] = None,
        max_queue: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        fallback: bool = True,
        heartbeat_ms: Optional[float] = None,
        crash_loop_threshold: Optional[int] = None,
        crash_loop_window_s: float = 5.0,
        restart_policy: Optional[RetryPolicy] = None,
        canary: Optional[Any] = None,
        max_redispatch: int = 3,
        swap_timeout_s: float = 30.0,
        start_timeout_s: float = 60.0,
        drain_timeout_s: float = 30.0,
        batch_timeout_s: float = 60.0,
    ) -> None:
        if crash_loop_window_s <= 0:
            raise ValueError(
                "crash_loop_window_s must be > 0, got %r" % (crash_loop_window_s,)
            )
        if max_redispatch < 1:
            raise ValueError("max_redispatch must be >= 1, got %r" % (max_redispatch,))
        if batch_timeout_s <= 0:
            raise ValueError(
                "batch_timeout_s must be > 0, got %r" % (batch_timeout_s,)
            )
        self._replica_count = resolve_serve_replicas(replicas)
        self._heartbeat_s = resolve_serve_heartbeat_ms(heartbeat_ms) / 1000.0
        self._heartbeat_stale_s = _HEARTBEAT_STALE_FACTOR * self._heartbeat_s
        self._crash_loop_threshold = resolve_serve_crash_loop_threshold(
            crash_loop_threshold
        )
        self._crash_loop_window_s = crash_loop_window_s
        self._restart_policy = (
            restart_policy
            if restart_policy is not None
            else RetryPolicy(base_delay=0.05, multiplier=2.0, max_delay=2.0)
        )
        self.max_redispatch = max_redispatch
        self._batch_timeout_s = batch_timeout_s
        self._swap_timeout_s = swap_timeout_s
        self._start_timeout_s = start_timeout_s
        self._drain_timeout_s = drain_timeout_s
        self._canary = (
            np.asarray(canary, dtype=np.float64) if canary is not None else None
        )
        self._poll_s = min(0.02, self._heartbeat_s / 2.0)
        self._work: "queue.Queue" = queue.Queue()
        self._slots = [_Replica(index) for index in range(self._replica_count)]
        self._rep_lock = threading.Lock()  # guards slot state transitions
        self._seq_lock = threading.Lock()
        self._seq = 0
        self._sup_lock = threading.Lock()
        self._sup = {
            "replica_deaths": 0,
            "restarts": 0,
            "heartbeat_kills": 0,
            "batch_timeouts": 0,
            "stale_kills": 0,
            "redispatches": 0,
            "swaps": 0,
            "rollbacks": 0,
        }
        self._swap_lock = threading.Lock()  # serialises swap_state callers
        self._swap_active = False  # monitor defers restarts while True
        self._model_generation = 0
        self._dispatch_stop = threading.Event()
        self._replicas_stopped = False
        # Workers are forked, so prefer "fork" (the model rides copy-on-write
        # memory); "spawn" platforms pickle it through the Process args.
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self._ctx = multiprocessing.get_context(method)

        # Base init resolves engine/queue/deadline knobs and starts the
        # serve loop (idle until the first submit, which cannot happen
        # before this constructor returns).
        super().__init__(
            model,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            engine=engine,
            max_queue=max_queue,
            deadline_ms=deadline_ms,
            fallback=fallback,
        )

        for slot in self._slots:
            self._spawn(slot)
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                args=(slot.index,),
                name="repro-replica-dispatch-%d" % slot.index,
                daemon=True,
            )
            for slot in self._slots
        ]
        for thread in self._dispatchers:
            thread.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-replica-monitor", daemon=True
        )
        self._monitor.start()

    # -- base-class hooks ------------------------------------------------------

    def _setup_executor(self) -> None:
        # Forwards run inside the worker processes; the supervisor itself
        # never executes a batch.  The model stays as the *reference*
        # model: restarts fork it, swaps mutate it last.
        self._compiled = None

    def _submit_group(self, group: List[_Request]) -> None:
        if self._all_failed():
            self._fail_group(
                group,
                NoHealthyReplicaError(
                    "all %d replicas have tripped the crash-loop breaker"
                    % self._replica_count
                ),
            )
            return
        try:
            batch, padded_to = self._pad_group(group, self.max_batch)
        except BaseException as error:
            self._fail_group(group, error)
            return
        self._work.put(_GroupWork(group, batch, padded_to))

    def _fallback_count(self) -> int:
        return sum(slot.fallbacks for slot in self._slots)

    # -- client surface --------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every *admitted* request has been answered.

        Graceful-drain primitive: the server keeps serving (and keeps
        accepting new submissions — quiesce admission by simply not
        submitting).  Returns ``True`` when outstanding work hit zero,
        ``False`` on timeout.  Every admitted request terminates as
        exactly one of completed/failed/expired, so the counters decide.
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            with self._stats_lock:
                counters = self._counters
                outstanding = (
                    counters["requests"]
                    - counters["completed"]
                    - counters["failed"]
                    - counters["expired"]
                )
            if outstanding <= 0:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(self._poll_s)

    def close(self) -> None:
        """Graceful shutdown: drain, stop dispatchers, stop replicas."""
        with self._lock:
            already = self._closed
        super().close()  # flushes the admission queue into the work queue
        if already and self._replicas_stopped:
            return
        drained = self.drain(timeout=self._drain_timeout_s)
        self._dispatch_stop.set()
        for thread in self._dispatchers:
            thread.join(timeout=5.0)
        self._monitor.join(timeout=5.0)
        if not drained:
            error = ServerClosedError("server closed before the work queue drained")
            self._flush_work(error)
            for slot in self._slots:
                self._flush_direct(slot, error)
        self._stop_replicas()
        self._replicas_stopped = True

    def swap_state(
        self,
        state_dict: Dict[str, Any],
        lut_tables: Optional[Dict[str, Any]] = None,
        canary: Optional[Any] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Rolling hot-swap: drain, reload, canary-verify, promote — per replica.

        Returns a report dict on success; raises :class:`SwapFailedError`
        after rolling every touched replica back to the old state.  The
        server keeps answering traffic on the other replicas throughout —
        each response comes uniformly from the old or the new model,
        never a mixture (the canary bit-parity gate).
        """
        canary_image = canary if canary is not None else self._canary
        if canary_image is None:
            raise ValueError(
                "swap_state needs a canary input (constructor canary= or argument)"
            )
        canary_image = np.asarray(canary_image, dtype=np.float64)
        timeout = timeout if timeout is not None else self._swap_timeout_s
        with self._lock:
            if self._closed:
                raise RuntimeError("server is closed")
        with self._swap_lock:
            self._swap_active = True
            try:
                return self._swap_fleet(
                    dict(state_dict), lut_tables, canary_image, timeout
                )
            finally:
                self._swap_active = False

    # -- swap internals --------------------------------------------------------

    def _reference_predict(self, canary: Any) -> Any:
        return self.model.predict(canary[None], engine="eager")[0]

    def _swap_fleet(self, state, tables, canary, timeout) -> Dict[str, Any]:
        old_state = self.model.state_dict()
        old_expected = self._reference_predict(canary)
        # The reference model goes first: a state dict that does not
        # strict-load (or tables naming an undeployed operator) raises
        # here, before any replica was touched.  A failure restores the
        # old state before propagating — a shape mismatch aborts the
        # load mid-loop, and a half-loaded reference would fork diverged
        # restarts while every replica still serves the old model.
        # (``old_state`` is a full copy and ``swap_lut_tables`` is
        # atomic, so the restore itself cannot tear.)
        old_tables = None
        try:
            self.model.load_state_dict(state, strict=True)
            if tables:
                old_tables = swap_lut_tables(self.model, tables)
            new_expected = self._reference_predict(canary)
        except BaseException:
            if old_tables:
                swap_lut_tables(self.model, old_tables)
            self.model.load_state_dict(old_state, strict=True)
            raise

        promoted: List[_Replica] = []
        failure: Optional[BaseException] = None
        failed_slot: Optional[_Replica] = None
        for slot in self._slots:
            if not self._wait_serving(slot, timeout):
                continue  # dead/failed: its restart forks the promoted reference
            try:
                self._drain_replica(slot, timeout)
                prediction = self._command_swap(slot, state, tables, canary, timeout)
                if not np.array_equal(prediction, new_expected):
                    raise SwapFailedError(
                        "replica %d canary prediction diverged from the new "
                        "model after swap" % slot.index
                    )
            except BaseException as error:
                failure = error
                failed_slot = slot
                break
            with self._rep_lock:
                if slot.state == DRAINING:
                    slot.state = HEALTHY
            slot.model_generation = self._model_generation + 1
            promoted.append(slot)

        if failure is None:
            self._model_generation += 1
            self._count_sup(swaps=1)
            return {
                "swapped": len(promoted),
                "skipped": self._replica_count - len(promoted),
                "model_generation": self._model_generation,
                "rolled_back": False,
            }

        # Rollback: reference model first (restarts must fork old state),
        # then the failing replica and every already-promoted one, with
        # the canary verified in the rollback direction too.  A replica
        # that cannot prove the old bits is killed; its restart forks the
        # restored reference model.
        self._count_sup(rollbacks=1)
        self.model.load_state_dict(old_state, strict=True)
        if old_tables:
            swap_lut_tables(self.model, old_tables)
        targets = ([failed_slot] if failed_slot is not None else []) + promoted
        for slot in targets:
            try:
                prediction = self._command_swap(
                    slot, old_state, old_tables, canary, timeout
                )
                restored = np.array_equal(prediction, old_expected)
            except BaseException:
                restored = False
            if restored:
                with self._rep_lock:
                    if slot.state == DRAINING:
                        slot.state = HEALTHY
                slot.model_generation = self._model_generation
            else:
                self._kill_slot(slot, "rollback canary failed; restarting clean")
        raise SwapFailedError(
            "hot-swap aborted at replica %d and rolled back: %s"
            % (failed_slot.index if failed_slot is not None else -1, failure)
        ) from failure

    def _wait_serving(self, slot: _Replica, timeout: float) -> bool:
        """Wait out STARTING; ``True`` iff the slot can take a swap command."""
        deadline = time.monotonic() + timeout
        while True:
            state = slot.state
            if state in (HEALTHY, DRAINING):
                return True
            if state in (DEAD, FAILED):
                return False
            if time.monotonic() >= deadline:
                return False
            time.sleep(self._poll_s)

    def _drain_replica(self, slot: _Replica, timeout: float) -> None:
        """Flip one replica to DRAINING and wait out its in-flight batch."""
        with self._rep_lock:
            if slot.state == HEALTHY:
                slot.state = DRAINING
            elif slot.state != DRAINING:
                raise ReplicaDiedError(
                    "replica %d became %s before draining" % (slot.index, slot.state)
                )
        deadline = time.monotonic() + timeout
        while slot.in_flight is not None or slot.busy:
            if slot.state not in (DRAINING,):
                raise ReplicaDiedError(
                    "replica %d died while draining" % slot.index
                )
            if time.monotonic() >= deadline:
                raise SwapFailedError(
                    "replica %d did not drain within %.1fs" % (slot.index, timeout)
                )
            time.sleep(self._poll_s)

    def _command_swap(self, slot, state, tables, canary, timeout):
        """Route one swap through the slot's dispatcher (single conn owner)."""
        reply: Future = Future()
        slot.direct.put(_SwapCommand(state, tables, canary, reply))
        return reply.result(timeout)

    # -- dispatchers -----------------------------------------------------------

    def _next_seq(self) -> int:
        with self._seq_lock:
            self._seq += 1
            return self._seq

    def _dispatch_loop(self, index: int) -> None:
        slot = self._slots[index]
        while not self._dispatch_stop.is_set():
            state = slot.state
            if state in (DEAD, FAILED):
                self._flush_direct(slot, self._slot_down_error(slot, state))
                if self._dispatch_stop.wait(self._poll_s):
                    return
                continue
            self._pump(slot)
            if slot.state == STARTING:
                if self._dispatch_stop.wait(self._poll_s):
                    return
                continue
            work = self._next_work(slot)
            if work is None:
                continue
            if isinstance(work, _SwapCommand):
                self._execute_swap(slot, work)
            else:
                self._execute_batch(slot, work)

    def _next_work(self, slot: _Replica):
        try:
            return slot.direct.get_nowait()
        except queue.Empty:
            pass
        if slot.state != HEALTHY:  # draining slots only serve direct commands
            self._dispatch_stop.wait(self._poll_s)
            return None
        try:
            return self._work.get(timeout=self._poll_s)
        except queue.Empty:
            return None

    def _pump(self, slot: _Replica) -> None:
        """Drain waiting heartbeats/ready messages without blocking."""
        conn = slot.conn
        while True:
            try:
                if conn is None or not conn.poll(0):
                    return
                message = conn.recv()
            except (EOFError, OSError, ValueError):
                self._mark_dead(slot, "pipe closed")
                return
            kind = message[0]
            if kind == MSG_HB:
                slot.last_heartbeat = time.monotonic()
                slot.fallbacks = message[1]
            elif kind == MSG_READY:
                stale = False
                with self._rep_lock:
                    if slot.state == STARTING:
                        if slot.model_generation != self._model_generation:
                            # Forked from a reference that a swap has
                            # since replaced: promoting it would serve
                            # old weights next to the promoted fleet.
                            stale = True
                        else:
                            slot.state = HEALTHY
                            slot.last_heartbeat = time.monotonic()
                            slot.first_crash = None
                if stale:
                    self._retire_stale(slot)
                    return
            # Anything else is a stale reply from an aborted exchange; drop.

    def _execute_batch(self, slot: _Replica, work: _GroupWork) -> None:
        if slot.state != HEALTHY:
            self._work.put(work)  # never dispatched; no attempt consumed
            return
        generation = slot.generation
        conn = slot.conn
        seq = self._next_seq()
        slot.busy = True
        slot.in_flight = work
        try:
            try:
                conn.send((MSG_BATCH, seq, work.batch))
            except (OSError, ValueError, BrokenPipeError):
                self._mark_dead(slot, "pipe send failed")
                self._redispatch(work)
                return
            reply = self._await_reply(slot, conn, generation, seq)
            if reply is None:  # the replica died with our batch in flight
                self._redispatch(work)
                return
            if reply[0] == MSG_RESULT:
                self._finish_group(work.group, reply[2], work.padded_to)
            else:  # MSG_ERROR: the request's fault, not the replica's
                self._fail_group(work.group, _rebuild_error(reply[2], reply[3]))
        finally:
            slot.in_flight = None
            slot.busy = False

    def _slot_down_error(self, slot: _Replica, state: str) -> Exception:
        """The error for a targeted command aimed at a non-serving slot.

        A breaker-tripped slot gets :class:`ReplicaCrashLoopError` (it
        will never restart on its own); everything else is a plain
        :class:`ReplicaDiedError`.
        """
        if state == FAILED:
            return ReplicaCrashLoopError(
                "replica %d has tripped the crash-loop breaker (%s)"
                % (slot.index, slot.reason or "no reason recorded")
            )
        return ReplicaDiedError("replica %d is %s" % (slot.index, state))

    def _execute_swap(self, slot: _Replica, command: _SwapCommand) -> None:
        if slot.state not in (HEALTHY, DRAINING):
            if not command.reply.done():
                command.reply.set_exception(
                    self._slot_down_error(slot, slot.state)
                )
            return
        generation = slot.generation
        conn = slot.conn
        seq = self._next_seq()
        slot.busy = True
        try:
            try:
                conn.send(
                    (MSG_SWAP, seq, command.state, command.tables, command.canary)
                )
            except (OSError, ValueError, BrokenPipeError):
                self._mark_dead(slot, "pipe send failed")
                if not command.reply.done():
                    command.reply.set_exception(
                        ReplicaDiedError("replica %d died mid-swap" % slot.index)
                    )
                return
            reply = self._await_reply(slot, conn, generation, seq)
            if command.reply.done():
                return  # caller timed out and moved on
            if reply is None:
                command.reply.set_exception(
                    ReplicaDiedError("replica %d died mid-swap" % slot.index)
                )
            elif reply[0] == MSG_SWAPPED:
                command.reply.set_result(reply[2])
            else:  # MSG_ERROR from the swap itself
                command.reply.set_exception(
                    SwapFailedError(
                        "replica %d swap failed: %s: %s"
                        % (slot.index, reply[2], reply[3])
                    )
                )
        finally:
            slot.busy = False

    def _await_reply(self, slot, conn, generation: int, seq: int):
        """Wait for the reply to ``seq``, absorbing heartbeats.

        Returns ``None`` when the replica died (sentinel, pipe error, or
        a restart bumped the generation) — the caller re-dispatches.
        ``batch_timeout_s`` bounds the whole exchange: a serve loop that
        wedges while its heartbeat thread keeps beating never goes
        heartbeat-stale, so past the deadline the replica is killed and
        ``None`` returned (the batch re-dispatches like any other death).
        """
        deadline = time.monotonic() + self._batch_timeout_s
        while True:
            if time.monotonic() >= deadline:
                self._count_sup(batch_timeouts=1)
                self._kill_slot(
                    slot,
                    "batch execution exceeded %.1fs; killed"
                    % self._batch_timeout_s,
                )
                return None
            try:
                ready = conn.poll(self._poll_s)
            except (OSError, ValueError):
                self._mark_dead(slot, "pipe closed")
                return None
            if ready:
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._mark_dead(slot, "pipe EOF")
                    return None
                kind = message[0]
                if kind == MSG_HB:
                    slot.last_heartbeat = time.monotonic()
                    slot.fallbacks = message[1]
                    continue
                if kind == MSG_READY:
                    continue
                if len(message) > 1 and message[1] == seq:
                    return message
                continue  # stale reply from an aborted exchange; drop
            if slot.generation != generation or slot.state in (DEAD, FAILED):
                return None
            process = slot.process
            if process is None or not process.is_alive():
                self._mark_dead(
                    slot,
                    "process exited (exitcode %s)"
                    % (process.exitcode if process is not None else "?"),
                )
                return None

    def _redispatch(self, work: _GroupWork) -> None:
        work.attempts += 1
        if work.attempts > self.max_redispatch:
            self._fail_group(
                work.group,
                ReplicaDiedError(
                    "batch lost %d replica(s); re-dispatch budget exhausted"
                    % work.attempts
                ),
            )
            return
        self._count_sup(redispatches=1)
        self._work.put(work)

    def _flush_direct(self, slot: _Replica, error: BaseException) -> None:
        while True:
            try:
                command = slot.direct.get_nowait()
            except queue.Empty:
                return
            if isinstance(command, _SwapCommand):
                if not command.reply.done():
                    command.reply.set_exception(error)
            else:
                self._work.put(command)  # batch work can run elsewhere

    def _flush_work(self, error: BaseException) -> None:
        while True:
            try:
                work = self._work.get_nowait()
            except queue.Empty:
                return
            self._fail_group(work.group, error)

    # -- monitor ---------------------------------------------------------------

    def _monitor_loop(self) -> None:
        interval = max(0.005, self._heartbeat_s / 2.0)
        while not self._dispatch_stop.wait(interval):
            now = time.monotonic()
            for slot in self._slots:
                state = slot.state
                process = slot.process
                if state in (STARTING, HEALTHY, DRAINING):
                    if process is None or not process.is_alive():
                        self._mark_dead(
                            slot,
                            "process exited (exitcode %s)"
                            % (process.exitcode if process is not None else "?"),
                        )
                        continue
                    if (
                        state in (HEALTHY, DRAINING)
                        and now - slot.last_heartbeat > self._heartbeat_stale_s
                    ):
                        self._count_sup(heartbeat_kills=1)
                        self._kill_slot(slot, "heartbeat stalled; killed")
                        continue
                    if state == STARTING and now - slot.started_at > self._start_timeout_s:
                        self._kill_slot(slot, "start timeout; killed")
                        continue
                    if (
                        state in (HEALTHY, DRAINING)
                        and not self._swap_active
                        and slot.model_generation != self._model_generation
                    ):
                        # A slot that slipped past a swap (e.g. it was
                        # STARTING when its turn came) serves old weights
                        # next to the promoted fleet; respawn it from the
                        # promoted reference.  Guarded by _swap_active:
                        # mid-swap, promoted slots legitimately run ahead
                        # of the fleet generation.
                        self._retire_stale(slot)
                        continue
                if (
                    state == DEAD
                    and not self._swap_active
                    and not slot.busy
                    and slot.restart_at is not None
                    and now >= slot.restart_at
                ):
                    self._count_sup(restarts=1)
                    self._respawn(slot)

    def _mark_dead(self, slot: _Replica, reason: str) -> None:
        """Record one death: breaker decision + restart scheduling."""
        with self._rep_lock:
            if slot.state in (DEAD, FAILED):
                return
            now = time.monotonic()
            slot.state = DEAD
            slot.reason = reason
            if slot.first_crash is None:
                slot.first_crash = now
            slot.crash_times.append(now)
            cutoff = now - self._crash_loop_window_s
            slot.crash_times = [t for t in slot.crash_times if t >= cutoff]
            policy = self._restart_policy
            tripped = len(slot.crash_times) >= self._crash_loop_threshold
            if (
                policy.max_elapsed is not None
                and now - slot.first_crash >= policy.max_elapsed
            ):
                tripped = True  # the restart budget is spent; stop trying
            if tripped:
                slot.state = FAILED
                slot.restart_at = None
            else:
                slot.restart_at = now + policy.backoff(
                    min(len(slot.crash_times), 16),
                    site="serve.replica:%d" % slot.index,
                )
        self._count_sup(replica_deaths=1)
        if slot.state == FAILED and self._all_failed():
            self._flush_work(
                NoHealthyReplicaError(
                    "all %d replicas have tripped the crash-loop breaker"
                    % self._replica_count
                )
            )

    def _retire_stale(self, slot: _Replica) -> None:
        """Kill a replica whose forked model predates the promoted one.

        Not a crash: no death is recorded and the breaker is not
        consulted — the slot respawns immediately (swap permitting),
        forking the current reference model.  The state flips *before*
        the SIGKILL so the dispatcher sees DEAD, not a dying pipe it
        would report to the breaker as a crash.
        """
        with self._rep_lock:
            if slot.state in (DEAD, FAILED):
                return
            slot.state = DEAD
            slot.reason = "stale model generation %d != %d; respawning" % (
                slot.model_generation,
                self._model_generation,
            )
            slot.restart_at = time.monotonic()
        process = slot.process
        if process is not None and process.is_alive():
            process.kill()
        self._count_sup(stale_kills=1)

    def _kill_slot(self, slot: _Replica, reason: str) -> None:
        process = slot.process
        if process is not None and process.is_alive():
            process.kill()
        self._mark_dead(slot, reason)

    def _all_failed(self) -> bool:
        return all(slot.state == FAILED for slot in self._slots)

    def _respawn(self, slot: _Replica) -> None:
        old_process, old_conn = slot.process, slot.conn
        if old_process is not None:
            old_process.join(timeout=1.0)
        if old_conn is not None:
            try:
                old_conn.close()
            except OSError:
                pass
        self._spawn(slot)

    def _spawn(self, slot: _Replica) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                self.model,
                slot.index,
                self._heartbeat_s,
                self.engine,
                self._fallback,
            ),
            name="repro-replica-%d" % slot.index,
            daemon=True,
        )
        with self._rep_lock:
            slot.generation += 1
            slot.model_generation = self._model_generation
            slot.state = STARTING
            slot.started_at = time.monotonic()
            slot.last_heartbeat = slot.started_at
            slot.conn = parent_conn
            slot.process = process
            slot.restart_at = None
            slot.reason = None
        process.start()
        child_conn.close()  # the parent keeps only its own end

    def _stop_replicas(self) -> None:
        for slot in self._slots:
            conn, process = slot.conn, slot.process
            if conn is not None:
                try:
                    conn.send((MSG_STOP,))
                except (OSError, ValueError, BrokenPipeError):
                    pass
            if process is not None:
                process.join(timeout=2.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=2.0)
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass

    # -- observability ---------------------------------------------------------

    def _count_sup(self, **deltas: int) -> None:
        with self._sup_lock:
            for name, delta in deltas.items():
                self._sup[name] += delta

    def health(self) -> Dict[str, Any]:
        """The base report plus per-replica lifecycle and supervisor counters.

        ``status`` is recomputed fleet-wide: ``failed`` with zero serving
        replicas, ``degraded`` while any slot has tripped the breaker (or
        a worker degraded to eager fallback), ``ok`` otherwise.
        """
        report = super().health()
        now = time.monotonic()
        replicas = []
        serving = 0
        any_failed = False
        for slot in self._slots:
            state = slot.state
            if state in (HEALTHY, DRAINING):
                serving += 1
            if state == FAILED:
                any_failed = True
            process = slot.process
            replicas.append(
                {
                    "index": slot.index,
                    "state": state,
                    "pid": process.pid if process is not None else None,
                    "generation": slot.generation,
                    "model_generation": slot.model_generation,
                    "restarts": max(0, slot.generation - 1),
                    "crashes_in_window": len(slot.crash_times),
                    "last_heartbeat_age_ms": (
                        round(1e3 * (now - slot.last_heartbeat), 1)
                        if state in (HEALTHY, DRAINING)
                        else None
                    ),
                    "fallbacks": slot.fallbacks,
                    "reason": slot.reason,
                }
            )
        with self._sup_lock:
            supervisor = dict(self._sup)
        report["replicas"] = replicas
        report["supervisor"] = supervisor
        report["replica_count"] = self._replica_count
        report["model_generation"] = self._model_generation
        with self._lock:
            closed = self._closed
        degraded = (
            any_failed
            or report["counters"]["fallbacks"] > 0
            or self._worker_error is not None
        )
        if closed:
            status = "closed"
        elif serving == 0:
            status = "failed"
        elif degraded:
            status = "degraded"
        else:
            status = "ok"
        report["status"] = status
        return report
