"""Serving layer: the micro-batching front-end over compiled inference.

:class:`BatchingServer` fuses concurrent single-image requests into
padded batches and answers each from one compiled forward — see
:mod:`repro.serve.engine` and ``examples/serve_demo.py``.
"""

from repro.serve.engine import BatchingServer, ServerStats

__all__ = ["BatchingServer", "ServerStats"]
