"""Serving layer: the micro-batching front-end over compiled inference.

:class:`BatchingServer` fuses concurrent single-image requests into
padded batches and answers each from one compiled forward, with a
bounded admission queue (:class:`~repro.reliability.errors.QueueFullError`
sheds overload), per-request deadlines
(:class:`~repro.reliability.errors.DeadlineExceededError`), eager
degradation on compiled failures, and a ``health()`` report with latency
histograms — see :mod:`repro.serve.engine` and ``examples/serve_demo.py``.
It also serves autoregressive decoders: :meth:`BatchingServer.open_session`
/ :meth:`~BatchingServer.submit_decode` run KV-cached token steps through
the same admission queue, grouped per drain by cache-capacity bucket into
one batched compiled step per group (``examples/decode_demo.py``).

:class:`ReplicatedServer` puts N forked worker processes behind the same
admission surface and supervises them: heartbeat + sentinel death
detection, backoff restarts with a crash-loop circuit breaker,
bit-identical re-dispatch of batches lost to a dying replica, rolling
canary-verified hot-swap (:meth:`ReplicatedServer.swap_state`) and
graceful drain — see :mod:`repro.serve.supervisor`.
"""

from repro.reliability.errors import (
    DeadlineExceededError,
    NoHealthyReplicaError,
    QueueFullError,
    ReplicaCrashLoopError,
    ReplicaDiedError,
    ServerClosedError,
    SwapFailedError,
)
from repro.serve.engine import BatchingServer, DecodeSession, ServerStats
from repro.serve.supervisor import ReplicatedServer

__all__ = [
    "BatchingServer",
    "DecodeSession",
    "ReplicatedServer",
    "DeadlineExceededError",
    "NoHealthyReplicaError",
    "QueueFullError",
    "ReplicaCrashLoopError",
    "ReplicaDiedError",
    "ServerClosedError",
    "ServerStats",
    "SwapFailedError",
]
