"""Serving layer: the micro-batching front-end over compiled inference.

:class:`BatchingServer` fuses concurrent single-image requests into
padded batches and answers each from one compiled forward, with a
bounded admission queue (:class:`~repro.reliability.errors.QueueFullError`
sheds overload), per-request deadlines
(:class:`~repro.reliability.errors.DeadlineExceededError`), eager
degradation on compiled failures, and a ``health()`` report with latency
histograms — see :mod:`repro.serve.engine` and ``examples/serve_demo.py``.
"""

from repro.reliability.errors import DeadlineExceededError, QueueFullError, ServerClosedError
from repro.serve.engine import BatchingServer, ServerStats

__all__ = [
    "BatchingServer",
    "DeadlineExceededError",
    "QueueFullError",
    "ServerClosedError",
    "ServerStats",
]
