"""Deterministic fault injection keyed by site name.

Production code marks its failure-prone seams with one call::

    fault_point("sweep.build:%s:%s" % (job.operator, job.method))

which is a near-free no-op (one dict lookup) until a test installs a
:class:`FaultPlan`::

    plan = FaultPlan(specs=(
        FaultSpec(site="sweep.build:gelu:*", fail_always=True),   # poison
        FaultSpec(site="compiled.trace", fail_calls=(1,)),        # transient
        FaultSpec(site="serve.batch", delay_always=True, delay_seconds=0.2),
    ))
    with inject(plan):
        ...

Semantics:

* **Sites** are plain strings matched by :func:`fnmatch.fnmatch`, so one
  spec can poison a whole operator family (``"sweep.build:gelu:*"``).
* **Determinism.**  Which calls fail is a function of the per-site call
  counter (1-based) and the spec — never of wall clock or ``random``.
  The chaos tests replay identically; the ``seed`` only parameterises
  *how* bytes are corrupted, not *whether* a fault fires.
* **Cross-process plans.**  ``inject(plan, propagate=True)`` also
  exports the plan as JSON in ``REPRO_FAULT_PLAN``, so process-pool
  workers spawned inside the block observe the same plan (each worker
  keeps its own call counters — per-process determinism).
* **Corruption** is a separate hook (:func:`corrupt_file`) because the
  artifact store must corrupt the *bytes it just wrote*, not raise: a
  torn write is a file that exists and parses wrong.

Instrumented seams (the site inventory the chaos suites target):
``sweep.build:<operator>:<method>`` (cell execution),
``compiled.trace`` / ``serve.batch`` (serving tier),
``artifact.save`` (post-write byte corruption via :func:`corrupt_file`),
and — PR 8 — ``queue.append`` (journal record append, for torn-tail and
mid-write crashes), ``queue.lease`` (lease acquisition), and
``artifact.scrub`` (per-file verification during a scrub pass).
"""

from __future__ import annotations

import contextlib
import dataclasses
import fnmatch
import hashlib
import json
import os
import threading
import time
from typing import Dict, Iterator, Optional, Tuple

from repro.reliability.errors import InjectedFault

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

# Exception classes a spec may raise, by stable name (the plan must stay
# JSON-serialisable for env propagation, so specs carry names not types).
EXCEPTIONS: Dict[str, type] = {
    "injected": InjectedFault,
    "runtime": RuntimeError,
    "value": ValueError,
    "os": OSError,
    "timeout": TimeoutError,
}


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One injected behaviour at every site matching ``site`` (fnmatch).

    ``fail_calls`` / ``delay_calls`` / ``corrupt_calls`` are 1-based
    per-site call indices; the ``*_always`` flags apply to every call.
    Delays are applied before failures, so a spec can model a slow crash.
    """

    site: str
    fail_calls: Tuple[int, ...] = ()
    fail_always: bool = False
    exception: str = "injected"
    message: str = "injected fault"
    delay_calls: Tuple[int, ...] = ()
    delay_always: bool = False
    delay_seconds: float = 0.0
    corrupt_calls: Tuple[int, ...] = ()
    corrupt_always: bool = False

    def __post_init__(self) -> None:
        if self.exception not in EXCEPTIONS:
            raise ValueError(
                "unknown exception %r (expected one of %s)"
                % (self.exception, sorted(EXCEPTIONS))
            )
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")

    def fails(self, call: int) -> bool:
        return self.fail_always or call in self.fail_calls

    def delays(self, call: int) -> bool:
        return (self.delay_always or call in self.delay_calls) and self.delay_seconds > 0

    def corrupts(self, call: int) -> bool:
        return self.corrupt_always or call in self.corrupt_calls


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An immutable, JSON-round-trippable set of :class:`FaultSpec`."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def matching(self, site: str) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if fnmatch.fnmatch(site, s.site))

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "specs": [dataclasses.asdict(s) for s in self.specs]},
            sort_keys=True,
        )

    @staticmethod
    def from_json(blob: str) -> "FaultPlan":
        payload = json.loads(blob)
        specs = []
        for raw in payload.get("specs", ()):
            raw = dict(raw)
            for field in ("fail_calls", "delay_calls", "corrupt_calls"):
                raw[field] = tuple(raw.get(field, ()))
            specs.append(FaultSpec(**raw))
        return FaultPlan(specs=tuple(specs), seed=int(payload.get("seed", 0)))


class _FaultState:
    """Per-process active plan plus thread-safe per-site call counters."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counters: Dict[str, int] = {}
        self.lock = threading.Lock()

    def next_call(self, site: str) -> int:
        with self.lock:
            call = self.counters.get(site, 0) + 1
            self.counters[site] = call
            return call


_STATE: Optional[_FaultState] = None
# Cache of the last parsed env plan, keyed by the raw env string, so the
# per-call env check in workers is one dict lookup + string compare.
_ENV_CACHE: Tuple[Optional[str], Optional[_FaultState]] = (None, None)


def _active_state() -> Optional[_FaultState]:
    global _ENV_CACHE
    if _STATE is not None:
        return _STATE
    blob = os.environ.get(FAULT_PLAN_ENV)
    if not blob:
        return None
    cached_blob, cached_state = _ENV_CACHE
    if blob != cached_blob:
        _ENV_CACHE = (blob, _FaultState(FaultPlan.from_json(blob)))
    return _ENV_CACHE[1]


def install(plan: Optional[FaultPlan], propagate: bool = False) -> None:
    """Install ``plan`` process-wide (``None`` uninstalls).

    ``propagate`` exports/clears the plan in ``REPRO_FAULT_PLAN`` so
    subprocesses spawned afterwards observe it too.
    """
    global _STATE
    _STATE = _FaultState(plan) if plan is not None else None
    if propagate:
        if plan is not None:
            os.environ[FAULT_PLAN_ENV] = plan.to_json()
        else:
            os.environ.pop(FAULT_PLAN_ENV, None)


@contextlib.contextmanager
def inject(plan: FaultPlan, propagate: bool = False) -> Iterator[FaultPlan]:
    """Scope a fault plan to a ``with`` block (counters reset on entry)."""
    install(plan, propagate=propagate)
    try:
        yield plan
    finally:
        install(None, propagate=propagate)


def active_plan() -> Optional[FaultPlan]:
    state = _active_state()
    return state.plan if state is not None else None


def call_count(site: str) -> int:
    """How many times ``site`` fired in this process (testing helper)."""
    state = _active_state()
    if state is None:
        return 0
    with state.lock:
        return state.counters.get(site, 0)


def fault_point(site: str) -> None:
    """Apply the active plan at ``site``: maybe delay, then maybe raise."""
    state = _active_state()
    if state is None:
        return
    specs = state.plan.matching(site)
    if not specs:
        return
    call = state.next_call(site)
    for spec in specs:
        if spec.delays(call):
            time.sleep(spec.delay_seconds)
    for spec in specs:
        if spec.fails(call):
            raise EXCEPTIONS[spec.exception](
                "%s (site=%s, call %d)" % (spec.message, site, call)
            )


def fault_flag(site: str) -> bool:
    """``True`` when a matching spec fires at this call — without raising.

    The boolean twin of :func:`fault_point` for faults that cannot be
    expressed as an exception from the seam: a replica killing its own
    process (``os._exit`` leaves no frame to raise through) or silent
    state corruption mid-swap.  The call counter and delay semantics are
    identical to :func:`fault_point`; only the firing behaviour differs —
    the caller decides what "firing" means at this seam.
    """
    state = _active_state()
    if state is None:
        return False
    specs = state.plan.matching(site)
    if not specs:
        return False
    call = state.next_call(site)
    for spec in specs:
        if spec.delays(call):
            time.sleep(spec.delay_seconds)
    return any(spec.fails(call) for spec in specs)


def corrupt_file(site: str, path: os.PathLike) -> bool:
    """Deterministically corrupt the file at ``path`` if the plan says so.

    Models a torn write: the file is truncated to half its length and its
    first byte is XOR-perturbed (seed-dependent), so it still exists but
    no longer parses.  Returns ``True`` when corruption was applied.
    """
    state = _active_state()
    if state is None:
        return False
    specs = state.plan.matching(site)
    if not specs:
        return False
    call = state.next_call(site)
    if not any(spec.corrupts(call) for spec in specs):
        return False
    with open(path, "r+b") as handle:
        data = handle.read()
        digest = hashlib.sha256(
            ("%s|%d|%d" % (site, call, state.plan.seed)).encode("utf-8")
        ).digest()
        torn = bytearray(data[: max(1, len(data) // 2)])
        torn[0] ^= digest[0] | 1  # guarantee at least one flipped bit
        handle.seek(0)
        handle.truncate()
        handle.write(bytes(torn))
    return True
