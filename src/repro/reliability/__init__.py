"""Reliability layer: admission errors, retry policies, fault injection.

This package is deliberately separate from the compiled-inference core
(the goldstone-mgmt split: thin protocol/ops daemons over one shared
core, with health and telemetry first-class).  Nothing here knows about
graphs, tensors or pwl tables — it provides the generic machinery the
serving tier (:mod:`repro.serve.engine`), the sweep engine
(:mod:`repro.experiments.jobs`) and the artifact store
(:mod:`repro.experiments.artifacts`) compose into fault-tolerant paths:

* :mod:`repro.reliability.errors` — the admission-control / deadline /
  quarantine exception inventory;
* :mod:`repro.reliability.retry` — :class:`RetryPolicy` (max attempts,
  exponential backoff with deterministic jitter, retryable-exception
  classification) and the ``run_with_retry`` driver;
* :mod:`repro.reliability.faults` — a deterministic, seeded fault
  injection harness (fail-on-Nth-call, injected delays, artifact-byte
  corruption; plans keyed by site name) used by the chaos tests to prove
  every degradation path actually degrades.
"""

from repro.reliability.errors import (
    CheckpointCorruptError,
    DeadlineExceededError,
    InjectedFault,
    JobQuarantinedError,
    JournalCorruptError,
    NoHealthyReplicaError,
    PersistedQuarantineError,
    QueueFullError,
    ReliabilityError,
    ReplicaCrashLoopError,
    ReplicaDiedError,
    ServerClosedError,
    SwapFailedError,
)
from repro.reliability.faults import (
    FaultPlan,
    FaultSpec,
    corrupt_file,
    fault_flag,
    fault_point,
    inject,
)
from repro.reliability.retry import RetryPolicy, RetryResult, call_with_retry, run_with_retry

__all__ = [
    "CheckpointCorruptError",
    "DeadlineExceededError",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "JobQuarantinedError",
    "JournalCorruptError",
    "NoHealthyReplicaError",
    "PersistedQuarantineError",
    "QueueFullError",
    "ReliabilityError",
    "ReplicaCrashLoopError",
    "ReplicaDiedError",
    "RetryPolicy",
    "RetryResult",
    "ServerClosedError",
    "SwapFailedError",
    "call_with_retry",
    "corrupt_file",
    "fault_flag",
    "fault_point",
    "inject",
    "run_with_retry",
]
