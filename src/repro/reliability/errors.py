"""Exception inventory for the reliability layer.

Every error a caller can *handle* (shed load, retry elsewhere, report a
cell as failed) gets its own class here, so handlers never have to match
on message strings.  ``DeadlineExceededError`` additionally subclasses
:class:`TimeoutError` so generic timeout handlers catch it for free.
"""

from __future__ import annotations


class ReliabilityError(RuntimeError):
    """Base class for every error raised by the reliability layer."""


class QueueFullError(ReliabilityError):
    """Admission rejected: the server's bounded queue is at capacity.

    Raised by ``BatchingServer.submit`` *before* the request is enqueued
    — load is shed at the door instead of growing the queue unboundedly.
    """


class DeadlineExceededError(ReliabilityError, TimeoutError):
    """A request's deadline expired before it reached batch assembly."""


class ServerClosedError(ReliabilityError):
    """A request was stranded in the queue when the server shut down."""


class InjectedFault(ReliabilityError):
    """The default exception raised by :func:`repro.reliability.faults.fault_point`."""


class JobQuarantinedError(ReliabilityError):
    """A sweep job was refused because its key is quarantined as poison."""


class JournalCorruptError(ReliabilityError):
    """A sweep journal record failed to parse *before* the tail.

    A torn tail (the final record cut short by a crash mid-append) is
    expected and tolerated on replay; an undecodable record with valid
    records after it means the journal was edited or the disk corrupted
    mid-file, and resuming from it could silently drop completed work.
    """


class PersistedQuarantineError(ReliabilityError):
    """A quarantine record reloaded from a journal or sidecar file.

    Stands in for the original exception (whose type/traceback died with
    the process that quarantined the cell); the message preserves the
    original error type and text so ``JobFailure.describe()`` stays
    informative across restarts.
    """


class ReplicaDiedError(ReliabilityError):
    """A serving replica process died while work was pending on it.

    Callers normally never see this — the supervisor re-dispatches the
    dead replica's in-flight batch to a survivor (inference is pure).  It
    surfaces only when the re-dispatch budget is exhausted or a targeted
    command (swap, drain) was aimed at the replica that died.
    """


class ReplicaCrashLoopError(ReliabilityError):
    """A replica died too many times inside the crash-loop window.

    The supervisor's circuit breaker stops restarting the replica and
    marks it failed; ``health()`` reports the server as degraded.
    Raised to the caller of a targeted command (swap) that was aimed at
    a breaker-tripped slot — unlike :class:`ReplicaDiedError`, the slot
    will never come back on its own.
    """


class NoHealthyReplicaError(ReliabilityError):
    """Every replica has tripped the crash-loop breaker; nothing can serve."""


class SwapFailedError(ReliabilityError):
    """A rolling hot-swap aborted and the fleet was rolled back.

    Raised by ``ReplicatedServer.swap_state`` after a replica failed the
    canary bit-parity check (or errored mid-swap): the old state has been
    restored on every already-promoted replica, so the fleet keeps serving
    the previous model uniformly.
    """


class CheckpointCorruptError(ReliabilityError):
    """A training checkpoint failed its content checksum on load.

    Restoring from corrupt bytes would silently resume a different run;
    the trainer refuses loudly instead (the atomic write protocol makes a
    torn *write* impossible, so this means real on-disk corruption).
    """
