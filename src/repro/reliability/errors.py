"""Exception inventory for the reliability layer.

Every error a caller can *handle* (shed load, retry elsewhere, report a
cell as failed) gets its own class here, so handlers never have to match
on message strings.  ``DeadlineExceededError`` additionally subclasses
:class:`TimeoutError` so generic timeout handlers catch it for free.
"""

from __future__ import annotations


class ReliabilityError(RuntimeError):
    """Base class for every error raised by the reliability layer."""


class QueueFullError(ReliabilityError):
    """Admission rejected: the server's bounded queue is at capacity.

    Raised by ``BatchingServer.submit`` *before* the request is enqueued
    — load is shed at the door instead of growing the queue unboundedly.
    """


class DeadlineExceededError(ReliabilityError, TimeoutError):
    """A request's deadline expired before it reached batch assembly."""


class ServerClosedError(ReliabilityError):
    """A request was stranded in the queue when the server shut down."""


class InjectedFault(ReliabilityError):
    """The default exception raised by :func:`repro.reliability.faults.fault_point`."""


class JobQuarantinedError(ReliabilityError):
    """A sweep job was refused because its key is quarantined as poison."""
