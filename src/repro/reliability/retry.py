"""Retry policies: bounded attempts, exponential backoff, deterministic jitter.

The sweep engine re-dispatches failed cells and the artifact store
re-reads torn files through the same small primitive::

    outcome = run_with_retry(job.build, policy=RetryPolicy(max_attempts=3),
                             site="sweep.build:gelu:gqa-rm")
    if outcome.error is not None:
        quarantine(outcome)          # attempts exhausted -> poison

Design points:

* **Deterministic jitter.**  Backoff delays are jittered to de-correlate
  retry storms, but the jitter is a hash of ``(site, attempt, seed)`` —
  not ``random()`` — so a replayed run sleeps the exact same schedule.
  Reproducibility is the repo-wide contract and the reliability layer is
  not exempt.
* **Classification, not blanket retry.**  A policy carries ``retryable``
  and ``fatal`` exception inventories; ``fatal`` wins, so a
  deterministic failure (bad job spec, poisoned cell) is quarantined on
  first sight instead of burning attempts.  ``BaseException``\\ s that are
  not ``Exception``\\ s (``KeyboardInterrupt``, ``SystemExit``) always
  propagate immediately.
* **Outcome objects.**  ``run_with_retry`` never raises for a failing
  callable — it returns a :class:`RetryResult` carrying the value *or*
  the final error plus the attempt count, which is exactly the shape the
  sweep manifest records.  ``call_with_retry`` is the raising shorthand.

Defaults resolve through :mod:`repro.core.engine_config`
(kwarg > context > ``REPRO_RETRY_ATTEMPTS`` / ``REPRO_RETRY_BASE_DELAY``
> defaults), so experiment scripts tune retry behaviour the same way
they pick engines.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from typing import Any, Callable, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, how long to wait, and what counts as transient.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (``1`` disables retry).
    base_delay:
        Backoff before the second attempt, in seconds; attempt ``n``
        waits ``base_delay * multiplier**(n-1)`` capped at ``max_delay``.
    jitter:
        Fraction of the backoff added as deterministic jitter: the delay
        lands in ``[backoff, backoff * (1 + jitter))``, positioned by a
        hash of ``(site, attempt, seed)``.
    retryable / fatal:
        Exception classes considered transient / permanent.  ``fatal``
        wins on overlap; anything matching neither propagates as fatal.
    max_elapsed:
        Optional total-elapsed budget in seconds (``None`` = unbounded).
        Retrying gives up once the *next* attempt could not start inside
        the budget — i.e. when ``elapsed + backoff > max_elapsed`` — so a
        deadline-driven caller (a serving supervisor restarting replicas,
        a request with an SLA) never sleeps past its deadline just
        because attempts remain.  The first attempt always runs.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    retryable: Tuple[type, ...] = (Exception,)
    fatal: Tuple[type, ...] = ()
    max_elapsed: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1, got %r" % (self.max_attempts,))
        for name in ("base_delay", "max_delay", "jitter"):
            if getattr(self, name) < 0:
                raise ValueError("%s must be >= 0, got %r" % (name, getattr(self, name)))
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1, got %r" % (self.multiplier,))
        if self.max_elapsed is not None and self.max_elapsed < 0:
            raise ValueError("max_elapsed must be >= 0, got %r" % (self.max_elapsed,))

    def is_retryable(self, error: BaseException) -> bool:
        """``True`` when ``error`` is transient under this policy."""
        if not isinstance(error, Exception):
            return False  # KeyboardInterrupt / SystemExit always propagate
        if self.fatal and isinstance(error, self.fatal):
            return False
        return isinstance(error, self.retryable)

    def backoff(self, attempt: int, site: str = "") -> float:
        """Delay (seconds) after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based, got %r" % (attempt,))
        base = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if base <= 0 or self.jitter <= 0:
            return base
        digest = hashlib.sha256(
            ("%s|%d|%d" % (site, attempt, self.seed)).encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return base * (1.0 + self.jitter * fraction)

    @staticmethod
    def resolve(policy: Optional["RetryPolicy"] = None) -> "RetryPolicy":
        """kwarg > engine-config context/env > the dataclass defaults."""
        if policy is not None:
            return policy
        from repro.core import engine_config

        config = engine_config.current()
        return RetryPolicy(
            max_attempts=config.retry_attempts, base_delay=config.retry_base_delay
        )


@dataclasses.dataclass
class RetryResult:
    """Outcome of ``run_with_retry``: a value or a final error, plus accounting."""

    value: Any = None
    error: Optional[BaseException] = None
    attempts: int = 0
    site: str = ""

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)


def run_with_retry(
    fn: Callable[[], Any],
    policy: Optional[RetryPolicy] = None,
    site: str = "",
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> RetryResult:
    """Call ``fn`` under ``policy``; never raises for ``Exception`` failures.

    ``sleep`` and ``clock`` are injectable so tests assert the backoff
    schedule (and the ``max_elapsed`` budget) without actually waiting.
    """
    policy = RetryPolicy.resolve(policy)
    started = clock()
    attempts = 0
    while True:
        attempts += 1
        try:
            return RetryResult(value=fn(), attempts=attempts, site=site)
        except Exception as error:  # noqa: BLE001 — classified below
            if attempts >= policy.max_attempts or not policy.is_retryable(error):
                return RetryResult(error=error, attempts=attempts, site=site)
            delay = policy.backoff(attempts, site=site)
            if policy.max_elapsed is not None:
                # Budget check covers the sleep we are *about* to take: a
                # retry that could only start past the deadline is pointless
                # work for a caller that has already given up waiting.
                if (clock() - started) + delay > policy.max_elapsed:
                    return RetryResult(error=error, attempts=attempts, site=site)
            if delay > 0:
                sleep(delay)


def call_with_retry(
    fn: Callable[[], Any],
    policy: Optional[RetryPolicy] = None,
    site: str = "",
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> Any:
    """Like :func:`run_with_retry` but re-raises the final error."""
    outcome = run_with_retry(fn, policy=policy, site=site, sleep=sleep, clock=clock)
    if outcome.error is not None:
        raise outcome.error
    return outcome.value
