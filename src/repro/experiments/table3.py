"""Table 3: average MSE of each method on every operator, 8 and 16 entries.

Scale-dependent operators (GELU, HSWISH, EXP) report the average quantized-
pipeline MSE over the ``2^0 .. 2^-6`` scaling-factor sweep; wide-range
operators (DIV, RSQRT) report the multi-range-scaling MSE over the covered
input range (Table 2 setup).  All methods are converted to the same INT8
FXP precision before evaluation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.jobs import ApproximationJob, SweepEngine, default_engine
from repro.experiments.methods import ApproximationBudget, METHODS
from repro.experiments.protocol import average_mse


@dataclasses.dataclass
class Table3Result:
    """Average MSE keyed by (method, num_entries, operator)."""

    operators: Tuple[str, ...]
    methods: Tuple[str, ...]
    entries: Tuple[int, ...]
    mse: Dict[Tuple[str, int, str], float]

    def value(self, method: str, num_entries: int, operator: str) -> float:
        return self.mse[(method, num_entries, operator)]

    def best_method(self, num_entries: int, operator: str) -> str:
        """Method with the lowest average MSE for one column of the table."""
        return min(self.methods, key=lambda m: self.mse[(m, num_entries, operator)])


def table3_jobs(
    operators: Sequence[str] = ("gelu", "hswish", "exp", "div", "rsqrt"),
    methods: Sequence[str] = METHODS,
    entries: Sequence[int] = (8, 16),
    budget: ApproximationBudget = ApproximationBudget(),
) -> Dict[Tuple[str, int, str], ApproximationJob]:
    """Every cell of Table 3 as a job, keyed by (method, entries, operator)."""
    return {
        (method, num_entries, operator): ApproximationJob(
            operator=operator, method=method, num_entries=num_entries, budget=budget
        )
        for method in methods
        for num_entries in entries
        for operator in operators
    }


def run_table3(
    operators: Sequence[str] = ("gelu", "hswish", "exp", "div", "rsqrt"),
    methods: Sequence[str] = METHODS,
    entries: Sequence[int] = (8, 16),
    budget: ApproximationBudget = ApproximationBudget(),
    engine: Optional[SweepEngine] = None,
    workers: Optional[int] = None,
) -> Table3Result:
    """Reproduce Table 3.

    All cells are enumerated up front and executed through the sweep
    engine, so cells shared with other experiments (or a previous run) come
    out of the artifact cache and the rest can run in parallel.
    """
    engine = engine if engine is not None else default_engine()
    jobs = table3_jobs(operators, methods, entries, budget)
    built = engine.run(jobs.values(), workers=workers)
    mse: Dict[Tuple[str, int, str], float] = {
        (method, num_entries, operator): average_mse(operator, built[job.key])
        for (method, num_entries, operator), job in jobs.items()
    }
    return Table3Result(
        operators=tuple(operators), methods=tuple(methods), entries=tuple(entries), mse=mse
    )


def format_table3(result: Table3Result) -> str:
    """Render the table in the paper's layout."""
    lines: List[str] = ["Table 3: Comparison of Average MSE on Different Methods (INT8 LUT)"]
    header = "%-14s %6s" % ("Method", "Entry") + "".join(
        "%12s" % op.upper() for op in result.operators
    )
    lines.append(header)
    for method in result.methods:
        for num_entries in result.entries:
            row = "%-14s %6d" % (method, num_entries)
            for operator in result.operators:
                row += "%12.2e" % result.value(method, num_entries, operator)
            lines.append(row)
    for num_entries in result.entries:
        winners = {
            op: result.best_method(num_entries, op) for op in result.operators
        }
        lines.append(
            "%d-entry best method per operator: %s"
            % (num_entries, ", ".join("%s->%s" % (op, m) for op, m in winners.items()))
        )
    return "\n".join(lines)
