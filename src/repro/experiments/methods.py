"""Shared construction of the compared approximation methods.

Three methods appear throughout the evaluation:

* ``"nn-lut"``      — the NN-LUT baseline (trained MLP, exact pwl extraction),
* ``"gqa-wo-rm"``   — GQA-LUT with conventional Gaussian mutation,
* ``"gqa-rm"``      — GQA-LUT with the Rounding Mutation strategy.

All three produce a :class:`PiecewiseLinear` whose slopes and intercepts are
FXP-rounded with the operator's ``lambda`` (Table 1), so the downstream
quantized evaluation treats them identically.

:func:`compute_approximation` is the raw, cache-oblivious builder — every
cell is seeded, so it is a pure function of its arguments.  The public
:func:`build_approximation` / :func:`build_approximations` route through the
sweep engine (:mod:`repro.experiments.jobs`), which deduplicates, caches
(in-process and optionally on disk) and can fan cells across a process
pool; results are bit-identical either way.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional, Tuple, TYPE_CHECKING

from repro.baselines.nn_lut import NNLUT, NNLUTTrainingConfig
from repro.core.config import default_config
from repro.core.pwl import PiecewiseLinear
from repro.core.search import GQALUT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.jobs import SweepEngine

# Canonical method identifiers, in the order the paper's tables list them.
METHODS: Tuple[str, ...] = ("nn-lut", "gqa-wo-rm", "gqa-rm")


@dataclasses.dataclass(frozen=True)
class ApproximationBudget:
    """Search/training budget knobs shared by the experiment runners.

    The paper's full budget is ``generations=500`` (Table 1 caption) and
    100K NN-LUT samples; the defaults here are lighter so that a complete
    table regenerates in minutes, and tests use even smaller values.
    """

    generations: int = 150
    population_size: int = 50
    nn_lut_samples: int = 20_000
    nn_lut_iterations: int = 1500
    seed: int = 0

    @classmethod
    def paper(cls) -> "ApproximationBudget":
        """The budget matching the paper's reported configuration."""
        return cls(generations=500, population_size=50,
                   nn_lut_samples=100_000, nn_lut_iterations=3000, seed=0)

    @classmethod
    def quick(cls) -> "ApproximationBudget":
        """A tiny budget for unit tests and smoke runs."""
        return cls(generations=25, population_size=16,
                   nn_lut_samples=3000, nn_lut_iterations=300, seed=0)


def compute_approximation(
    operator: str,
    method: str,
    num_entries: int = 8,
    budget: ApproximationBudget = ApproximationBudget(),
) -> PiecewiseLinear:
    """Build one (operator, method, entry-count) cell from scratch.

    This is the raw sequential path — no cache, no engine — kept as the
    bit-parity reference for the sweep engine and used by its workers.
    """
    config = default_config(operator)
    if method == "nn-lut":
        nn = NNLUT(
            config.function(),
            num_entries=num_entries,
            config=NNLUTTrainingConfig(
                num_samples=budget.nn_lut_samples,
                iterations=budget.nn_lut_iterations,
                seed=budget.seed,
            ),
        )
        nn.train()
        return nn.extract_fxp_pwl(frac_bits=config.frac_bits)
    if method in ("gqa-wo-rm", "gqa-rm"):
        searcher = GQALUT.for_operator(
            operator, num_entries=num_entries, use_rm=(method == "gqa-rm")
        )
        # The population-scoring path ("batch" | "legacy") resolves through
        # repro.core.engine_config; it never changes seeded results, so it
        # is deliberately not part of the budget (or the artifact key).
        outcome = searcher.search(
            generations=budget.generations,
            population_size=budget.population_size,
            seed=budget.seed,
        )
        return outcome.pwl_fxp
    raise ValueError("unknown method %r; expected one of %s" % (method, METHODS))


def build_approximation(
    operator: str,
    method: str,
    num_entries: int = 8,
    budget: ApproximationBudget = ApproximationBudget(),
    engine: Optional["SweepEngine"] = None,
) -> PiecewiseLinear:
    """Produce the FXP pwl for one (operator, method, entry-count) triple.

    Routed through ``engine`` (the process-wide default when omitted), so a
    cell already built by any experiment in this process — or present in the
    configured on-disk artifact store — is returned without recomputation.
    """
    from repro.experiments.jobs import ApproximationJob, default_engine

    engine = engine if engine is not None else default_engine()
    return engine.build(
        ApproximationJob(operator=operator, method=method,
                         num_entries=num_entries, budget=budget)
    )


def build_approximations(
    operators: Iterable[str],
    methods: Iterable[str] = METHODS,
    num_entries: int = 8,
    budget: ApproximationBudget = ApproximationBudget(),
    engine: Optional["SweepEngine"] = None,
    workers: Optional[int] = None,
) -> Dict[Tuple[str, str], PiecewiseLinear]:
    """Build every (operator, method) combination; keyed by that pair.

    The full grid is enumerated up front and handed to the sweep engine in
    one batch, so independent cells can run in parallel (``workers``) and
    duplicates with previously built artifacts cost nothing.
    """
    from repro.experiments.jobs import approximation_jobs, default_engine

    engine = engine if engine is not None else default_engine()
    operators, methods = tuple(operators), tuple(methods)
    # Shared enumerator: run_all's prefetch uses the same function, so the
    # prefetched cell set can never drift from what this actually requests.
    jobs = approximation_jobs(operators, methods, num_entries=num_entries, budget=budget)
    built = engine.run(jobs, workers=workers)
    cells = [(operator, method) for operator in operators for method in methods]
    return {cell: built[job.key] for cell, job in zip(cells, jobs)}
