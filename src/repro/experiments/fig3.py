"""Figure 3: normalized MSE vs scaling factor for GELU, HSWISH and EXP.

The figure compares NN-LUT and GQA-LUT w/ RM at 8 and 16 LUT entries across
the scaling-factor sweep ``S = 2^0 .. 2^-6`` plus the sweep average, and
annotates the per-scale improvement factor of GQA-LUT over NN-LUT.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.evaluation import DEFAULT_SCALES
from repro.experiments.jobs import ApproximationJob, SweepEngine, default_engine
from repro.experiments.methods import ApproximationBudget
from repro.experiments.protocol import scale_sweep_mse


@dataclasses.dataclass
class Fig3Series:
    """One curve of the figure: (method, entries) for a given operator."""

    operator: str
    method: str
    num_entries: int
    sweep: Dict[float, float]

    @property
    def average(self) -> float:
        return float(np.mean(list(self.sweep.values())))


@dataclasses.dataclass
class Fig3Result:
    """All series, grouped per operator."""

    series: List[Fig3Series]

    def for_operator(self, operator: str) -> List[Fig3Series]:
        return [s for s in self.series if s.operator == operator]

    def improvement(
        self, operator: str, num_entries: int, scale: float,
        reference: str = "nn-lut", method: str = "gqa-rm",
    ) -> float:
        """Per-scale improvement factor of ``method`` over ``reference``."""
        ref = next(
            s for s in self.series
            if s.operator == operator and s.method == reference and s.num_entries == num_entries
        )
        got = next(
            s for s in self.series
            if s.operator == operator and s.method == method and s.num_entries == num_entries
        )
        denominator = got.sweep[scale]
        return float(ref.sweep[scale] / denominator) if denominator > 0 else float("inf")


def fig3_jobs(
    operators: Sequence[str] = ("gelu", "hswish", "exp"),
    methods: Sequence[str] = ("nn-lut", "gqa-rm"),
    entries: Sequence[int] = (8, 16),
    budget: ApproximationBudget = ApproximationBudget(),
) -> Dict[Tuple[str, str, int], ApproximationJob]:
    """Every Fig. 3 curve as a job, keyed by (operator, method, entries)."""
    return {
        (operator, method, num_entries): ApproximationJob(
            operator=operator, method=method, num_entries=num_entries, budget=budget
        )
        for operator in operators
        for method in methods
        for num_entries in entries
    }


def run_fig3(
    operators: Sequence[str] = ("gelu", "hswish", "exp"),
    methods: Sequence[str] = ("nn-lut", "gqa-rm"),
    entries: Sequence[int] = (8, 16),
    scales: Sequence[float] = DEFAULT_SCALES,
    budget: ApproximationBudget = ApproximationBudget(),
    engine: Optional[SweepEngine] = None,
    workers: Optional[int] = None,
) -> Fig3Result:
    """Reproduce the Fig. 3 sweep (cells deduplicated through the engine)."""
    engine = engine if engine is not None else default_engine()
    jobs = fig3_jobs(operators, methods, entries, budget)
    built = engine.run(jobs.values(), workers=workers)
    series: List[Fig3Series] = [
        Fig3Series(
            operator=operator,
            method=method,
            num_entries=num_entries,
            sweep=scale_sweep_mse(operator, built[job.key], scales=scales),
        )
        for (operator, method, num_entries), job in jobs.items()
    ]
    return Fig3Result(series=series)


def format_fig3(result: Fig3Result) -> str:
    """Render Fig. 3 as text: per-operator normalized MSE plus improvements."""
    lines: List[str] = ["Figure 3: normalized MSE across INT8 scaling factors"]
    operators = sorted({s.operator for s in result.series})
    for operator in operators:
        group = result.for_operator(operator)
        scales = sorted(next(iter(group)).sweep.keys(), reverse=True)
        peak = max(max(s.sweep.values()) for s in group)
        lines.append("")
        lines.append("[%s]" % operator.upper())
        header = "%-22s" % "method/entries" + "".join(
            "%9s" % ("2^%d" % round(np.log2(s))) for s in scales
        ) + "%9s" % "avg"
        lines.append(header)
        for s in group:
            label = "%s (%d)" % (s.method, s.num_entries)
            normalized = [s.sweep[scale] / peak if peak > 0 else 0.0 for scale in scales]
            row = "%-22s" % label + "".join("%9.3f" % v for v in normalized)
            row += "%9.3f" % (s.average / peak if peak > 0 else 0.0)
            lines.append(row)
        # Improvement factors of GQA-LUT w/ RM over NN-LUT, per entry count.
        methods = {s.method for s in group}
        if "nn-lut" in methods and "gqa-rm" in methods:
            for num_entries in sorted({s.num_entries for s in group}):
                factors = [
                    result.improvement(operator, num_entries, scale)
                    for scale in scales
                ]
                lines.append(
                    "  %d-entry improvement (gqa-rm vs nn-lut): avg %.2fx, max %.2fx"
                    % (num_entries, float(np.mean(factors)), float(np.max(factors)))
                )
    return "\n".join(lines)
