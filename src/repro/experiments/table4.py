"""Table 4: fine-tuning mIoU of the vanilla-Transformer segmentation model.

Paper setting: Segformer-B0 on Cityscapes at 1024x1024, INT8 integer-only
quantization, non-linear operators EXP / GELU / DIV / RSQRT replaced by
8-entry pwl from NN-LUT, GQA-LUT w/o RM and GQA-LUT w/ RM.

Substitution here (see DESIGN.md): :class:`MiniSegformer` on the synthetic
segmentation dataset.  The quantity compared with the paper is the *ordering
and relative size* of the mIoU degradation across methods, not the absolute
mIoU.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.finetune import (
    ApproximationBudget,
    FinetuneBudget,
    FinetuneResult,
    format_finetune_table,
    run_finetune_experiment,
)
from repro.experiments.jobs import SweepEngine
from repro.experiments.methods import METHODS
from repro.nn.models import MiniSegformer

# The operator inventory of the vanilla Transformer model (Table 4 rows).
TABLE4_OPERATORS = ("exp", "gelu", "div", "rsqrt")


def run_table4(
    methods: Sequence[str] = METHODS,
    budget: FinetuneBudget = FinetuneBudget(),
    approx_budget: ApproximationBudget = ApproximationBudget(),
    include_individual: bool = True,
    engine: Optional[SweepEngine] = None,
    workers: Optional[int] = None,
) -> FinetuneResult:
    """Reproduce Table 4 with the MiniSegformer substitute."""
    return run_finetune_experiment(
        MiniSegformer,
        operators=TABLE4_OPERATORS,
        methods=methods,
        budget=budget,
        approx_budget=approx_budget,
        include_individual=include_individual,
        engine=engine,
        workers=workers,
    )


def format_table4(result: FinetuneResult) -> str:
    """Render Table 4."""
    return format_finetune_table(
        result, "Table 4: Fine-tuning mIoU of MiniSegformer (Segformer-B0 substitute)"
    )
