"""Table 6: hardware cost of the pwl unit across precisions and entry counts.

Paper setting: Verilog pwl units synthesized with Synopsys Design Compiler
on TSMC 28-nm at 500 MHz.  Substitution here: the analytical component-level
cost model of :mod:`repro.hardware` (calibrated to the paper's INT8/8-entry
anchor), plus generated Verilog RTL for the quantization-aware unit so the
modelled datapath is concrete.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.hardware.cost_model import (
    Precision,
    SynthesisEstimate,
    savings_vs,
    table6_sweep,
)
from repro.hardware.report import format_table6


@dataclasses.dataclass
class Table6Result:
    """All estimates plus the paper's headline savings figures."""

    estimates: List[SynthesisEstimate]
    area_saving_vs_fp32: float
    power_saving_vs_fp32: float
    area_saving_vs_int32: float
    power_saving_vs_int32: float
    entry_area_ratio_int8: float
    entry_power_ratio_int8: float

    def estimate(self, precision: Precision, num_entries: int) -> SynthesisEstimate:
        for est in self.estimates:
            if est.precision is precision and est.num_entries == num_entries:
                return est
        raise KeyError("no estimate for %s %d-entry" % (precision, num_entries))


def run_table6(
    entries: Sequence[int] = (8, 16),
    calibrate: bool = True,
) -> Table6Result:
    """Reproduce Table 6 with the analytical cost model."""
    estimates = table6_sweep(entries=tuple(entries), calibrate=calibrate)
    by_key: Dict[Tuple[Precision, int], SynthesisEstimate] = {
        (e.precision, e.num_entries): e for e in estimates
    }
    int8_8 = by_key[(Precision.INT8, 8)]
    fp32_8 = by_key[(Precision.FP32, 8)]
    int32_8 = by_key[(Precision.INT32, 8)]
    area_fp32, power_fp32 = savings_vs(fp32_8, int8_8)
    area_int32, power_int32 = savings_vs(int32_8, int8_8)
    if (Precision.INT8, 16) in by_key:
        int8_16 = by_key[(Precision.INT8, 16)]
        entry_area_ratio = int8_16.area_um2 / int8_8.area_um2
        entry_power_ratio = int8_16.power_mw / int8_8.power_mw
    else:
        entry_area_ratio = float("nan")
        entry_power_ratio = float("nan")
    return Table6Result(
        estimates=estimates,
        area_saving_vs_fp32=area_fp32,
        power_saving_vs_fp32=power_fp32,
        area_saving_vs_int32=area_int32,
        power_saving_vs_int32=power_int32,
        entry_area_ratio_int8=entry_area_ratio,
        entry_power_ratio_int8=entry_power_ratio,
    )


def format_table6_experiment(result: Table6Result) -> str:
    """Render the table plus the paper's headline comparisons."""
    lines = [format_table6(result.estimates)]
    lines.append(
        "16-entry INT8 vs 8-entry INT8: %.2fx area, %.2fx power"
        % (result.entry_area_ratio_int8, result.entry_power_ratio_int8)
    )
    lines.append(
        "Paper reference: 81.3%%/81.7%% area and 80.2%%/79.3%% power savings vs FP32/INT32;"
        " 1.71x area and 1.95x power for 16 vs 8 entries"
    )
    return "\n".join(lines)
