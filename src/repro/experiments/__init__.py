"""Experiment runners reproducing every table and figure of the paper.

Each module exposes a ``run_*`` function returning a plain-python result
object plus a ``format_*`` helper that renders it in the shape of the
paper's table/figure.  The benchmark harnesses under ``benchmarks/`` and the
example scripts call these runners with budgets appropriate to their
context (quick smoke settings for CI, fuller settings for the recorded
EXPERIMENTS.md numbers).
"""

from repro.experiments.methods import (
    ApproximationBudget,
    build_approximation,
    build_approximations,
    METHODS,
)
from repro.experiments.fig2 import run_fig2a, run_fig2b, format_fig2a, format_fig2b
from repro.experiments.fig3 import run_fig3, format_fig3
from repro.experiments.table3 import run_table3, format_table3
from repro.experiments.finetune import (
    FinetuneBudget,
    run_finetune_experiment,
    format_finetune_table,
)
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6, format_table6_experiment

__all__ = [
    "ApproximationBudget",
    "build_approximation",
    "build_approximations",
    "METHODS",
    "run_fig2a",
    "run_fig2b",
    "format_fig2a",
    "format_fig2b",
    "run_fig3",
    "format_fig3",
    "run_table3",
    "format_table3",
    "FinetuneBudget",
    "run_finetune_experiment",
    "format_finetune_table",
    "run_table4",
    "run_table5",
    "run_table6",
    "format_table6_experiment",
]
