"""Experiment runners reproducing every table and figure of the paper.

Each module exposes a ``run_*`` function returning a plain-python result
object plus a ``format_*`` helper that renders it in the shape of the
paper's table/figure.  The runners enumerate their approximation cells as
:class:`~repro.experiments.jobs.ApproximationJob` batches and execute them
through the sweep engine (:class:`~repro.experiments.jobs.SweepEngine`),
which deduplicates cells across experiments, caches artifacts in process
and optionally on disk, and can fan independent cells over a process pool;
:func:`~repro.experiments.run_all.run_all_experiments` regenerates the
whole evaluation from one deduplicated pass.  The benchmark harnesses
under ``benchmarks/`` and the example scripts call these runners with
budgets appropriate to their context (quick smoke settings for CI, fuller
settings for the recorded EXPERIMENTS.md numbers).
"""

from repro.experiments.methods import (
    ApproximationBudget,
    build_approximation,
    build_approximations,
    compute_approximation,
    METHODS,
)
from repro.experiments.artifacts import (
    ArtifactCache,
    ArtifactStore,
    GCReport,
    ScrubReport,
)
from repro.experiments.jobs import (
    ApproximationJob,
    JobFailure,
    SweepEngine,
    SweepResult,
    SweepStats,
    approximation_jobs,
    default_engine,
    set_default_engine,
)
from repro.experiments.queue import CellRecord, DurableQueue
from repro.experiments.fig2 import (
    run_fig2,
    run_fig2a,
    run_fig2b,
    format_fig2a,
    format_fig2b,
)
from repro.experiments.fig3 import run_fig3, format_fig3
from repro.experiments.table3 import run_table3, format_table3
from repro.experiments.finetune import (
    FinetuneBudget,
    run_finetune_experiment,
    format_finetune_table,
)
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6, format_table6_experiment
from repro.experiments.run_all import (
    AllExperimentsResult,
    all_experiment_jobs,
    run_all_experiments,
)

__all__ = [
    "ApproximationBudget",
    "ApproximationJob",
    "ArtifactCache",
    "ArtifactStore",
    "CellRecord",
    "DurableQueue",
    "GCReport",
    "JobFailure",
    "ScrubReport",
    "SweepEngine",
    "SweepResult",
    "SweepStats",
    "approximation_jobs",
    "build_approximation",
    "build_approximations",
    "compute_approximation",
    "default_engine",
    "set_default_engine",
    "METHODS",
    "run_fig2",
    "run_fig2a",
    "run_fig2b",
    "format_fig2a",
    "format_fig2b",
    "run_fig3",
    "format_fig3",
    "run_table3",
    "format_table3",
    "FinetuneBudget",
    "run_finetune_experiment",
    "format_finetune_table",
    "run_table4",
    "run_table5",
    "run_table6",
    "format_table6_experiment",
    "AllExperimentsResult",
    "all_experiment_jobs",
    "run_all_experiments",
]
