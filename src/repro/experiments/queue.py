"""Durable, journaled work-queue state for resumable sweeps.

A sweep used to be a process lifetime: kill the coordinator and the whole
grid's progress — which cells completed, which were in flight, which were
quarantined as poison — died with it.  :class:`DurableQueue` turns that
state into an on-disk object: an append-only, fsync'd JSONL journal under a
``run_dir`` records every per-cell transition, so a coordinator (or any of
its pool workers) can be SIGKILLed at any instant and a fresh process can
replay the journal and finish the sweep bit-identical to an uninterrupted
run.

Journal format
--------------

One JSON object per line, appended with ``flush`` + ``os.fsync`` so a
record either fully reaches the disk or is a *torn tail* — a final line
cut short mid-append.  Replay tolerates exactly that: an undecodable
**final** record is dropped (losing at most the last transition, which the
lease machinery recovers); an undecodable record **before** the tail means
real corruption and raises
:class:`~repro.reliability.errors.JournalCorruptError` rather than
silently resuming from a hole.

Record types (all carry ``"key"`` except ``meta`` / ``clear_quarantine``):

========== ==================================================================
``meta``              journal header: format version, lease timeout
``enqueue``           cell registered (carries the full job payload)
``lease``             cell handed to a worker until ``expires`` (wall clock)
``renew``             heartbeat: lease extended to ``expires``
``done``              cell completed and its artifact persisted
``fail``              one attempt failed; cell back to pending
``quarantine``        attempts exhausted; cell embargoed (survives restarts)
``clear_quarantine``  every embargo lifted
``reopen``            a done cell's artifact vanished; back to pending
========== ==================================================================

Lease state machine
-------------------

::

    pending --lease--> leased --done--> done
       ^                 |  |
       |                 |  +--fail--> pending   (attempts += 1)
       |                 +--(expiry)-> pending   (implicit: no record needed)
       |                 +--quarantine--> quarantined
       +--clear_quarantine / reopen------+

Lease expiry is *derived*, never journaled: a leased cell whose ``expires``
timestamp (wall clock — it must survive process restarts) has passed is
reported by :meth:`pending_keys` and re-leasable, which is precisely how a
dead coordinator's in-flight cells are recovered on resume.  Completion is
idempotent by construction — cells are addressed by their SHA-256 content
key and artifacts live in the content-addressed store — so the races a
visibility timeout allows (two workers finishing the same cell) converge
on bit-identical bytes.

The journal has a **single writer**: the coordinator process.  Pool
workers never append — their lifecycle is recorded by the coordinator on
their behalf, which keeps the journal free of multi-process interleaving
while still surviving the death of either side.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.core import engine_config
from repro.reliability.errors import JournalCorruptError
from repro.reliability.faults import fault_point

JOURNAL_NAME = "journal.jsonl"
# Bump on incompatible record-shape changes; replay refuses newer journals
# instead of misreading them.
JOURNAL_FORMAT_VERSION = 1

# Cell states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
QUARANTINED = "quarantined"


@dataclasses.dataclass
class CellRecord:
    """In-memory state of one journaled cell (rebuilt by replay)."""

    key: str
    payload: Dict[str, Any]
    state: str = PENDING
    attempts: int = 0
    lease_worker: str = ""
    lease_expires: float = 0.0
    error: str = ""
    error_type: str = ""

    def lease_expired(self, now: float) -> bool:
        return self.state == LEASED and now >= self.lease_expires


class DurableQueue:
    """On-disk work-queue state for one sweep run directory.

    Parameters
    ----------
    run_dir:
        Directory holding the journal (created on first use).  Artifacts
        conventionally live next to it under ``run_dir/artifacts`` (the
        sweep engine attaches a store there when it has none).
    lease_s:
        Visibility timeout for leased cells; ``None`` resolves through
        :mod:`repro.core.engine_config` (``REPRO_SWEEP_LEASE_S`` > 30).
    clock:
        Wall-clock source (injectable for lease-expiry tests).  Must be
        wall time, not monotonic — expiry is compared across processes.
    """

    def __init__(
        self,
        run_dir: Union[str, Path],
        lease_s: Optional[float] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.lease_s = engine_config.resolve_sweep_lease_s(lease_s)
        self.clock = clock
        self.journal_path = self.run_dir / JOURNAL_NAME
        self.cells: Dict[str, CellRecord] = {}
        # Set when replay dropped an undecodable final record (a crash
        # mid-append); exposed for tests and health reporting.
        self.torn_tail = False
        fresh = not self.journal_path.exists()
        if not fresh:
            self._replay()
        self._handle = open(self.journal_path, "a", encoding="utf-8")
        if fresh:
            self._append({
                "type": "meta",
                "format": JOURNAL_FORMAT_VERSION,
                "lease_s": self.lease_s,
            })

    # -- journal I/O -----------------------------------------------------

    def _replay(self) -> None:
        raw = self.journal_path.read_bytes()
        chunks = raw.split(b"\n")
        offset = 0
        for index, chunk in enumerate(chunks):
            if not chunk.strip():
                offset += len(chunk) + 1
                continue
            try:
                record = json.loads(chunk.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
            except (ValueError, UnicodeDecodeError):
                if index == len(chunks) - 1:
                    # Torn tail: the append was cut by a crash.  The lost
                    # transition is recovered by lease expiry / idempotent
                    # completion, never by guessing at partial bytes.  The
                    # torn bytes are truncated away so later appends start
                    # a fresh line instead of merging into the fragment
                    # (which would turn a recoverable tear into mid-journal
                    # corruption on the next replay).
                    self.torn_tail = True
                    with open(self.journal_path, "r+b") as handle:
                        handle.truncate(offset)
                    break
                raise JournalCorruptError(
                    "undecodable journal record %d of %s (not the tail): %r"
                    % (index + 1, self.journal_path, chunk[:80])
                ) from None
            self._apply(record)
            offset += len(chunk) + 1

    def _append(self, record: Dict[str, Any]) -> None:
        """Apply ``record`` in memory, then append + fsync it to the journal.

        In-memory state is updated through the same :meth:`_apply` replay
        uses, so a resumed process reconstructs exactly the state a live
        one held.
        """
        fault_point("queue.append")
        self._apply(record)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _apply(self, record: Dict[str, Any]) -> None:
        kind = record.get("type")
        if kind == "meta":
            version = int(record.get("format", 0))
            if version > JOURNAL_FORMAT_VERSION:
                raise JournalCorruptError(
                    "journal %s has format %d; this build reads <= %d"
                    % (self.journal_path, version, JOURNAL_FORMAT_VERSION)
                )
            return
        if kind == "clear_quarantine":
            for cell in self.cells.values():
                if cell.state == QUARANTINED:
                    cell.state = PENDING
                    cell.error = cell.error_type = ""
            return
        key = record.get("key")
        if not key:
            return  # unknown / extension record: ignore for forward compat
        if kind == "enqueue":
            if key not in self.cells:
                self.cells[key] = CellRecord(key=key, payload=record.get("job", {}))
            return
        cell = self.cells.get(key)
        if cell is None:
            return  # transition for a cell whose enqueue we never saw
        if kind == "lease":
            cell.state = LEASED
            cell.lease_worker = record.get("worker", "")
            cell.lease_expires = float(record.get("expires", 0.0))
        elif kind == "renew":
            if cell.state == LEASED:
                cell.lease_expires = float(record.get("expires", 0.0))
        elif kind == "done":
            cell.state = DONE
            cell.error = cell.error_type = ""
        elif kind == "fail":
            cell.state = PENDING
            cell.attempts = int(record.get("attempts", cell.attempts + 1))
            cell.error = record.get("error", "")
            cell.error_type = record.get("error_type", "")
        elif kind == "quarantine":
            cell.state = QUARANTINED
            cell.attempts = int(record.get("attempts", cell.attempts))
            cell.error = record.get("error", "")
            cell.error_type = record.get("error_type", "")
        elif kind == "reopen":
            cell.state = PENDING

    # -- transitions -----------------------------------------------------

    def enqueue(self, key: str, payload: Dict[str, Any]) -> bool:
        """Register a cell; idempotent (``False`` when already known)."""
        if key in self.cells:
            return False
        self._append({"type": "enqueue", "key": key, "job": payload})
        return True

    def lease(self, key: str, worker: str = "") -> float:
        """Lease ``key`` until ``now + lease_s``; returns the expiry time.

        Leasing an already-leased cell is a takeover (straggler
        re-dispatch or an expired lease being reclaimed) — the new record
        supersedes the old lease on replay.
        """
        fault_point("queue.lease")
        cell = self._known(key)
        if cell.state == QUARANTINED:
            raise ValueError("cannot lease quarantined cell %s" % key[:16])
        expires = self.clock() + self.lease_s
        self._append({
            "type": "lease", "key": key, "worker": worker, "expires": expires,
        })
        return expires

    def renew(self, key: str) -> None:
        """Heartbeat: push the lease expiry out another ``lease_s``."""
        cell = self._known(key)
        if cell.state != LEASED:
            return
        self._append({
            "type": "renew", "key": key, "expires": self.clock() + self.lease_s,
        })

    def complete(self, key: str) -> None:
        """Mark ``key`` done (idempotent; valid from any non-quarantined state)."""
        cell = self._known(key)
        if cell.state == DONE:
            return
        self._append({"type": "done", "key": key})

    def record_failure(self, key: str, error: BaseException, attempts: int) -> None:
        """One attempt failed; the cell returns to pending."""
        self._known(key)
        self._append({
            "type": "fail", "key": key, "attempts": int(attempts),
            "error": str(error), "error_type": type(error).__name__,
        })

    def quarantine(self, key: str, error: BaseException, attempts: int) -> None:
        """Embargo ``key``: later runs fail it fast until cleared."""
        self._known(key)
        self._append({
            "type": "quarantine", "key": key, "attempts": int(attempts),
            "error": str(error), "error_type": type(error).__name__,
        })

    def clear_quarantine(self) -> None:
        """Lift every embargo (the persisted record included)."""
        self._append({"type": "clear_quarantine"})

    def reopen(self, key: str) -> None:
        """A done cell's artifact vanished; make it buildable again."""
        cell = self._known(key)
        if cell.state == DONE:
            self._append({"type": "reopen", "key": key})

    def _known(self, key: str) -> CellRecord:
        cell = self.cells.get(key)
        if cell is None:
            raise KeyError("cell %s was never enqueued" % key[:16])
        return cell

    # -- views -----------------------------------------------------------

    def state(self, key: str) -> Optional[str]:
        cell = self.cells.get(key)
        if cell is None:
            return None
        if cell.lease_expired(self.clock()):
            return PENDING
        return cell.state

    def pending_keys(self, now: Optional[float] = None) -> List[str]:
        """Cells still owed work: pending plus expired leases, journal order."""
        now = self.clock() if now is None else now
        return [
            cell.key for cell in self.cells.values()
            if cell.state == PENDING or cell.lease_expired(now)
        ]

    def done_keys(self) -> List[str]:
        return [cell.key for cell in self.cells.values() if cell.state == DONE]

    def quarantined(self) -> Dict[str, CellRecord]:
        return {
            key: cell for key, cell in self.cells.items()
            if cell.state == QUARANTINED
        }

    def jobs(self) -> Dict[str, Dict[str, Any]]:
        """Every journaled cell's payload, keyed by content key."""
        return {key: cell.payload for key, cell in self.cells.items()}

    def counts(self) -> Dict[str, int]:
        """State histogram (expired leases counted as pending)."""
        now = self.clock()
        histogram = {PENDING: 0, LEASED: 0, DONE: 0, QUARANTINED: 0}
        for cell in self.cells.values():
            state = PENDING if cell.lease_expired(now) else cell.state
            histogram[state] += 1
        return histogram

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "DurableQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
