"""Shared evaluation protocol helpers for the operator-level experiments."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.evaluation import DEFAULT_SCALES, QuantizedPWLEvaluator
from repro.core.config import default_config
from repro.core.pwl import PiecewiseLinear
from repro.quant.quantizer import QuantSpec
from repro.scaling.multi_range import MultiRangePWL, default_multi_range

# Operators whose input carries a quantization scaling factor S.
SCALE_DEPENDENT_OPERATORS: Tuple[str, ...] = ("gelu", "hswish", "exp")
# Operators evaluated through multi-range input scaling (wide FXP inputs).
WIDE_RANGE_OPERATORS: Tuple[str, ...] = ("div", "rsqrt")


def scale_sweep_mse(
    operator: str,
    pwl: PiecewiseLinear,
    scales: Sequence[float] = DEFAULT_SCALES,
    bits: int = 8,
) -> Dict[float, float]:
    """Quantized-pipeline MSE per scaling factor for a scale-dependent op."""
    config = default_config(operator)
    evaluator = QuantizedPWLEvaluator(
        config.function(),
        spec=QuantSpec(bits=bits, signed=True),
        frac_bits=config.frac_bits,
    )
    return evaluator.sweep(pwl, scales)


def wide_range_mse(
    operator: str,
    pwl: PiecewiseLinear,
    num_samples: Optional[int] = None,
    bits: int = 8,
) -> float:
    """MSE of a wide-range operator under multi-range input scaling.

    Samples the input uniformly over the full covered range (the breakpoint
    interval plus all bounded sub-ranges of Table 2) with the data size the
    paper reports (Table 1) unless overridden.
    """
    config = default_config(operator)
    scaling = default_multi_range(operator)
    if num_samples is None:
        num_samples = config.data_size
    lo = config.search_range[0]
    # Cover the breakpoint interval plus every bounded sub-range of Table 2;
    # the unbounded tail sub-range reuses the previous scale and is pure
    # extrapolation, so it is excluded from the headline MSE.
    bounded = [sr.upper for sr in scaling.sub_ranges if np.isfinite(sr.upper)]
    hi = bounded[-1] if bounded else config.search_range[1]
    inputs = np.linspace(lo, hi, num_samples)
    wrapped = MultiRangePWL(pwl=pwl, scaling=scaling, frac_bits=config.frac_bits,
                            total_bits=bits)
    return wrapped.mse(config.function(), inputs)


def average_mse(operator: str, pwl: PiecewiseLinear, bits: int = 8) -> float:
    """The Table 3 statistic for any operator.

    Scale-dependent operators average the quantized-pipeline MSE over the
    ``2^0 .. 2^-6`` sweep; wide-range operators report the multi-range
    scaling MSE.
    """
    if operator in WIDE_RANGE_OPERATORS:
        return wide_range_mse(operator, pwl, bits=bits)
    sweep = scale_sweep_mse(operator, pwl, bits=bits)
    return float(np.mean(list(sweep.values())))


def normalize(values: Dict[float, float]) -> Dict[float, float]:
    """Normalise a per-scale MSE dict by its maximum (for Fig. 2a / Fig. 3)."""
    peak = max(values.values())
    if peak <= 0:
        return {k: 0.0 for k in values}
    return {k: v / peak for k, v in values.items()}
