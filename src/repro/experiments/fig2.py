"""Figure 2 experiments.

* **Fig. 2(a)** — normalized MSE of GELU approximation (8-entry LUT) across
  scaling factors ``S = 2^0 .. 2^-6`` for NN-LUT, GQA-LUT without RM and
  GQA-LUT with RM, plus the breakdown of total error contributed by the
  large scales (the paper reports the large scales dominate with ~92.5%).
* **Fig. 2(b)** — the breakpoint-deviation analysis for EXP: the same FP
  breakpoint quantized under a large scale (``S = 2^-1``) deviates far more
  than under a small scale (``S = 2^-3``), producing a larger approximation
  error around the breakpoint.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import default_config
from repro.core.evaluation import DEFAULT_SCALES
from repro.core.pwl import fit_pwl
from repro.experiments.jobs import ApproximationJob, SweepEngine, default_engine
from repro.experiments.methods import ApproximationBudget, METHODS
from repro.experiments.protocol import scale_sweep_mse
from repro.quant.quantizer import quant_bounds


@dataclasses.dataclass
class Fig2aResult:
    """Per-method scale sweeps for GELU plus the large-scale error share."""

    operator: str
    num_entries: int
    sweeps: Dict[str, Dict[float, float]]
    large_scale_share: Dict[str, float]

    def normalized(self) -> Dict[str, Dict[float, float]]:
        """Each method's sweep normalised by the global maximum MSE."""
        peak = max(max(s.values()) for s in self.sweeps.values())
        if peak <= 0:
            return {m: {k: 0.0 for k in s} for m, s in self.sweeps.items()}
        return {m: {k: v / peak for k, v in s.items()} for m, s in self.sweeps.items()}

    def improvement_over(self, reference: str, method: str) -> float:
        """Average MSE ratio reference/method (how many times better)."""
        ref = np.mean(list(self.sweeps[reference].values()))
        got = np.mean(list(self.sweeps[method].values()))
        return float(ref / got) if got > 0 else float("inf")


def fig2a_jobs(
    operator: str = "gelu",
    num_entries: int = 8,
    methods: Sequence[str] = METHODS,
    budget: ApproximationBudget = ApproximationBudget(),
) -> Dict[str, ApproximationJob]:
    """The per-method cells Fig. 2(a) draws from, keyed by method."""
    return {
        method: ApproximationJob(
            operator=operator, method=method, num_entries=num_entries, budget=budget
        )
        for method in methods
    }


def run_fig2a(
    operator: str = "gelu",
    num_entries: int = 8,
    scales: Sequence[float] = DEFAULT_SCALES,
    methods: Sequence[str] = METHODS,
    budget: ApproximationBudget = ApproximationBudget(),
    large_scale_threshold: float = 2.0 ** -2,
    engine: Optional[SweepEngine] = None,
    workers: Optional[int] = None,
) -> Fig2aResult:
    """Reproduce Fig. 2(a): the GELU MSE-vs-scale comparison."""
    engine = engine if engine is not None else default_engine()
    jobs = fig2a_jobs(operator, num_entries, methods, budget)
    built = engine.run(jobs.values(), workers=workers)
    sweeps: Dict[str, Dict[float, float]] = {}
    share: Dict[str, float] = {}
    for method, job in jobs.items():
        sweep = scale_sweep_mse(operator, built[job.key], scales=scales)
        sweeps[method] = sweep
        total = sum(sweep.values())
        large = sum(v for s, v in sweep.items() if s >= large_scale_threshold)
        share[method] = large / total if total > 0 else 0.0
    return Fig2aResult(
        operator=operator, num_entries=num_entries, sweeps=sweeps, large_scale_share=share
    )


def format_fig2a(result: Fig2aResult) -> str:
    """Render Fig. 2(a) as a text table (normalized MSE per scale)."""
    scales = sorted(next(iter(result.sweeps.values())).keys(), reverse=True)
    normalized = result.normalized()
    lines = [
        "Figure 2(a): %s %d-entry normalized MSE vs scaling factor"
        % (result.operator.upper(), result.num_entries)
    ]
    header = "%-12s" % "method" + "".join("%10s" % ("2^%d" % round(np.log2(s))) for s in scales)
    lines.append(header + "%12s" % "large-S %")
    for method, sweep in normalized.items():
        row = "%-12s" % method + "".join("%10.3f" % sweep[s] for s in scales)
        row += "%11.1f%%" % (100 * result.large_scale_share[method])
        lines.append(row)
    if "nn-lut" in result.sweeps:
        for method in result.sweeps:
            if method != "nn-lut":
                lines.append(
                    "improvement of %s over nn-lut: %.2fx"
                    % (method, result.improvement_over("nn-lut", method))
                )
    return "\n".join(lines)


@dataclasses.dataclass
class Fig2bResult:
    """Breakpoint deviation of one breakpoint under two scaling factors."""

    operator: str
    breakpoint: float
    scale_large: float
    scale_small: float
    quantized_large: float
    quantized_small: float
    deviation_large: float
    deviation_small: float
    error_large: float
    error_small: float


def fig2b_job(
    operator: str = "exp",
    num_entries: int = 8,
    budget: ApproximationBudget = ApproximationBudget(),
) -> ApproximationJob:
    """The single GQA-LUT w/o RM cell Fig. 2(b) analyses."""
    return ApproximationJob(
        operator=operator, method="gqa-wo-rm", num_entries=num_entries, budget=budget
    )


def run_fig2b(
    operator: str = "exp",
    num_entries: int = 8,
    breakpoint_index: int = 3,
    scale_large: float = 2.0 ** -1,
    scale_small: float = 2.0 ** -3,
    budget: ApproximationBudget = ApproximationBudget(),
    bits: int = 8,
    engine: Optional[SweepEngine] = None,
) -> Fig2bResult:
    """Reproduce Fig. 2(b): breakpoint deviation of EXP under two scales.

    The GQA-LUT (without RM) approximation of EXP is searched; one of its
    breakpoints is quantized to the INT grid of each scale and the local
    approximation error around the breakpoint is measured for both.  The
    cell comes from the engine cache when Fig. 2(a) (or any other
    experiment) already built it.
    """
    config = default_config(operator)
    engine = engine if engine is not None else default_engine()
    pwl = engine.build(fig2b_job(operator, num_entries, budget))
    if not 0 <= breakpoint_index < pwl.breakpoints.size:
        raise ValueError("breakpoint_index out of range")
    p = float(pwl.breakpoints[breakpoint_index])
    qn, qp = quant_bounds(bits, signed=True)

    def deviation_and_error(scale: float) -> Tuple[float, float, float]:
        p_quant = float(np.clip(np.round(p / scale), qn, qp) * scale)
        deviation = abs(p_quant - p)
        # Local error: MSE of the pwl with the single deviated breakpoint,
        # measured on a window around the original breakpoint.
        deviated_bp = pwl.breakpoints.copy()
        deviated_bp[breakpoint_index] = p_quant
        deviated = fit_pwl(config.function().fn, deviated_bp, config.search_range)
        window = np.linspace(p - 0.5, min(p + 0.5, config.search_range[1]), 200)
        reference = config.function()(window)
        error = float(np.mean((deviated(window) - reference) ** 2))
        return p_quant, deviation, error

    q_large, dev_large, err_large = deviation_and_error(scale_large)
    q_small, dev_small, err_small = deviation_and_error(scale_small)
    return Fig2bResult(
        operator=operator,
        breakpoint=p,
        scale_large=scale_large,
        scale_small=scale_small,
        quantized_large=q_large,
        quantized_small=q_small,
        deviation_large=dev_large,
        deviation_small=dev_small,
        error_large=err_large,
        error_small=err_small,
    )


def format_fig2b(result: Fig2bResult) -> str:
    """Render Fig. 2(b) as text."""
    lines = [
        "Figure 2(b): breakpoint deviation analysis (%s)" % result.operator.upper(),
        "original breakpoint p = %.4f" % result.breakpoint,
        "S = %-8g -> quantized p = %.4f, deviation = %.4f, local MSE = %.2e"
        % (result.scale_large, result.quantized_large, result.deviation_large, result.error_large),
        "S = %-8g -> quantized p = %.4f, deviation = %.4f, local MSE = %.2e"
        % (result.scale_small, result.quantized_small, result.deviation_small, result.error_small),
    ]
    if result.error_small > 0:
        lines.append(
            "error ratio (large S / small S): %.1fx"
            % (result.error_large / result.error_small)
        )
    return "\n".join(lines)


def run_fig2(
    num_entries: int = 8,
    methods: Sequence[str] = METHODS,
    budget: ApproximationBudget = ApproximationBudget(),
    fig2a_operator: str = "gelu",
    fig2b_operator: str = "exp",
    engine: Optional[SweepEngine] = None,
    workers: Optional[int] = None,
) -> Tuple[Fig2aResult, Fig2bResult]:
    """Both Fig. 2 panels in one deduplicated pass.

    The union of the panels' cells is prefetched through the engine in a
    single batch, so the ``(operator, "gqa-wo-rm", num_entries)`` pwl the
    breakpoint-deviation analysis needs is never rebuilt when the sweep of
    panel (a) — or any earlier experiment — already produced it.
    """
    engine = engine if engine is not None else default_engine()
    jobs = list(fig2a_jobs(fig2a_operator, num_entries, methods, budget).values())
    jobs.append(fig2b_job(fig2b_operator, num_entries, budget))
    engine.run(jobs, workers=workers)
    a = run_fig2a(operator=fig2a_operator, num_entries=num_entries, methods=methods,
                  budget=budget, engine=engine)
    b = run_fig2b(operator=fig2b_operator, num_entries=num_entries, budget=budget,
                  engine=engine)
    return a, b
