"""Regenerate every table and figure in one deduplicated parallel pass.

:func:`run_all_experiments` enumerates the union of approximation cells
needed by Table 3, Fig. 2, Fig. 3 and the Table 4/5 fine-tuning up front,
prefetches them through a single :class:`~repro.experiments.jobs.SweepEngine`
batch — duplicates collapse, previously stored artifacts load from disk,
missing cells fan out over the process pool — and then runs each experiment
against the warm cache.  Every cell owns an explicit seed, so the combined
pass is bit-identical to running the experiments one by one.

At the default configurations the experiments request 64 cells of which
only 30 are distinct (Fig. 2/Fig. 3 and both fine-tuning tables re-use
Table 3 cells); ``benchmarks/bench_experiment_sweep.py`` tracks the
resulting wall-clock win.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.experiments.fig2 import Fig2aResult, Fig2bResult, run_fig2
from repro.experiments.fig2 import fig2a_jobs, fig2b_job
from repro.experiments.fig3 import Fig3Result, fig3_jobs, run_fig3
from repro.experiments.jobs import (
    ApproximationJob,
    SweepEngine,
    approximation_jobs,
    default_engine,
)
from repro.experiments.methods import ApproximationBudget, METHODS
from repro.experiments.finetune import FinetuneBudget, FinetuneResult
from repro.experiments.table3 import Table3Result, run_table3, table3_jobs
from repro.experiments.table4 import TABLE4_OPERATORS, run_table4
from repro.experiments.table5 import TABLE5_OPERATORS, run_table5
from repro.experiments.table6 import Table6Result, run_table6


@dataclasses.dataclass
class AllExperimentsResult:
    """Every table and figure of the paper from one engine pass."""

    table3: Table3Result
    fig2a: Fig2aResult
    fig2b: Fig2bResult
    fig3: Fig3Result
    table6: Table6Result
    table4: Optional[FinetuneResult] = None
    table5: Optional[FinetuneResult] = None


def all_experiment_jobs(
    budget: ApproximationBudget = ApproximationBudget(),
) -> Dict[str, List[ApproximationJob]]:
    """Per-experiment job lists at the default experiment configurations.

    The lists mirror exactly what each runner enumerates (same helper
    functions), preserving each experiment's legacy iteration order; the
    benchmark uses them as the sequential baseline's work list.
    """
    return {
        "table3": list(table3_jobs(budget=budget).values()),
        "fig2a": list(fig2a_jobs(budget=budget).values()),
        "fig2b": [fig2b_job(budget=budget)],
        "fig3": list(fig3_jobs(budget=budget).values()),
        "table4_approx": approximation_jobs(TABLE4_OPERATORS, METHODS, budget=budget),
        "table5_approx": approximation_jobs(TABLE5_OPERATORS, METHODS, budget=budget),
    }


def run_all_experiments(
    approx_budget: ApproximationBudget = ApproximationBudget(),
    finetune_budget: FinetuneBudget = FinetuneBudget(),
    engine: Optional[SweepEngine] = None,
    workers: Optional[int] = None,
    include_finetune: bool = True,
    include_individual: bool = True,
    run_dir: Optional[str] = None,
) -> AllExperimentsResult:
    """Run every experiment against one shared, prefetched artifact cache.

    Parameters
    ----------
    engine:
        Shared sweep engine (the process-wide default when omitted); attach
        an on-disk store to it to share artifacts across invocations.
    workers:
        Process count for the prefetch batch; ``0``/``None`` keeps it
        serial.
    include_finetune:
        The Table 4/5 fine-tuning protocol trains models for minutes even
        at quick budgets; set ``False`` to regenerate only the operator-
        level tables and figures (their approximation cells are prefetched
        either way, matching what the fine-tuning would consume).
    run_dir:
        Durable-run directory for the prefetch batch.  When given, the
        batch is journaled and crash-safe: kill the process at any point
        and rerunning with the same ``run_dir`` finishes the remaining
        cells without rebuilding completed ones (see
        :meth:`~repro.experiments.jobs.SweepEngine.resume`).  Every cell
        is seeded, so the recorded numbers are unchanged.
    """
    engine = engine if engine is not None else default_engine()
    per_experiment = all_experiment_jobs(approx_budget)
    union: List[ApproximationJob] = [
        job for jobs in per_experiment.values() for job in jobs
    ]
    engine.run(union, workers=workers, run_dir=run_dir)

    table3 = run_table3(budget=approx_budget, engine=engine)
    fig2a, fig2b = run_fig2(budget=approx_budget, engine=engine)
    fig3 = run_fig3(budget=approx_budget, engine=engine)
    table6 = run_table6()
    table4 = table5 = None
    if include_finetune:
        table4 = run_table4(budget=finetune_budget, approx_budget=approx_budget,
                            engine=engine, include_individual=include_individual)
        table5 = run_table5(budget=finetune_budget, approx_budget=approx_budget,
                            engine=engine, include_individual=include_individual)
    return AllExperimentsResult(
        table3=table3, fig2a=fig2a, fig2b=fig2b, fig3=fig3,
        table6=table6, table4=table4, table5=table5,
    )
