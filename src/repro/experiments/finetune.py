"""Shared fine-tuning harness for the Table 4 / Table 5 experiments.

The protocol mirrors Section 4.2 of the paper, with the substitutions listed
in DESIGN.md (miniature models + synthetic segmentation data instead of
Segformer-B0 / EfficientViT-B0 on Cityscapes):

1. Train the floating-point model on the synthetic segmentation task.
2. Build the INT8 quantized baseline: LSQ-quantize every Linear layer,
   quantize the non-linear operator inputs with power-of-two scales, copy
   the float weights, and fine-tune.  Its validation mIoU is the "None"
   replacement row.
3. For each approximation method (NN-LUT, GQA-LUT w/o RM, GQA-LUT w/ RM)
   and each replacement set (each operator alone, then all together):
   swap in the pwl operators, copy the baseline weights and fine-tune,
   recording the validation mIoU.

The returned :class:`FinetuneResult` carries all rows plus the baseline, so
degradations (the paper's subscripted deltas) can be computed directly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.core.pwl import PiecewiseLinear
from repro.data.synthetic_segmentation import (
    SyntheticSegmentationConfig,
    SyntheticSegmentationDataset,
)
from repro.experiments.jobs import SweepEngine
from repro.experiments.methods import ApproximationBudget, METHODS, build_approximations
from repro.nn.approx import FloatSuite, OperatorSuite, PWLSuite, QuantizedBaselineSuite
from repro.nn.models import MiniEfficientViT, MiniSegformer, ModelConfig, SegmentationTransformer
from repro.nn.training import Trainer, TrainingConfig, prepare_quantized_model, transfer_weights


@dataclasses.dataclass(frozen=True)
class FinetuneBudget:
    """Compute budget for one full fine-tuning table."""

    pretrain_epochs: int = 30
    finetune_epochs: int = 6
    batch_size: int = 16
    pretrain_lr: float = 3e-3
    finetune_lr: float = 5e-4
    image_size: int = 32
    num_train: int = 96
    num_val: int = 32
    num_classes: int = 5
    embed_dim: int = 32
    depth: int = 2
    seed: int = 0

    @classmethod
    def quick(cls) -> "FinetuneBudget":
        """A tiny budget for unit tests and smoke runs."""
        return cls(
            pretrain_epochs=4,
            finetune_epochs=1,
            batch_size=8,
            image_size=16,
            num_train=24,
            num_val=8,
            embed_dim=16,
            depth=1,
        )


@dataclasses.dataclass
class FinetuneRow:
    """One row of the fine-tuning table."""

    replacement: str
    method: str
    miou: float
    degradation: float


@dataclasses.dataclass
class FinetuneResult:
    """Full table: baseline + one row per (method, replacement)."""

    model_name: str
    baseline_miou: float
    float_miou: float
    rows: List[FinetuneRow]
    operators: Tuple[str, ...]

    def row(self, method: str, replacement: str) -> FinetuneRow:
        for row in self.rows:
            if row.method == method and row.replacement == replacement:
                return row
        raise KeyError("no row for method=%r replacement=%r" % (method, replacement))

    def degradation(self, method: str, replacement: str = "altogether") -> float:
        return self.row(method, replacement).degradation


def _build_model(
    model_cls: Type[SegmentationTransformer],
    model_config: ModelConfig,
    suite: OperatorSuite,
) -> SegmentationTransformer:
    return model_cls(model_config, suite=suite)


def run_finetune_experiment(
    model_cls: Type[SegmentationTransformer],
    operators: Sequence[str],
    approximations: Optional[Dict[Tuple[str, str], PiecewiseLinear]] = None,
    methods: Sequence[str] = METHODS,
    budget: FinetuneBudget = FinetuneBudget(),
    approx_budget: ApproximationBudget = ApproximationBudget(),
    include_individual: bool = True,
    engine: Optional[SweepEngine] = None,
    workers: Optional[int] = None,
) -> FinetuneResult:
    """Run the full fine-tuning protocol for one model family.

    Parameters
    ----------
    model_cls:
        :class:`MiniSegformer` or :class:`MiniEfficientViT`.
    operators:
        The replaceable operator inventory of that model (Table 4/5 rows).
    approximations:
        Optional pre-built ``(operator, method) -> pwl`` mapping; built with
        ``approx_budget`` through the sweep engine when omitted (``engine``
        and ``workers`` are forwarded, so cells shared with Table 3 /
        Fig. 2 / Fig. 3 come from the artifact cache).
    include_individual:
        When true, each operator is additionally replaced on its own (the
        "X only" rows); the "altogether" row is always produced.
    """
    data_config = SyntheticSegmentationConfig(
        image_size=budget.image_size,
        num_classes=budget.num_classes,
        num_train=budget.num_train,
        num_val=budget.num_val,
        seed=budget.seed + 101,
    )
    dataset = SyntheticSegmentationDataset(data_config)
    model_config = ModelConfig(
        image_size=budget.image_size,
        num_classes=budget.num_classes,
        embed_dim=budget.embed_dim,
        depth=budget.depth,
        seed=budget.seed,
    )

    # 1. Float pre-training.
    float_model = _build_model(model_cls, model_config, FloatSuite())
    float_trainer = Trainer(
        float_model,
        TrainingConfig(
            epochs=budget.pretrain_epochs,
            batch_size=budget.batch_size,
            learning_rate=budget.pretrain_lr,
            seed=budget.seed,
        ),
    )
    float_result = float_trainer.fit(
        dataset.train_images, dataset.train_labels,
        dataset.val_images, dataset.val_labels,
        num_classes=dataset.num_classes,
    )

    def finetune(model) -> float:
        """Quantize linears, transfer float weights, fine-tune, return mIoU."""
        prepare_quantized_model(model)
        transfer_weights(float_model, model)
        trainer = Trainer(
            model,
            TrainingConfig(
                epochs=budget.finetune_epochs,
                batch_size=budget.batch_size,
                learning_rate=budget.finetune_lr,
                seed=budget.seed,
            ),
        )
        result = trainer.fit(
            dataset.train_images, dataset.train_labels,
            dataset.val_images, dataset.val_labels,
            num_classes=dataset.num_classes,
        )
        return result.val_miou

    # 2. Quantized baseline ("None" replacement).
    baseline_model = _build_model(model_cls, model_config, QuantizedBaselineSuite())
    baseline_miou = finetune(baseline_model)

    # 3. pwl replacements.
    if approximations is None:
        approximations = build_approximations(
            operators, methods, budget=approx_budget, engine=engine, workers=workers
        )

    replacements: List[Tuple[str, Sequence[str]]] = []
    if include_individual:
        replacements.extend((op, (op,)) for op in operators)
    replacements.append(("altogether", tuple(operators)))

    rows: List[FinetuneRow] = []
    for method in methods:
        per_method = {op: approximations[(op, method)] for op in operators}
        for name, replace in replacements:
            # The operator inference engine ("dense" | "legacy") resolves
            # through repro.core.engine_config; seeded runs are
            # bit-identical across engines.
            suite = PWLSuite(approximations=per_method, replace=set(replace))
            model = _build_model(model_cls, model_config, suite)
            miou = finetune(model)
            rows.append(
                FinetuneRow(
                    replacement=name,
                    method=method,
                    miou=miou,
                    degradation=baseline_miou - miou,
                )
            )

    return FinetuneResult(
        model_name=model_cls.__name__,
        baseline_miou=baseline_miou,
        float_miou=float_result.val_miou,
        rows=rows,
        operators=tuple(operators),
    )


def format_finetune_table(result: FinetuneResult, title: str) -> str:
    """Render the table in the paper's layout (methods as columns)."""
    methods = sorted({row.method for row in result.rows}, key=METHODS.index)
    replacements = []
    for row in result.rows:
        if row.replacement not in replacements:
            replacements.append(row.replacement)

    lines = [title]
    lines.append("float model mIoU: %.2f%%" % (100 * result.float_miou))
    header = "%-16s" % "Replacement" + "".join("%16s" % m for m in methods)
    lines.append(header)
    baseline = "%-16s" % "None" + "".join(
        "%15.2f%%" % (100 * result.baseline_miou) for _ in methods
    )
    lines.append(baseline)
    for replacement in replacements:
        label = replacement if replacement == "altogether" else "%s only" % replacement.upper()
        row_text = "%-16s" % label
        for method in methods:
            row = result.row(method, replacement)
            row_text += "%15.2f%%" % (100 * row.miou)
        lines.append(row_text)
    deltas = "%-16s" % "degradation"
    for method in methods:
        deltas += "%15.2f%%" % (100 * result.degradation(method, "altogether"))
    lines.append(deltas + "   (altogether vs None)")
    return "\n".join(lines)
