"""Two-tier content-addressed cache for approximation artifacts.

Every cell of the paper's evaluation grid — one ``(operator, method,
num_entries, budget)`` approximation — produces a small, immutable
:class:`~repro.core.pwl.PiecewiseLinear`.  The cells are rebuilt by several
experiments (Table 3, Fig. 2, Fig. 3, the Table 4/5 fine-tuning and the
benchmarks all draw from the same grid), so the sweep engine addresses them
by a stable content hash of the job description (see
:mod:`repro.experiments.jobs`) and stores the results in two tiers:

* **memory** — a plain in-process dict, shared by every experiment runner
  that goes through the same :class:`~repro.experiments.jobs.SweepEngine`;
* **disk** (optional) — one ``.npz`` per artifact holding the pwl's
  breakpoints/slopes/intercepts, so table, figure and benchmark invocations
  in *different* processes share results too.

On-disk layout (PR 8): artifacts **fan out into key-sharded directories**
(``ab/abcd1234….npz``, shard = first two hex chars of the key) so a
10-100x grid never lands a hundred thousand files in one directory.  The
flat pre-shard layout is still read transparently, and
:meth:`ArtifactStore.rebuild_manifest` migrates it in place — including
embedding content checksums into checksum-less legacy files.  Each shard
carries a ``MANIFEST.json`` (entry count + per-key checksums) rebuilt by
the same pass; :meth:`ArtifactStore.gc` removes orphaned temp files and
unreferenced entries (age-gated, so a gc pass racing a live writer never
deletes a just-committed artifact); :meth:`ArtifactStore.scrub` is the
integrity sweep — it verifies every embedded SHA-256, moves corrupt files
into a ``quarantine/`` directory, and thereby arranges self-healing: the
next access misses, recomputes the seeded cell, and rewrites a valid
artifact.

The disk store is deliberately forgiving: a missing, truncated or otherwise
unreadable artifact is treated as a miss and the cell is recomputed (and the
artifact rewritten), never raised to the caller.  Reads are hardened
against torn/corrupt files from concurrent writers: every artifact embeds
a SHA-256 content checksum which is verified on load (a file that unzips
but carries perturbed bytes is still a miss, counted in
``corrupt_reads``), and writes stay atomic (temp file + ``os.replace``)
so a reader racing a writer only ever sees a complete old or new file.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import struct
import tempfile
import time
import zipfile
import zlib
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.pwl import PiecewiseLinear
from repro.reliability.faults import corrupt_file, fault_point

# Array names stored per artifact; everything else about a pwl is derived.
_ARRAY_FIELDS = ("breakpoints", "slopes", "intercepts")

# Exceptions a torn/corrupt/foreign artifact file can raise on read.
_READ_ERRORS = (
    OSError,
    ValueError,
    KeyError,
    zipfile.BadZipFile,
    EOFError,
    zlib.error,
    struct.error,
)

# Shard directories are the first SHARD_CHARS hex chars of the key.
SHARD_CHARS = 2
_SHARD_RE = re.compile(r"^[0-9a-f]{%d}$" % SHARD_CHARS)
MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT_VERSION = 1
QUARANTINE_DIR = "quarantine"


def _content_digest(arrays: Dict[str, np.ndarray]) -> bytes:
    """SHA-256 over shapes + bytes of the pwl arrays, field order fixed."""
    digest = hashlib.sha256()
    for field in _ARRAY_FIELDS:
        array = np.ascontiguousarray(arrays[field], dtype=np.float64)
        digest.update(field.encode("ascii"))
        digest.update(repr(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.digest()


@dataclasses.dataclass
class ScrubReport:
    """Outcome of one :meth:`ArtifactStore.scrub` integrity sweep."""

    scanned: int = 0
    ok: int = 0
    corrupt: int = 0
    missing_checksum: int = 0
    quarantined: List[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class GCReport:
    """Outcome of one :meth:`ArtifactStore.gc` pass."""

    tmp_removed: int = 0
    unreferenced_removed: int = 0
    kept_recent: int = 0


class ArtifactStore:
    """On-disk artifact tier: one ``.npz`` of pwl arrays per cache key.

    Parameters
    ----------
    directory:
        Directory holding the artifacts; created on first use.  Selectable
        per-engine or process-wide through the ``REPRO_ARTIFACT_DIR``
        environment variable (see :func:`repro.experiments.jobs.default_engine`).
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Reads that unzipped but failed checksum/shape validation — i.e.
        # actual corruption survived to the content layer, not just a
        # missing file.  Exposed for health reporting and the chaos tests.
        self.corrupt_reads = 0

    # -- layout ----------------------------------------------------------

    def shard_for(self, key: str) -> str:
        """The shard directory name owning ``key``."""
        return key[:SHARD_CHARS]

    def path_for(self, key: str) -> Path:
        """The (sharded) artifact file backing ``key``."""
        return self.directory / self.shard_for(key) / ("%s.npz" % key)

    def legacy_path_for(self, key: str) -> Path:
        """Where the pre-shard flat layout kept ``key``."""
        return self.directory / ("%s.npz" % key)

    def _resolve(self, key: str) -> Optional[Path]:
        """The existing file for ``key`` — sharded wins over legacy flat."""
        sharded = self.path_for(key)
        if sharded.exists():
            return sharded
        legacy = self.legacy_path_for(key)
        if legacy.exists():
            return legacy
        return None

    def _shard_dirs(self) -> List[Path]:
        return sorted(
            child for child in self.directory.iterdir()
            if child.is_dir() and _SHARD_RE.match(child.name)
        )

    def _artifact_files(self) -> List[Path]:
        """Every artifact file, sharded then flat, sorted for determinism."""
        files: List[Path] = []
        for shard in self._shard_dirs():
            files.extend(sorted(shard.glob("*.npz")))
        files.extend(sorted(self.directory.glob("*.npz")))
        return files

    def keys(self) -> list:
        """Keys of every (syntactically valid) artifact currently on disk."""
        return sorted({path.stem for path in self._artifact_files()})

    def manifest_path(self, shard: str) -> Path:
        return self.directory / shard / MANIFEST_NAME

    # -- read / write ----------------------------------------------------

    def _read_arrays(
        self, path: Path
    ) -> Tuple[Dict[str, np.ndarray], Optional[bytes]]:
        """Raw arrays + embedded checksum (``None`` for legacy files)."""
        with np.load(path, allow_pickle=False) as data:
            arrays = {field: np.asarray(data[field]) for field in _ARRAY_FIELDS}
            checksum = (
                np.asarray(data["checksum"]).tobytes()
                if "checksum" in data.files
                else None
            )
        return arrays, checksum

    def load(self, key: str) -> Optional[PiecewiseLinear]:
        """Read an artifact; ``None`` on miss *or* on a corrupted file."""
        path = self._resolve(key)
        if path is None:
            return None
        fault_point("artifact.load")
        try:
            arrays, checksum = self._read_arrays(path)
            if checksum is not None and checksum != _content_digest(arrays):
                self.corrupt_reads += 1
                return None
            return PiecewiseLinear(**arrays)
        except _READ_ERRORS:
            # Corrupted or foreign file: treat as a miss so the engine
            # recomputes the cell and rewrites a valid artifact.  A torn
            # write can never be observed here — writes go through a temp
            # file + atomic ``os.replace`` — so this path means a crashed
            # foreign writer or actual on-disk corruption.
            return None

    def save(self, key: str, pwl: PiecewiseLinear) -> Path:
        """Write an artifact atomically (write-to-temp + rename), sharded."""
        fault_point("artifact.save")
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".%s-" % key[:16], suffix=".npz.tmp", dir=str(path.parent)
        )
        try:
            arrays = {
                "breakpoints": pwl.breakpoints,
                "slopes": pwl.slopes,
                "intercepts": pwl.intercepts,
            }
            checksum = np.frombuffer(_content_digest(arrays), dtype=np.uint8)
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, checksum=checksum, **arrays)
            # Chaos hook: models a torn write that still got renamed into
            # place (worst-case foreign writer) — readers must fall back.
            corrupt_file("artifact.save", tmp_name)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # -- manifest / migration --------------------------------------------

    def rebuild_manifest(self) -> Dict[str, int]:
        """Migrate the layout in place, then rewrite every shard manifest.

        Flat pre-shard artifacts move into their shard directory; legacy
        checksum-less files are rewritten through :meth:`save` so the
        content checksum gets embedded (the arrays are preserved bitwise —
        only the container changes).  Unreadable flat files are left where
        they are for :meth:`scrub` to quarantine.  Afterwards each shard's
        ``MANIFEST.json`` records its entry count and per-key checksums
        (atomic write), giving integrity tooling a ground truth that does
        not require opening every ``.npz``.
        """
        migrated = 0
        unreadable = 0
        for path in sorted(self.directory.glob("*.npz")):
            key = path.stem
            try:
                arrays, checksum = self._read_arrays(path)
            except _READ_ERRORS:
                unreadable += 1
                continue
            if checksum is None:
                # Legacy artifact: rewrite sharded with the checksum
                # embedded, then retire the flat file.
                self.save(key, PiecewiseLinear(**arrays))
                path.unlink()
            else:
                target = self.path_for(key)
                target.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, target)
            migrated += 1

        entries_total = 0
        shards = 0
        for shard_dir in self._shard_dirs():
            entries: Dict[str, str] = {}
            for artifact in sorted(shard_dir.glob("*.npz")):
                try:
                    arrays, checksum = self._read_arrays(artifact)
                except _READ_ERRORS:
                    unreadable += 1
                    continue
                if checksum is None:
                    checksum = _content_digest(arrays)
                entries[artifact.stem] = checksum.hex()
            manifest = {
                "format": MANIFEST_FORMAT_VERSION,
                "shard": shard_dir.name,
                "count": len(entries),
                "entries": entries,
            }
            self._write_json_atomic(self.manifest_path(shard_dir.name), manifest)
            entries_total += len(entries)
            shards += 1
        return {
            "migrated": migrated,
            "shards": shards,
            "entries": entries_total,
            "unreadable": unreadable,
        }

    def read_manifest(self, shard: str) -> Optional[dict]:
        path = self.manifest_path(shard)
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def _write_json_atomic(self, path: Path, payload: dict) -> None:
        fd, tmp_name = tempfile.mkstemp(
            prefix=".manifest-", suffix=".json.tmp", dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True, indent=1)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- gc / scrub ------------------------------------------------------

    def gc(
        self,
        referenced: Optional[Iterable[str]] = None,
        grace_s: float = 60.0,
        now: Optional[float] = None,
    ) -> GCReport:
        """Remove orphaned temp files and (optionally) unreferenced entries.

        Everything younger than ``grace_s`` is kept, which is the entire
        concurrency story: a live writer's temp file and a just-committed
        artifact both have fresh mtimes, so any number of gc passes racing
        the writer — or each other — cannot delete in-progress or
        just-landed work.  Removals tolerate losing the race to another gc
        pass (a vanished file is already the desired outcome).

        ``referenced`` is the caller's live-key set (e.g. a run journal's
        cells); when given, artifacts outside it that are older than the
        grace window are deleted.  ``None`` removes temp orphans only.
        """
        report = GCReport()
        now = time.time() if now is None else now
        directories = [self.directory] + self._shard_dirs()
        for directory in directories:
            for pattern in ("*.npz.tmp", ".*.npz.tmp"):
                for tmp in directory.glob(pattern):
                    if self._older_than(tmp, now, grace_s):
                        self._unlink_quiet(tmp)
                        report.tmp_removed += 1
                    else:
                        report.kept_recent += 1
        if referenced is not None:
            keep: Set[str] = set(referenced)
            for artifact in self._artifact_files():
                if artifact.stem in keep:
                    continue
                if self._older_than(artifact, now, grace_s):
                    self._unlink_quiet(artifact)
                    report.unreferenced_removed += 1
                else:
                    report.kept_recent += 1
        return report

    @staticmethod
    def _older_than(path: Path, now: float, grace_s: float) -> bool:
        try:
            return now - path.stat().st_mtime > grace_s
        except OSError:
            return False  # vanished under us: nothing to remove

    @staticmethod
    def _unlink_quiet(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def scrub(self) -> ScrubReport:
        """Verify every artifact's embedded SHA-256; quarantine corruption.

        A file whose recomputed digest disagrees with its embedded
        checksum — or that no longer parses at all — is moved into
        ``quarantine/`` (never deleted: the bytes stay available for
        forensics).  The store then *self-heals*: the next access misses,
        the seeded cell recomputes, and a checksum-valid artifact is
        rewritten in place.  Checksum-less legacy files are counted but
        left alone (no verdict without a checksum); run
        :meth:`rebuild_manifest` to upgrade them.
        """
        report = ScrubReport()
        quarantine_dir = self.directory / QUARANTINE_DIR
        for artifact in self._artifact_files():
            fault_point("artifact.scrub")
            report.scanned += 1
            corrupt = False
            try:
                arrays, checksum = self._read_arrays(artifact)
                if checksum is None:
                    report.missing_checksum += 1
                    continue
                corrupt = checksum != _content_digest(arrays)
            except _READ_ERRORS:
                corrupt = True
            if not corrupt:
                report.ok += 1
                continue
            report.corrupt += 1
            self.corrupt_reads += 1
            quarantine_dir.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(artifact, quarantine_dir / artifact.name)
                report.quarantined.append(artifact.stem)
            except OSError:
                pass  # lost a race with a rewriting engine: it healed first
        return report


class ArtifactCache:
    """Two-tier cache: in-process dict backed by an optional disk store.

    A disk hit is promoted into the memory tier, so repeated pulls of the
    same cell within one process read the file once.  Hit/miss counters are
    cumulative over the cache's lifetime; :class:`SweepEngine` snapshots
    them around each run to report per-run statistics.
    """

    def __init__(self, store: Optional[ArtifactStore] = None) -> None:
        self.store = store
        self._memory: Dict[str, PiecewiseLinear] = {}
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0

    def load(self, key: str) -> Optional[PiecewiseLinear]:
        """Look ``key`` up through both tiers, counting the hit level."""
        hit = self._memory.get(key)
        if hit is not None:
            self.memory_hits += 1
            return hit
        if self.store is not None:
            hit = self.store.load(key)
            if hit is not None:
                self._memory[key] = hit
                self.disk_hits += 1
                return hit
        self.misses += 1
        return None

    def put(self, key: str, pwl: PiecewiseLinear) -> None:
        """Insert into the memory tier and persist when a store is attached."""
        self._memory[key] = pwl
        if self.store is not None:
            self.store.save(key, pwl)

    def __len__(self) -> int:
        return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the in-process tier (the disk store is left untouched)."""
        self._memory.clear()
