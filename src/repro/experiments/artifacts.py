"""Two-tier content-addressed cache for approximation artifacts.

Every cell of the paper's evaluation grid — one ``(operator, method,
num_entries, budget)`` approximation — produces a small, immutable
:class:`~repro.core.pwl.PiecewiseLinear`.  The cells are rebuilt by several
experiments (Table 3, Fig. 2, Fig. 3, the Table 4/5 fine-tuning and the
benchmarks all draw from the same grid), so the sweep engine addresses them
by a stable content hash of the job description (see
:mod:`repro.experiments.jobs`) and stores the results in two tiers:

* **memory** — a plain in-process dict, shared by every experiment runner
  that goes through the same :class:`~repro.experiments.jobs.SweepEngine`;
* **disk** (optional) — one ``<key>.npz`` per artifact holding the pwl's
  breakpoints/slopes/intercepts, so table, figure and benchmark invocations
  in *different* processes share results too.

The disk store is deliberately forgiving: a missing, truncated or otherwise
unreadable artifact is treated as a miss and the cell is recomputed (and the
artifact rewritten), never raised to the caller.  Reads are hardened
against torn/corrupt files from concurrent writers: every artifact embeds
a SHA-256 content checksum which is verified on load (a file that unzips
but carries perturbed bytes is still a miss, counted in
``corrupt_reads``), and writes stay atomic (temp file + ``os.replace``)
so a reader racing a writer only ever sees a complete old or new file.
"""

from __future__ import annotations

import hashlib
import os
import struct
import tempfile
import zipfile
import zlib
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.core.pwl import PiecewiseLinear
from repro.reliability.faults import corrupt_file, fault_point

# Array names stored per artifact; everything else about a pwl is derived.
_ARRAY_FIELDS = ("breakpoints", "slopes", "intercepts")

# Exceptions a torn/corrupt/foreign artifact file can raise on read.
_READ_ERRORS = (
    OSError,
    ValueError,
    KeyError,
    zipfile.BadZipFile,
    EOFError,
    zlib.error,
    struct.error,
)


def _content_digest(arrays: Dict[str, np.ndarray]) -> bytes:
    """SHA-256 over shapes + bytes of the pwl arrays, field order fixed."""
    digest = hashlib.sha256()
    for field in _ARRAY_FIELDS:
        array = np.ascontiguousarray(arrays[field], dtype=np.float64)
        digest.update(field.encode("ascii"))
        digest.update(repr(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.digest()


class ArtifactStore:
    """On-disk artifact tier: one ``.npz`` of pwl arrays per cache key.

    Parameters
    ----------
    directory:
        Directory holding the artifacts; created on first use.  Selectable
        per-engine or process-wide through the ``REPRO_ARTIFACT_DIR``
        environment variable (see :func:`repro.experiments.jobs.default_engine`).
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Reads that unzipped but failed checksum/shape validation — i.e.
        # actual corruption survived to the content layer, not just a
        # missing file.  Exposed for health reporting and the chaos tests.
        self.corrupt_reads = 0

    def path_for(self, key: str) -> Path:
        """The artifact file backing ``key``."""
        return self.directory / ("%s.npz" % key)

    def load(self, key: str) -> Optional[PiecewiseLinear]:
        """Read an artifact; ``None`` on miss *or* on a corrupted file."""
        path = self.path_for(key)
        if not path.exists():
            return None
        fault_point("artifact.load")
        try:
            with np.load(path, allow_pickle=False) as data:
                arrays = {field: np.asarray(data[field]) for field in _ARRAY_FIELDS}
                checksum = (
                    np.asarray(data["checksum"]).tobytes()
                    if "checksum" in data.files
                    else None
                )
            if checksum is not None and checksum != _content_digest(arrays):
                self.corrupt_reads += 1
                return None
            return PiecewiseLinear(**arrays)
        except _READ_ERRORS:
            # Corrupted or foreign file: treat as a miss so the engine
            # recomputes the cell and rewrites a valid artifact.  A torn
            # write can never be observed here — writes go through a temp
            # file + atomic ``os.replace`` — so this path means a crashed
            # foreign writer or actual on-disk corruption.
            return None

    def save(self, key: str, pwl: PiecewiseLinear) -> Path:
        """Write an artifact atomically (write-to-temp + rename)."""
        fault_point("artifact.save")
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".%s-" % key[:16], suffix=".npz.tmp", dir=str(self.directory)
        )
        try:
            arrays = {
                "breakpoints": pwl.breakpoints,
                "slopes": pwl.slopes,
                "intercepts": pwl.intercepts,
            }
            checksum = np.frombuffer(_content_digest(arrays), dtype=np.uint8)
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, checksum=checksum, **arrays)
            # Chaos hook: models a torn write that still got renamed into
            # place (worst-case foreign writer) — readers must fall back.
            corrupt_file("artifact.save", tmp_name)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def keys(self) -> list:
        """Keys of every (syntactically valid) artifact currently on disk."""
        return [p.stem for p in sorted(self.directory.glob("*.npz"))]


class ArtifactCache:
    """Two-tier cache: in-process dict backed by an optional disk store.

    A disk hit is promoted into the memory tier, so repeated pulls of the
    same cell within one process read the file once.  Hit/miss counters are
    cumulative over the cache's lifetime; :class:`SweepEngine` snapshots
    them around each run to report per-run statistics.
    """

    def __init__(self, store: Optional[ArtifactStore] = None) -> None:
        self.store = store
        self._memory: Dict[str, PiecewiseLinear] = {}
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0

    def load(self, key: str) -> Optional[PiecewiseLinear]:
        """Look ``key`` up through both tiers, counting the hit level."""
        hit = self._memory.get(key)
        if hit is not None:
            self.memory_hits += 1
            return hit
        if self.store is not None:
            hit = self.store.load(key)
            if hit is not None:
                self._memory[key] = hit
                self.disk_hits += 1
                return hit
        self.misses += 1
        return None

    def put(self, key: str, pwl: PiecewiseLinear) -> None:
        """Insert into the memory tier and persist when a store is attached."""
        self._memory[key] = pwl
        if self.store is not None:
            self.store.save(key, pwl)

    def __len__(self) -> int:
        return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the in-process tier (the disk store is left untouched)."""
        self._memory.clear()
