"""Table 5: fine-tuning mIoU of the lightweight linear-attention model.

Paper setting: EfficientViT-B0 on Cityscapes at 1920x1024 with HSWISH and
DIV as the only non-linear operators (linear attention is softmax-free).

Substitution here (see DESIGN.md): :class:`MiniEfficientViT` (depthwise-conv
token mixing + ReLU-kernel linear attention + HSWISH FFN) on the synthetic
segmentation dataset.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.finetune import (
    ApproximationBudget,
    FinetuneBudget,
    FinetuneResult,
    format_finetune_table,
    run_finetune_experiment,
)
from repro.experiments.jobs import SweepEngine
from repro.experiments.methods import METHODS
from repro.nn.models import MiniEfficientViT

# The operator inventory of the lightweight model (Table 5 rows).
TABLE5_OPERATORS = ("hswish", "div")


def run_table5(
    methods: Sequence[str] = METHODS,
    budget: FinetuneBudget = FinetuneBudget(),
    approx_budget: ApproximationBudget = ApproximationBudget(),
    include_individual: bool = True,
    engine: Optional[SweepEngine] = None,
    workers: Optional[int] = None,
) -> FinetuneResult:
    """Reproduce Table 5 with the MiniEfficientViT substitute."""
    return run_finetune_experiment(
        MiniEfficientViT,
        operators=TABLE5_OPERATORS,
        methods=methods,
        budget=budget,
        approx_budget=approx_budget,
        include_individual=include_individual,
        engine=engine,
        workers=workers,
    )


def format_table5(result: FinetuneResult) -> str:
    """Render Table 5."""
    return format_finetune_table(
        result, "Table 5: Fine-tuning mIoU of MiniEfficientViT (EfficientViT-B0 substitute)"
    )
