"""Declarative experiment cells and the parallel sweep engine.

The paper's evaluation is a grid of independent cells: every table and
figure is assembled from ``(operator, method, num_entries, budget)``
approximations, each of which owns an explicit seed.  This module turns a
cell into a declarative :class:`ApproximationJob` with a canonical,
content-addressed cache key, and executes batches of jobs through
:class:`SweepEngine`:

* duplicate jobs inside a batch are collapsed before any work happens;
* previously built cells are answered from the two-tier
  :class:`~repro.experiments.artifacts.ArtifactCache` (in-process dict plus
  optional on-disk ``.npz`` store);
* the remaining cells run either serially (``workers=0``, the debugging and
  coverage path) or fanned out over a ``ProcessPoolExecutor``.

Because each cell is seeded and side-effect free, the parallel and serial
paths are bit-identical by construction — the tests assert it, the
benchmarks gate on it.

A sweep can further be made a **durable, resumable object** (PR 8): give
:meth:`SweepEngine.run_manifest` a ``run_dir`` (kwarg, engine attribute or
``REPRO_SWEEP_RUN_DIR``) and every per-cell transition is journaled through
:class:`~repro.experiments.queue.DurableQueue` — pending → leased (with
expiry + heartbeat renewal) → done/quarantined — while artifacts land in a
store under ``run_dir/artifacts``.  SIGKILL the coordinator or any worker
at any instant and :meth:`SweepEngine.resume` replays the journal, answers
completed cells from the content-addressed store (zero rebuilds),
re-leases expired cells, and finishes bit-identical to an uninterrupted
run.  Quarantine is persisted in the journal (or a ``quarantine.json``
sidecar next to a plain artifact store when no ``run_dir`` is used), so
poisoned cells fail fast across process restarts until
:meth:`SweepEngine.clear_quarantine` lifts the embargo.

The process-wide :func:`default_engine` is what
:func:`repro.experiments.methods.build_approximation` routes through, so any
two experiment runners in one process (or two processes sharing a
``REPRO_ARTIFACT_DIR``) never compute the same approximation twice.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.core import engine_config
from repro.core.pwl import PiecewiseLinear
from repro.experiments.artifacts import ArtifactCache, ArtifactStore
from repro.experiments.methods import ApproximationBudget, compute_approximation
from repro.experiments.queue import DONE, DurableQueue
from repro.reliability.errors import JobQuarantinedError, PersistedQuarantineError
from repro.reliability.faults import fault_point
from repro.reliability.retry import RetryPolicy, run_with_retry

# Bump when the artifact layout or the build semantics change incompatibly;
# part of every cache key, so stale on-disk artifacts can never be returned.
# Version 2: the GA scoring engine left ApproximationBudget (it resolves
# through repro.core.engine_config and never changes seeded results), so
# budget payloads — and therefore keys — changed shape.
ARTIFACT_FORMAT_VERSION = 2

# Environment knobs picked up by the process-wide default engine (owned by
# the engine-config layer; re-exported here for backwards compatibility).
ARTIFACT_DIR_ENV = engine_config.ARTIFACT_DIR_ENV
SWEEP_WORKERS_ENV = engine_config.SWEEP_WORKERS_ENV


@dataclasses.dataclass(frozen=True)
class ApproximationJob:
    """One cell of the evaluation grid, ready to be keyed and executed."""

    operator: str
    method: str
    num_entries: int = 8
    budget: ApproximationBudget = ApproximationBudget()

    @property
    def key(self) -> str:
        """Canonical content hash of the job (stable across processes).

        The key covers every field that influences the built artifact —
        including the full budget (seed and GA engine included) and the
        artifact format version — serialised canonically (sorted keys, no
        whitespace) and hashed with SHA-256.
        """
        payload = {
            "format": ARTIFACT_FORMAT_VERSION,
            "operator": self.operator,
            "method": self.method,
            "num_entries": self.num_entries,
            "budget": dataclasses.asdict(self.budget),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def build(self) -> PiecewiseLinear:
        """Execute the cell directly (no cache involvement)."""
        return compute_approximation(
            self.operator, self.method, num_entries=self.num_entries, budget=self.budget
        )


def _job_site(job: ApproximationJob) -> str:
    """The fault-injection / retry-jitter site name for one cell."""
    return "sweep.build:%s:%s" % (job.operator, job.method)


def _job_payload(job: ApproximationJob) -> Dict[str, Any]:
    """JSON-serialisable description a journal can rebuild the job from."""
    return {
        "operator": job.operator,
        "method": job.method,
        "num_entries": job.num_entries,
        "budget": dataclasses.asdict(job.budget),
    }


def _job_from_payload(payload: Dict[str, Any]) -> ApproximationJob:
    """Inverse of :func:`_job_payload` (used by resume and quarantine load)."""
    return ApproximationJob(
        operator=payload["operator"],
        method=payload["method"],
        num_entries=int(payload["num_entries"]),
        budget=ApproximationBudget(**payload["budget"]),
    )


def _execute_job(item: Tuple[str, ApproximationJob]) -> Tuple[str, PiecewiseLinear]:
    """Worker entry point: build one keyed job (picklable, module level)."""
    key, job = item
    fault_point(_job_site(job))
    return key, job.build()


@dataclasses.dataclass
class SweepStats:
    """Work accounting for one ``SweepEngine.run`` (or an engine lifetime).

    ``requested`` counts jobs as submitted, ``deduped`` the duplicates
    collapsed within the batch; ``memory_hits``/``disk_hits``/``builds``
    partition the unique keys by how they were satisfied.
    """

    requested: int = 0
    deduped: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    builds: int = 0
    # Reliability accounting (PR 6): ``retries`` counts extra attempts
    # after a failure, ``redispatches`` duplicate submissions after a
    # straggler timeout, ``failures`` cells that exhausted their policy
    # (including quarantine fast-fails on later runs).
    retries: int = 0
    redispatches: int = 0
    failures: int = 0

    @property
    def cache_hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def add(self, other: "SweepStats") -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name, getattr(self, field.name) + getattr(other, field.name))


@dataclasses.dataclass
class JobFailure:
    """One quarantined cell: which job, what it raised, how hard we tried."""

    key: str
    job: ApproximationJob
    error: BaseException
    attempts: int

    @property
    def error_type(self) -> str:
        return type(self.error).__name__

    def describe(self) -> str:
        return "%s:%s (%s after %d attempt(s): %s)" % (
            self.job.operator, self.job.method, self.error_type, self.attempts, self.error
        )


@dataclasses.dataclass
class SweepResult:
    """Manifest of one fault-tolerant sweep: built cells plus failures.

    A failing cell no longer aborts the batch — it is reported here while
    every healthy cell still completes with cache-parity artifacts.
    """

    results: Dict[str, PiecewiseLinear]
    failures: Dict[str, JobFailure]
    stats: SweepStats

    @property
    def ok(self) -> bool:
        return not self.failures

    def require(self) -> Dict[str, PiecewiseLinear]:
        """The all-or-nothing view: raise the first failure if any."""
        if self.failures:
            raise next(iter(self.failures.values())).error
        return self.results


class SweepEngine:
    """Deduplicating, cache-backed, optionally parallel executor for jobs.

    Parameters
    ----------
    cache:
        The two-tier artifact cache; a fresh memory-only cache by default.
    workers:
        Default process count for :meth:`run`.  ``0`` (or ``1``) executes
        in-process — the serial path used for debugging and coverage; ``>=
        2`` fans the missing cells over a ``ProcessPoolExecutor``.  Each
        cell owns an explicit seed, so the two paths are bit-identical.
        ``None`` re-resolves through :mod:`repro.core.engine_config`
        (context > ``REPRO_SWEEP_WORKERS`` > ``0``) on every :meth:`run`.
    retry:
        Default :class:`~repro.reliability.retry.RetryPolicy` for failing
        cells.  ``None`` resolves through the engine config
        (``REPRO_RETRY_ATTEMPTS`` / ``REPRO_RETRY_BASE_DELAY``).  Retries
        never change results — every cell is seeded and side-effect free,
        so attempt N is bit-identical to attempt 1.
    straggler_timeout:
        Seconds the pool path waits without *any* completion before
        re-dispatching every unresolved cell to another worker (first
        copy to finish wins; copies are bit-identical).  ``None``
        disables straggler handling.
    run_dir:
        Default durable-run directory for :meth:`run_manifest` /
        :meth:`resume`.  ``None`` re-resolves through the engine config
        (context > ``REPRO_SWEEP_RUN_DIR`` > none) on every run; any
        directory makes sweeps journaled and crash-safe (see
        :mod:`repro.experiments.queue`).

    Cells whose retry budget is exhausted are **quarantined** on the
    engine: their :class:`JobFailure` is reported in the
    :class:`SweepResult` manifest and later runs fail them fast (as a
    :class:`~repro.reliability.errors.JobQuarantinedError`) instead of
    re-poisoning a worker.  :meth:`clear_quarantine` lifts the embargo.
    The quarantine set is persisted — in the run journal when a
    ``run_dir`` is active, else in a ``quarantine.json`` sidecar next to
    the disk store when one is attached — so the embargo survives process
    restarts.
    """

    def __init__(
        self,
        cache: Optional[ArtifactCache] = None,
        workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        straggler_timeout: Optional[float] = None,
        run_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.cache = cache if cache is not None else ArtifactCache()
        self.workers = workers
        self.retry = retry
        self.straggler_timeout = straggler_timeout
        self.run_dir = str(run_dir) if run_dir is not None else None
        self.stats = SweepStats()
        self.last_run = SweepStats()
        self.quarantine: Dict[str, JobFailure] = {}
        self._queue: Optional[DurableQueue] = None
        self._load_sidecar_quarantine()

    # -- persisted quarantine --------------------------------------------

    _SIDECAR_NAME = "quarantine.json"

    def _sidecar_path(self) -> Optional[Path]:
        if self.cache.store is None:
            return None
        return self.cache.store.directory / self._SIDECAR_NAME

    def _load_sidecar_quarantine(self) -> None:
        path = self._sidecar_path()
        if path is None or not path.exists():
            return
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return  # unreadable sidecar: start clean rather than crash
        for key, entry in payload.get("quarantine", {}).items():
            if key in self.quarantine:
                continue
            self._adopt_persisted_failure(
                key, entry.get("job", {}), entry.get("error_type", ""),
                entry.get("error", ""), int(entry.get("attempts", 0)),
            )

    def _persist_sidecar_quarantine(self) -> None:
        path = self._sidecar_path()
        if path is None:
            return
        payload = {
            "version": 1,
            "quarantine": {
                key: {
                    "job": _job_payload(failure.job),
                    "error": str(failure.error),
                    "error_type": failure.error_type,
                    "attempts": failure.attempts,
                }
                for key, failure in self.quarantine.items()
            },
        }
        fd, tmp_name = tempfile.mkstemp(
            prefix=".quarantine-", suffix=".json.tmp", dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True, indent=1)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _adopt_persisted_failure(
        self, key: str, payload: Dict[str, Any], error_type: str,
        message: str, attempts: int,
    ) -> None:
        """Rebuild a :class:`JobFailure` from journal/sidecar quarantine state."""
        try:
            job = _job_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return  # record from an incompatible build: skip, don't crash
        error = PersistedQuarantineError(
            "%s: %s" % (error_type or "UnknownError", message)
        )
        self.quarantine[key] = JobFailure(
            key=key, job=job, error=error, attempts=attempts
        )

    # -- durable queue ---------------------------------------------------

    def _open_queue(self, run_dir: str) -> DurableQueue:
        """The journal for ``run_dir`` (cached while the directory is stable).

        Opening a run directory also (1) attaches an artifact store at
        ``run_dir/artifacts`` when the engine's cache has none — resume
        bit-parity requires completed cells to be loadable — and (2)
        merges the journal's persisted quarantine into the engine's
        in-memory set, so poison recorded by a dead coordinator still
        fails fast here.
        """
        if self._queue is not None:
            if str(self._queue.run_dir) == str(run_dir):
                return self._queue
            self._queue.close()
            self._queue = None
        queue = DurableQueue(run_dir)
        if self.cache.store is None:
            self.cache.store = ArtifactStore(Path(run_dir) / "artifacts")
        for key, cell in queue.quarantined().items():
            if key not in self.quarantine:
                self._adopt_persisted_failure(
                    key, cell.payload, cell.error_type, cell.error, cell.attempts
                )
        self._queue = queue
        return queue

    def close(self) -> None:
        """Release the journal handle (the engine stays usable without it)."""
        if self._queue is not None:
            self._queue.close()
            self._queue = None

    def clear_quarantine(self) -> None:
        """Forget every poisoned key (they become eligible to run again).

        The persisted record — journal and/or sidecar — is cleared too,
        so the embargo stays lifted across process restarts.
        """
        self.quarantine.clear()
        if self._queue is not None:
            self._queue.clear_quarantine()
        self._persist_sidecar_quarantine()

    def run(
        self,
        jobs: Iterable[ApproximationJob],
        workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        straggler_timeout: Optional[float] = None,
        run_dir: Optional[Union[str, Path]] = None,
    ) -> Dict[str, PiecewiseLinear]:
        """Execute ``jobs`` and return ``{job.key: PiecewiseLinear}``.

        Duplicate jobs are built once; cached cells are never rebuilt.  The
        result covers every distinct key in ``jobs`` (duplicates collapse
        onto the same entry).  This is the all-or-nothing surface the
        experiment runners need: a cell that still fails after retries
        raises.  Use :meth:`run_manifest` for the fault-tolerant view.
        """
        return self.run_manifest(
            jobs, workers=workers, retry=retry,
            straggler_timeout=straggler_timeout, run_dir=run_dir,
        ).require()

    def resume(
        self,
        run_dir: Optional[Union[str, Path]] = None,
        workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        straggler_timeout: Optional[float] = None,
    ) -> SweepResult:
        """Finish an interrupted durable sweep from its journal.

        Replays ``run_dir``'s journal (torn tail tolerated), rebuilds the
        job list from the journaled payloads, answers completed cells from
        the content-addressed artifact store (zero rebuilds), re-leases
        cells whose coordinator died mid-build, and fails persisted
        quarantine fast.  Because every cell is seeded, the resumed result
        set is bit-identical to an uninterrupted run's.
        """
        resolved = engine_config.resolve_sweep_run_dir(
            str(run_dir) if run_dir is not None else self.run_dir
        )
        if not resolved:
            raise ValueError(
                "resume() needs a run_dir (kwarg, engine attribute, or %s)"
                % engine_config.SWEEP_RUN_DIR_ENV
            )
        queue = self._open_queue(resolved)
        jobs = [
            _job_from_payload(payload)
            for payload in queue.jobs().values()
            if payload
        ]
        return self.run_manifest(
            jobs, workers=workers, retry=retry,
            straggler_timeout=straggler_timeout, run_dir=resolved, resume=True,
        )

    def run_manifest(
        self,
        jobs: Iterable[ApproximationJob],
        workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        straggler_timeout: Optional[float] = None,
        run_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
    ) -> SweepResult:
        """Fault-tolerant execution: failures land in the manifest.

        Every healthy cell completes (retried under the policy, straggler
        re-dispatched on the pool path); each poisoned cell is reported as
        a :class:`JobFailure` and quarantined instead of aborting the
        batch.

        With a ``run_dir`` (kwarg > engine attribute > engine config) the
        sweep is durable: cells are journaled through a
        :class:`~repro.experiments.queue.DurableQueue` (leased with expiry
        + heartbeat while building, marked done once the artifact is
        persisted), so a SIGKILL at any instant is recoverable via
        :meth:`resume`.  ``resume`` is informational here — the journal
        transitions are idempotent either way — and set by
        :meth:`resume` itself.
        """
        if workers is None:
            workers = engine_config.resolve_sweep_workers(self.workers)
        policy = RetryPolicy.resolve(retry if retry is not None else self.retry)
        if straggler_timeout is None:
            straggler_timeout = self.straggler_timeout
        resolved_dir = engine_config.resolve_sweep_run_dir(
            str(run_dir) if run_dir is not None else self.run_dir
        )
        queue = self._open_queue(resolved_dir) if resolved_dir else None
        run_stats = SweepStats()
        memory_hits_before = self.cache.memory_hits
        disk_hits_before = self.cache.disk_hits
        results: Dict[str, PiecewiseLinear] = {}
        failures: Dict[str, JobFailure] = {}
        missing: Dict[str, ApproximationJob] = {}
        for job in jobs:
            run_stats.requested += 1
            key = job.key
            if key in results or key in missing or key in failures:
                run_stats.deduped += 1
                continue
            if queue is not None:
                queue.enqueue(key, _job_payload(job))
            if key in self.quarantine:
                # Fail fast: this key poisoned an earlier run.  Re-wrap so
                # the manifest names the quarantine, keeping the original
                # error as the cause.
                previous = self.quarantine[key]
                error = JobQuarantinedError(
                    "job %s is quarantined: %s" % (key[:16], previous.describe())
                )
                error.__cause__ = previous.error
                failures[key] = JobFailure(key, job, error, previous.attempts)
                run_stats.failures += 1
                continue
            hit = self.cache.load(key)
            if hit is not None:
                results[key] = hit
                if queue is not None:
                    # A journaled cell satisfied from cache is complete —
                    # record it so resume accounting never re-leases it.
                    queue.complete(key)
            else:
                if queue is not None and queue.state(key) == DONE:
                    # The journal says done but the artifact vanished
                    # (store lost / scrub quarantined it): self-heal by
                    # making the cell buildable again.
                    queue.reopen(key)
                missing[key] = job
        # Memory/disk split of the hits comes from the cache's counters.
        run_stats.memory_hits = self.cache.memory_hits - memory_hits_before
        run_stats.disk_hits = self.cache.disk_hits - disk_hits_before

        if missing:
            # Both paths persist each artifact and journal its completion
            # *as it lands* — a crash mid-batch must not orphan finished
            # work — so the loop below only does the result bookkeeping.
            if workers and workers > 1 and len(missing) > 1:
                built = self._run_pool(
                    missing, workers, policy, straggler_timeout, run_stats,
                    failures, queue,
                )
            else:
                built = self._run_serial(
                    missing, policy, run_stats, failures, queue
                )
            for key, pwl in built:
                results[key] = pwl
                run_stats.builds += 1

        self.last_run = run_stats
        self.stats.add(run_stats)
        return SweepResult(results=results, failures=failures, stats=run_stats)

    def _quarantine(
        self,
        failures: Dict[str, JobFailure],
        run_stats: SweepStats,
        key: str,
        job: ApproximationJob,
        error: BaseException,
        attempts: int,
        queue: Optional[DurableQueue] = None,
    ) -> None:
        record = JobFailure(key=key, job=job, error=error, attempts=attempts)
        failures[key] = record
        self.quarantine[key] = record
        run_stats.failures += 1
        # Persist the embargo: journal when this run is durable, sidecar
        # next to the disk store otherwise.
        if queue is not None:
            queue.quarantine(key, error, attempts)
        else:
            self._persist_sidecar_quarantine()

    def _commit(
        self,
        key: str,
        pwl: PiecewiseLinear,
        queue: Optional[DurableQueue],
    ) -> None:
        """Persist one built cell, *then* journal its completion.

        The order is the crash-safety contract: an artifact may exist
        without a ``done`` record (the resume intake turns that into a
        cache-hit completion at zero cost), but a ``done`` record must
        never exist without its artifact.
        """
        self.cache.put(key, pwl)
        if queue is not None:
            queue.complete(key)

    def _run_serial(
        self,
        missing: Dict[str, ApproximationJob],
        policy: RetryPolicy,
        run_stats: SweepStats,
        failures: Dict[str, JobFailure],
        queue: Optional[DurableQueue] = None,
    ) -> List[Tuple[str, PiecewiseLinear]]:
        built: List[Tuple[str, PiecewiseLinear]] = []
        for key, job in missing.items():
            if queue is not None:
                queue.lease(key, worker="serial")
            outcome = run_with_retry(
                lambda item=(key, job): _execute_job(item)[1],
                policy=policy,
                site=_job_site(job),
            )
            run_stats.retries += outcome.retries
            if outcome.ok:
                self._commit(key, outcome.value, queue)
                built.append((key, outcome.value))
            else:
                self._quarantine(
                    failures, run_stats, key, job, outcome.error,
                    outcome.attempts, queue,
                )
        return built

    def _run_pool(
        self,
        missing: Dict[str, ApproximationJob],
        workers: int,
        policy: RetryPolicy,
        straggler_timeout: Optional[float],
        run_stats: SweepStats,
        failures: Dict[str, JobFailure],
        queue: Optional[DurableQueue] = None,
    ) -> List[Tuple[str, PiecewiseLinear]]:
        """Fan ``missing`` over a process pool with retry + re-dispatch.

        Each cell has a dispatch budget of ``policy.max_attempts`` shared
        between failure retries and straggler duplicates.  When a wait
        window (``straggler_timeout``) passes with no completion at all,
        every unresolved cell with budget left is duplicated onto another
        worker — results are seeded, so whichever copy finishes first is
        the answer and late copies are ignored.  A cell whose budget is
        exhausted *and* whose in-flight copies outlive one further grace
        window is abandoned as a straggler failure; the pool is then shut
        down without waiting so a wedged worker cannot hang the sweep.

        On a durable run the coordinator journals on the workers' behalf
        (the journal is single-writer): a ``lease`` record per dispatch, a
        heartbeat ``renew`` for every in-flight cell at most every
        ``lease_s / 3``, ``done`` once the artifact is persisted.  The
        heartbeat bounds the wait window, so long builds never let a live
        coordinator's leases lapse — only a dead coordinator's do.
        """
        built: List[Tuple[str, PiecewiseLinear]] = []
        unresolved = dict(missing)
        dispatched: Dict[str, int] = {}
        grace_strikes: Dict[str, int] = {}
        inflight: Dict[object, str] = {}
        abandoned = False
        pool = ProcessPoolExecutor(max_workers=workers)

        def dispatch(key: str, job: ApproximationJob) -> None:
            if queue is not None:
                queue.lease(key, worker="pool")
            inflight[pool.submit(_execute_job, (key, job))] = key
            dispatched[key] = dispatched.get(key, 0) + 1

        try:
            for key, job in missing.items():
                dispatch(key, job)
            window_start = time.monotonic()
            while unresolved and inflight:
                timeouts = []
                if straggler_timeout is not None:
                    elapsed = time.monotonic() - window_start
                    timeouts.append(max(0.0, straggler_timeout - elapsed))
                if queue is not None:
                    timeouts.append(queue.lease_s / 3.0)
                done, _ = wait(
                    set(inflight), timeout=min(timeouts) if timeouts else None,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    if queue is not None:
                        for key in set(inflight.values()):
                            queue.renew(key)
                    straggled = (
                        straggler_timeout is not None
                        and time.monotonic() - window_start >= straggler_timeout
                    )
                    if not straggled:
                        continue  # just a heartbeat wake-up, no verdict yet
                    window_start = time.monotonic()
                    # Straggler window expired with zero progress: duplicate
                    # what budget allows, strike out what has none left.
                    for key in list(unresolved):
                        job = unresolved[key]
                        if dispatched[key] < policy.max_attempts:
                            dispatch(key, job)
                            run_stats.redispatches += 1
                        else:
                            grace_strikes[key] = grace_strikes.get(key, 0) + 1
                            if grace_strikes[key] >= 2:
                                error: BaseException = TimeoutError(
                                    "cell %s:%s straggled past %d dispatch(es) x %.3gs"
                                    % (job.operator, job.method, dispatched[key],
                                       straggler_timeout or 0.0)
                                )
                                self._quarantine(
                                    failures, run_stats, key, job, error,
                                    dispatched[key], queue,
                                )
                                del unresolved[key]
                                abandoned = True
                    continue
                window_start = time.monotonic()
                for future in done:
                    key = inflight.pop(future)
                    if key not in unresolved:
                        continue  # a duplicate already answered (or failed) it
                    job = unresolved[key]
                    error = future.exception()
                    if error is None:
                        _, pwl = future.result()
                        self._commit(key, pwl, queue)
                        built.append((key, pwl))
                        del unresolved[key]
                        continue
                    if (
                        dispatched[key] < policy.max_attempts
                        and policy.is_retryable(error)
                    ):
                        if queue is not None:
                            queue.record_failure(key, error, dispatched[key])
                        time.sleep(policy.backoff(dispatched[key], site=_job_site(job)))
                        dispatch(key, job)
                        run_stats.retries += 1
                    else:
                        self._quarantine(
                            failures, run_stats, key, job, error,
                            dispatched[key], queue,
                        )
                        del unresolved[key]
        finally:
            # A wedged straggler must not hang the whole sweep on shutdown;
            # its worker process is reaped at interpreter exit instead.
            pool.shutdown(wait=not abandoned)
        return built

    def build(self, job: ApproximationJob, workers: Optional[int] = None) -> PiecewiseLinear:
        """Run a single job through the cache and return its artifact."""
        return self.run([job], workers=workers)[job.key]


_DEFAULT_ENGINE: Optional[SweepEngine] = None
# The artifact directory the default engine was built against; when the
# resolved configuration moves (a later ``engine_config.use(artifact_dir=...)``
# block or env change), the default engine is rebuilt instead of silently
# keeping the stale store.
_DEFAULT_ENGINE_DIR: Optional[str] = None
_DEFAULT_ENGINE_PINNED = False


def default_engine() -> SweepEngine:
    """The process-wide engine behind ``build_approximation``.

    Created lazily.  The artifact directory re-resolves through
    :mod:`repro.core.engine_config` (context > ``REPRO_ARTIFACT_DIR`` >
    none) on every call — if it changed since the engine was built, a new
    engine (with a store at the new directory and a fresh in-process
    cache) replaces the old one, so a ``use(artifact_dir=...)`` block is
    honoured even after earlier builds.  The worker count is left
    unresolved so every :meth:`SweepEngine.run` re-reads the active
    configuration.  An engine installed via :func:`set_default_engine` is
    pinned and never rebuilt.
    """
    global _DEFAULT_ENGINE, _DEFAULT_ENGINE_DIR
    directory = engine_config.resolve_artifact_dir()
    stale = (
        _DEFAULT_ENGINE is not None
        and not _DEFAULT_ENGINE_PINNED
        and directory != _DEFAULT_ENGINE_DIR
    )
    if _DEFAULT_ENGINE is None or stale:
        store = ArtifactStore(directory) if directory else None
        _DEFAULT_ENGINE = SweepEngine(cache=ArtifactCache(store=store))
        _DEFAULT_ENGINE_DIR = directory
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[SweepEngine]) -> None:
    """Replace (or, with ``None``, reset) the process-wide default engine.

    An explicitly installed engine is pinned: it is returned as-is by
    :func:`default_engine` regardless of later artifact-dir changes.
    """
    global _DEFAULT_ENGINE, _DEFAULT_ENGINE_DIR, _DEFAULT_ENGINE_PINNED
    _DEFAULT_ENGINE = engine
    _DEFAULT_ENGINE_DIR = None
    _DEFAULT_ENGINE_PINNED = engine is not None


def approximation_jobs(
    operators: Iterable[str],
    methods: Iterable[str],
    num_entries: int = 8,
    budget: ApproximationBudget = ApproximationBudget(),
) -> List[ApproximationJob]:
    """The job list behind ``build_approximations`` (operator-major order)."""
    operators, methods = tuple(operators), tuple(methods)
    return [
        ApproximationJob(operator=operator, method=method,
                         num_entries=num_entries, budget=budget)
        for operator in operators
        for method in methods
    ]
