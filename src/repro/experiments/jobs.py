"""Declarative experiment cells and the parallel sweep engine.

The paper's evaluation is a grid of independent cells: every table and
figure is assembled from ``(operator, method, num_entries, budget)``
approximations, each of which owns an explicit seed.  This module turns a
cell into a declarative :class:`ApproximationJob` with a canonical,
content-addressed cache key, and executes batches of jobs through
:class:`SweepEngine`:

* duplicate jobs inside a batch are collapsed before any work happens;
* previously built cells are answered from the two-tier
  :class:`~repro.experiments.artifacts.ArtifactCache` (in-process dict plus
  optional on-disk ``.npz`` store);
* the remaining cells run either serially (``workers=0``, the debugging and
  coverage path) or fanned out over a ``ProcessPoolExecutor``.

Because each cell is seeded and side-effect free, the parallel and serial
paths are bit-identical by construction — the tests assert it, the
benchmarks gate on it.

The process-wide :func:`default_engine` is what
:func:`repro.experiments.methods.build_approximation` routes through, so any
two experiment runners in one process (or two processes sharing a
``REPRO_ARTIFACT_DIR``) never compute the same approximation twice.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core import engine_config
from repro.core.pwl import PiecewiseLinear
from repro.experiments.artifacts import ArtifactCache, ArtifactStore
from repro.experiments.methods import ApproximationBudget, compute_approximation

# Bump when the artifact layout or the build semantics change incompatibly;
# part of every cache key, so stale on-disk artifacts can never be returned.
# Version 2: the GA scoring engine left ApproximationBudget (it resolves
# through repro.core.engine_config and never changes seeded results), so
# budget payloads — and therefore keys — changed shape.
ARTIFACT_FORMAT_VERSION = 2

# Environment knobs picked up by the process-wide default engine (owned by
# the engine-config layer; re-exported here for backwards compatibility).
ARTIFACT_DIR_ENV = engine_config.ARTIFACT_DIR_ENV
SWEEP_WORKERS_ENV = engine_config.SWEEP_WORKERS_ENV


@dataclasses.dataclass(frozen=True)
class ApproximationJob:
    """One cell of the evaluation grid, ready to be keyed and executed."""

    operator: str
    method: str
    num_entries: int = 8
    budget: ApproximationBudget = ApproximationBudget()

    @property
    def key(self) -> str:
        """Canonical content hash of the job (stable across processes).

        The key covers every field that influences the built artifact —
        including the full budget (seed and GA engine included) and the
        artifact format version — serialised canonically (sorted keys, no
        whitespace) and hashed with SHA-256.
        """
        payload = {
            "format": ARTIFACT_FORMAT_VERSION,
            "operator": self.operator,
            "method": self.method,
            "num_entries": self.num_entries,
            "budget": dataclasses.asdict(self.budget),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def build(self) -> PiecewiseLinear:
        """Execute the cell directly (no cache involvement)."""
        return compute_approximation(
            self.operator, self.method, num_entries=self.num_entries, budget=self.budget
        )


def _execute_job(item: Tuple[str, ApproximationJob]) -> Tuple[str, PiecewiseLinear]:
    """Worker entry point: build one keyed job (picklable, module level)."""
    key, job = item
    return key, job.build()


@dataclasses.dataclass
class SweepStats:
    """Work accounting for one ``SweepEngine.run`` (or an engine lifetime).

    ``requested`` counts jobs as submitted, ``deduped`` the duplicates
    collapsed within the batch; ``memory_hits``/``disk_hits``/``builds``
    partition the unique keys by how they were satisfied.
    """

    requested: int = 0
    deduped: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    builds: int = 0

    @property
    def cache_hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def add(self, other: "SweepStats") -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name, getattr(self, field.name) + getattr(other, field.name))


class SweepEngine:
    """Deduplicating, cache-backed, optionally parallel executor for jobs.

    Parameters
    ----------
    cache:
        The two-tier artifact cache; a fresh memory-only cache by default.
    workers:
        Default process count for :meth:`run`.  ``0`` (or ``1``) executes
        in-process — the serial path used for debugging and coverage; ``>=
        2`` fans the missing cells over a ``ProcessPoolExecutor``.  Each
        cell owns an explicit seed, so the two paths are bit-identical.
        ``None`` re-resolves through :mod:`repro.core.engine_config`
        (context > ``REPRO_SWEEP_WORKERS`` > ``0``) on every :meth:`run`.
    """

    def __init__(
        self, cache: Optional[ArtifactCache] = None, workers: Optional[int] = None
    ) -> None:
        self.cache = cache if cache is not None else ArtifactCache()
        self.workers = workers
        self.stats = SweepStats()
        self.last_run = SweepStats()

    def run(
        self,
        jobs: Iterable[ApproximationJob],
        workers: Optional[int] = None,
    ) -> Dict[str, PiecewiseLinear]:
        """Execute ``jobs`` and return ``{job.key: PiecewiseLinear}``.

        Duplicate jobs are built once; cached cells are never rebuilt.  The
        result covers every distinct key in ``jobs`` (duplicates collapse
        onto the same entry).
        """
        if workers is None:
            workers = engine_config.resolve_sweep_workers(self.workers)
        run_stats = SweepStats()
        memory_hits_before = self.cache.memory_hits
        disk_hits_before = self.cache.disk_hits
        results: Dict[str, PiecewiseLinear] = {}
        missing: Dict[str, ApproximationJob] = {}
        for job in jobs:
            run_stats.requested += 1
            key = job.key
            if key in results or key in missing:
                run_stats.deduped += 1
                continue
            hit = self.cache.load(key)
            if hit is not None:
                results[key] = hit
            else:
                missing[key] = job
        # Memory/disk split of the hits comes from the cache's counters.
        run_stats.memory_hits = self.cache.memory_hits - memory_hits_before
        run_stats.disk_hits = self.cache.disk_hits - disk_hits_before

        if missing:
            run_stats.builds = len(missing)
            if workers and workers > 1 and len(missing) > 1:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    built = list(pool.map(_execute_job, missing.items()))
            else:
                built = [_execute_job(item) for item in missing.items()]
            for key, pwl in built:
                self.cache.put(key, pwl)
                results[key] = pwl

        self.last_run = run_stats
        self.stats.add(run_stats)
        return results

    def build(self, job: ApproximationJob, workers: Optional[int] = None) -> PiecewiseLinear:
        """Run a single job through the cache and return its artifact."""
        return self.run([job], workers=workers)[job.key]


_DEFAULT_ENGINE: Optional[SweepEngine] = None
# The artifact directory the default engine was built against; when the
# resolved configuration moves (a later ``engine_config.use(artifact_dir=...)``
# block or env change), the default engine is rebuilt instead of silently
# keeping the stale store.
_DEFAULT_ENGINE_DIR: Optional[str] = None
_DEFAULT_ENGINE_PINNED = False


def default_engine() -> SweepEngine:
    """The process-wide engine behind ``build_approximation``.

    Created lazily.  The artifact directory re-resolves through
    :mod:`repro.core.engine_config` (context > ``REPRO_ARTIFACT_DIR`` >
    none) on every call — if it changed since the engine was built, a new
    engine (with a store at the new directory and a fresh in-process
    cache) replaces the old one, so a ``use(artifact_dir=...)`` block is
    honoured even after earlier builds.  The worker count is left
    unresolved so every :meth:`SweepEngine.run` re-reads the active
    configuration.  An engine installed via :func:`set_default_engine` is
    pinned and never rebuilt.
    """
    global _DEFAULT_ENGINE, _DEFAULT_ENGINE_DIR
    directory = engine_config.resolve_artifact_dir()
    stale = (
        _DEFAULT_ENGINE is not None
        and not _DEFAULT_ENGINE_PINNED
        and directory != _DEFAULT_ENGINE_DIR
    )
    if _DEFAULT_ENGINE is None or stale:
        store = ArtifactStore(directory) if directory else None
        _DEFAULT_ENGINE = SweepEngine(cache=ArtifactCache(store=store))
        _DEFAULT_ENGINE_DIR = directory
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[SweepEngine]) -> None:
    """Replace (or, with ``None``, reset) the process-wide default engine.

    An explicitly installed engine is pinned: it is returned as-is by
    :func:`default_engine` regardless of later artifact-dir changes.
    """
    global _DEFAULT_ENGINE, _DEFAULT_ENGINE_DIR, _DEFAULT_ENGINE_PINNED
    _DEFAULT_ENGINE = engine
    _DEFAULT_ENGINE_DIR = None
    _DEFAULT_ENGINE_PINNED = engine is not None


def approximation_jobs(
    operators: Iterable[str],
    methods: Iterable[str],
    num_entries: int = 8,
    budget: ApproximationBudget = ApproximationBudget(),
) -> List[ApproximationJob]:
    """The job list behind ``build_approximations`` (operator-major order)."""
    operators, methods = tuple(operators), tuple(methods)
    return [
        ApproximationJob(operator=operator, method=method,
                         num_entries=num_entries, budget=budget)
        for operator in operators
        for method in methods
    ]
