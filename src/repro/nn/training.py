"""Training and fine-tuning loops for the segmentation experiments.

Checkpointing (:func:`save_checkpoint` / :func:`load_checkpoint`) makes a
fine-tune crash-resumable with **bit-exact** semantics: a checkpoint
captures the model parameters, the optimizer's moment buffers, the LR
schedule step and the trainer's RNG state, so a run killed after epoch k
and resumed replays epochs k+1..N to exactly the weights an
uninterrupted run produces (pinned by the resume-parity test).  Writes
are atomic (temp file + ``os.replace``, the artifact-store idiom) and
carry a SHA-256 content checksum verified on load — a torn or perturbed
file raises :class:`~repro.reliability.errors.CheckpointCorruptError`
instead of silently resuming from garbage.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.backend import xp as np

from repro.nn import functional as F
from repro.nn.metrics import mean_iou, pixel_accuracy
from repro.nn.module import Module
from repro.nn.optim import Adam, CosineSchedule, Optimizer
from repro.nn.quantization import quantize_linears_in_place
from repro.nn.tensor import Tensor, no_grad
from repro.reliability.errors import CheckpointCorruptError
from repro.reliability.faults import corrupt_file, fault_point

CHECKPOINT_VERSION = 1

# Per-parameter optimizer buffer groups serialised as arrays (which of
# them exist depends on the optimizer class).
_OPTIM_BUFFER_GROUPS = ("velocity", "m", "v")


@dataclasses.dataclass
class TrainingConfig:
    """Hyper-parameters of a (fine-)tuning run."""

    epochs: int = 5
    batch_size: int = 8
    learning_rate: float = 2e-3
    weight_decay: float = 0.0
    seed: int = 0
    log_every: int = 0  # 0 disables progress printing


@dataclasses.dataclass
class TrainingResult:
    """Summary of one training run."""

    losses: List[float]
    train_miou: float
    val_miou: float
    val_pixel_accuracy: float
    epochs: int
    duration_seconds: float


def _checkpoint_digest(arrays: Dict[str, Any], meta_json: str) -> bytes:
    """SHA-256 over the meta record and every array (sorted, shape-tagged)."""
    digest = hashlib.sha256()
    digest.update(meta_json.encode("utf-8"))
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("ascii"))
        digest.update(repr(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.digest()


def _fsync_directory(directory: Path) -> None:
    """Persist a directory entry (the renamed checkpoint) across power loss.

    Best-effort: platforms that cannot ``fsync`` a directory fd (or open
    one at all) keep the process-crash atomicity guarantee and skip the
    power-failure one.
    """
    try:
        dir_fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def save_checkpoint(
    path: Union[str, Path],
    model: Module,
    optimizer: Optional[Optimizer] = None,
    schedule: Optional[CosineSchedule] = None,
    rng: Optional[Any] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Atomically write one resumable training checkpoint.

    One ``.npz`` holds the model ``state_dict`` (``model/<name>`` keys),
    the optimizer's buffers (``optim/<group>/<i>``), and a JSON meta
    record (scalars: optimizer lr/step, schedule step, the numpy
    Generator state, caller ``extra``).  The whole payload is covered by
    a SHA-256 checksum.  The write goes to a temp file in the target
    directory, is ``fsync``'d, and then renamed into place (with the
    directory entry synced too), so a crash — or a power loss — mid-save
    leaves the previous checkpoint intact, never a torn file.
    """
    fault_point("trainer.checkpoint")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: Dict[str, Any] = {}
    for name, value in model.state_dict().items():
        arrays["model/%s" % name] = np.asarray(value)
    meta: Dict[str, Any] = {"version": CHECKPOINT_VERSION, "extra": extra or {}}
    if optimizer is not None:
        state = optimizer.state_dict()
        optim_meta: Dict[str, Any] = {
            "type": type(optimizer).__name__,
            "lr": state["lr"],
        }
        if "step" in state:
            optim_meta["step"] = state["step"]
        meta["optimizer"] = optim_meta
        for group in _OPTIM_BUFFER_GROUPS:
            for index, buffer in enumerate(state.get(group, ())):
                arrays["optim/%s/%d" % (group, index)] = np.asarray(buffer)
    if schedule is not None:
        meta["schedule"] = schedule.state_dict()
    if rng is not None:
        meta["rng"] = rng.bit_generator.state
    meta_json = json.dumps(meta, sort_keys=True)
    checksum = np.frombuffer(_checkpoint_digest(arrays, meta_json), dtype=np.uint8)
    meta_array = np.frombuffer(meta_json.encode("utf-8"), dtype=np.uint8)
    fd, tmp_name = tempfile.mkstemp(
        prefix=".%s-" % path.stem, suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, __meta__=meta_array, __checksum__=checksum, **arrays)
            # The rename must not be reordered ahead of the data hitting
            # disk, or a power loss could leave the *new* name pointing
            # at torn bytes after the old checkpoint is already gone.
            handle.flush()
            os.fsync(handle.fileno())
        # Chaos hook: a torn write that still reached the final name —
        # load_checkpoint must refuse it, never resume from garbage.
        corrupt_file("trainer.checkpoint", tmp_name)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)
    return path


def load_checkpoint(
    path: Union[str, Path],
    model: Optional[Module] = None,
    optimizer: Optional[Optimizer] = None,
    schedule: Optional[CosineSchedule] = None,
    rng: Optional[Any] = None,
) -> Dict[str, Any]:
    """Verify and restore a checkpoint written by :func:`save_checkpoint`.

    The SHA-256 content checksum is verified *before* anything is
    restored; an unreadable, truncated or bit-perturbed file raises
    :class:`CheckpointCorruptError` with the model/optimizer untouched.
    Each of ``model`` / ``optimizer`` / ``schedule`` / ``rng`` is
    restored only when passed.  Returns the meta record (``extra`` holds
    whatever the saver stored — the trainer keeps epoch + losses there).
    """
    path = Path(path)
    fault_point("trainer.checkpoint.load")
    try:
        with np.load(path, allow_pickle=False) as data:
            names = set(data.files)
            if "__meta__" not in names or "__checksum__" not in names:
                raise CheckpointCorruptError(
                    "checkpoint %s is missing its meta/checksum records" % path
                )
            meta_json = np.asarray(data["__meta__"]).tobytes().decode("utf-8")
            checksum = np.asarray(data["__checksum__"]).tobytes()
            arrays = {
                name: np.asarray(data[name])
                for name in names
                if name not in ("__meta__", "__checksum__")
            }
    except CheckpointCorruptError:
        raise
    except Exception as error:  # torn zip, bad header, foreign file, ...
        raise CheckpointCorruptError(
            "checkpoint %s is unreadable: %s: %s"
            % (path, type(error).__name__, error)
        ) from error
    if checksum != _checkpoint_digest(arrays, meta_json):
        raise CheckpointCorruptError(
            "checkpoint %s failed its SHA-256 content check" % path
        )
    meta = json.loads(meta_json)
    if model is not None:
        state = {
            name[len("model/"):]: array
            for name, array in arrays.items()
            if name.startswith("model/")
        }
        model.load_state_dict(state, strict=True)
    if optimizer is not None:
        optim_meta = meta.get("optimizer")
        if optim_meta is None:
            raise CheckpointCorruptError(
                "checkpoint %s carries no optimizer state" % path
            )
        if optim_meta["type"] != type(optimizer).__name__:
            raise ValueError(
                "checkpoint optimizer is %s, cannot restore into %s"
                % (optim_meta["type"], type(optimizer).__name__)
            )
        optim_state: Dict[str, Any] = {"lr": optim_meta["lr"]}
        if "step" in optim_meta:
            optim_state["step"] = optim_meta["step"]
        for group in _OPTIM_BUFFER_GROUPS:
            prefix = "optim/%s/" % group
            entries = sorted(
                (name for name in arrays if name.startswith(prefix)),
                key=lambda name: int(name.rsplit("/", 1)[1]),
            )
            if entries:
                optim_state[group] = [arrays[name] for name in entries]
        optimizer.load_state_dict(optim_state)
    if schedule is not None and "schedule" in meta:
        schedule.load_state_dict(meta["schedule"])
    if rng is not None and "rng" in meta:
        rng.bit_generator.state = meta["rng"]
    return meta


class Trainer:
    """Mini-batch trainer for the segmentation models.

    The trainer consumes numpy arrays: ``images`` shaped ``(N, H, W, C)`` and
    integer ``labels`` shaped ``(N, H, W)``.
    """

    def __init__(self, model: Module, config: TrainingConfig = TrainingConfig()) -> None:
        self.model = model
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._compiled_model = None  # lazy fallback for models without .compiled()

    def _batches(self, images: np.ndarray, labels: np.ndarray):
        count = images.shape[0]
        order = self._rng.permutation(count)
        batch = self.config.batch_size
        for start in range(0, count, batch):
            idx = order[start:start + batch]
            yield images[idx], labels[idx]

    def evaluate(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        num_classes: int,
        engine: Optional[str] = None,
    ) -> Tuple[float, float]:
        """Return (mIoU, pixel accuracy) on a dataset.

        The model's train/eval mode is restored afterwards, so evaluating an
        inference-mode model does not silently flip it back to training.

        ``engine`` selects the no-grad inference path (``"compiled"`` |
        ``"eager"``), resolving through :mod:`repro.core.engine_config`
        (kwarg > context > ``REPRO_INFER_ENGINE`` > ``"eager"``).  The
        compiled path traces once per chunk shape (two specialisations for
        a dataset whose size is not a batch multiple) and amortises the
        plan over every batch of the evaluation — and across evaluate()
        calls, re-tracing only when parameters were actually rebound
        (CompiledModel's staleness detection); predictions are
        bit-identical either way.
        """
        from repro.core.engine_config import resolve_infer_engine

        compiled = None
        if resolve_infer_engine(engine) == "compiled":
            if hasattr(self.model, "compiled"):
                compiled = self.model.compiled()
            else:
                from repro.graph.executor import CompiledModel

                if self._compiled_model is None or self._compiled_model.module is not self.model:
                    self._compiled_model = CompiledModel(self.model)
                compiled = self._compiled_model
        was_training = self.model.training
        self.model.eval()
        predictions = []
        batch = self.config.batch_size
        try:
            with no_grad():
                for start in range(0, images.shape[0], batch):
                    chunk = images[start:start + batch]
                    if compiled is not None:
                        predictions.append(compiled.predict(chunk))
                        continue
                    logits = self.model(Tensor(chunk))
                    predictions.append(np.argmax(logits.data, axis=-1))
        finally:
            self.model.train(was_training)
        predicted = np.concatenate(predictions, axis=0)
        return (
            mean_iou(predicted, labels, num_classes),
            pixel_accuracy(predicted, labels),
        )

    def fit(
        self,
        train_images: np.ndarray,
        train_labels: np.ndarray,
        val_images: Optional[np.ndarray] = None,
        val_labels: Optional[np.ndarray] = None,
        num_classes: Optional[int] = None,
        optimizer: Optional[Optimizer] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
        resume: bool = False,
        train_engine: Optional[str] = None,
    ) -> TrainingResult:
        """Train the model and evaluate on the validation split.

        With ``checkpoint_path`` set, a checkpoint is written atomically
        every ``checkpoint_every`` epochs (and after the last).  With
        ``resume=True`` and an existing checkpoint, training restores
        model/optimizer/schedule/RNG from it and continues at the next
        epoch — bit-exact to a run that was never interrupted, because
        the batch-shuffling RNG resumes mid-stream too.  A missing file
        starts from scratch; a corrupt one raises
        :class:`CheckpointCorruptError` rather than training on garbage.

        ``train_engine`` selects the per-step training path (``"eager"``
        | ``"compiled"``), resolving through
        :mod:`repro.core.engine_config` (kwarg > context >
        ``REPRO_TRAIN_ENGINE`` > ``"eager"``).  The compiled engine traces
        the whole step — forward, backward and optimizer update — once per
        batch shape and replays the optimised static plan every subsequent
        step (:class:`repro.graph.executor.CompiledTrainStep`).  Losses,
        final weights, optimizer buffers and checkpoints are bit-identical
        across engines; only speed differs.
        """
        started = time.time()
        config = self.config
        if num_classes is None:
            num_classes = int(train_labels.max()) + 1
        if resume and checkpoint_path is None:
            raise ValueError("resume=True requires checkpoint_path")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1, got %d" % checkpoint_every)
        optimizer = optimizer or Adam(
            self.model.parameters(), lr=config.learning_rate, weight_decay=config.weight_decay
        )
        steps_per_epoch = max(1, int(np.ceil(train_images.shape[0] / config.batch_size)))
        schedule = CosineSchedule(optimizer, total_steps=config.epochs * steps_per_epoch)

        losses: List[float] = []
        start_epoch = 0
        if resume and Path(checkpoint_path).exists():
            meta = load_checkpoint(
                checkpoint_path,
                model=self.model,
                optimizer=optimizer,
                schedule=schedule,
                rng=self._rng,
            )
            extra = meta.get("extra", {})
            start_epoch = int(extra.get("epoch", 0))
            losses = [float(value) for value in extra.get("losses", [])]
        from repro.core.engine_config import resolve_train_engine

        compiled_step = None
        if resolve_train_engine(train_engine) == "compiled":
            from repro.graph.executor import CompiledTrainStep

            # Built after any resume restore so the first trace binds the
            # restored parameter/optimizer arrays, not the initial ones.
            compiled_step = CompiledTrainStep(
                self.model, optimizer, num_classes, schedule=schedule
            )
        self.model.train()
        for epoch in range(start_epoch, config.epochs):
            for images, labels in self._batches(train_images, train_labels):
                if compiled_step is not None:
                    losses.append(compiled_step.step(images, labels))
                    continue
                logits = self.model(Tensor(images))
                loss = F.cross_entropy(logits, labels)
                optimizer.zero_grad()
                loss.backward()
                # backward() (retain_graph defaults to False) must have
                # released the tape here; a retained graph would pin every
                # intermediate activation of the run in memory.
                if loss._backward is not None or loss._parents:
                    raise RuntimeError(
                        "training step leaked its autograd tape: backward() "
                        "left the loss graph retained"
                    )
                optimizer.step()
                schedule.step()
                losses.append(loss.item())
            if config.log_every and (epoch + 1) % config.log_every == 0:
                print("epoch %d/%d loss %.4f" % (epoch + 1, config.epochs, losses[-1]))
            if checkpoint_path is not None and (
                (epoch + 1) % checkpoint_every == 0 or epoch + 1 == config.epochs
            ):
                save_checkpoint(
                    checkpoint_path,
                    self.model,
                    optimizer=optimizer,
                    schedule=schedule,
                    rng=self._rng,
                    extra={"epoch": epoch + 1, "losses": losses},
                )

        train_miou, _ = self.evaluate(train_images, train_labels, num_classes)
        if val_images is not None and val_labels is not None:
            val_miou, val_acc = self.evaluate(val_images, val_labels, num_classes)
        else:
            val_miou, val_acc = train_miou, float("nan")
        return TrainingResult(
            losses=losses,
            train_miou=train_miou,
            val_miou=val_miou,
            val_pixel_accuracy=val_acc,
            epochs=config.epochs,
            duration_seconds=time.time() - started,
        )


def prepare_quantized_model(model: Module, bits: int = 8) -> int:
    """Apply INT8 LSQ quantization to every Linear layer of ``model``.

    Returns the number of layers quantized.  The non-linear operator inputs
    are quantized separately by the operator suite the model was built with.
    """
    return quantize_linears_in_place(model, bits=bits)


def transfer_weights(source: Module, target: Module) -> int:
    """Copy parameters from ``source`` into ``target`` by dotted name.

    Only parameters whose names and shapes match are copied (quantizer
    scales and pwl-specific parameters are left at their initial values).
    Returns the number of parameters copied.
    """
    source_state = source.state_dict()
    copied = 0
    for name, param in target.named_parameters():
        # Quantized models wrap Linear layers as `<name>.inner.weight`; make
        # both directions line up by also trying the un-wrapped name.
        candidates = [name, name.replace(".inner.", ".")]
        for candidate in candidates:
            if candidate in source_state and source_state[candidate].shape == param.data.shape:
                param.data = source_state[candidate].copy()
                copied += 1
                break
    return copied
