"""Training and fine-tuning loops for the segmentation experiments."""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Tuple

from repro.backend import xp as np

from repro.nn import functional as F
from repro.nn.metrics import mean_iou, pixel_accuracy
from repro.nn.module import Module
from repro.nn.optim import Adam, CosineSchedule, Optimizer
from repro.nn.quantization import quantize_linears_in_place
from repro.nn.tensor import Tensor, no_grad


@dataclasses.dataclass
class TrainingConfig:
    """Hyper-parameters of a (fine-)tuning run."""

    epochs: int = 5
    batch_size: int = 8
    learning_rate: float = 2e-3
    weight_decay: float = 0.0
    seed: int = 0
    log_every: int = 0  # 0 disables progress printing


@dataclasses.dataclass
class TrainingResult:
    """Summary of one training run."""

    losses: List[float]
    train_miou: float
    val_miou: float
    val_pixel_accuracy: float
    epochs: int
    duration_seconds: float


class Trainer:
    """Mini-batch trainer for the segmentation models.

    The trainer consumes numpy arrays: ``images`` shaped ``(N, H, W, C)`` and
    integer ``labels`` shaped ``(N, H, W)``.
    """

    def __init__(self, model: Module, config: TrainingConfig = TrainingConfig()) -> None:
        self.model = model
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._compiled_model = None  # lazy fallback for models without .compiled()

    def _batches(self, images: np.ndarray, labels: np.ndarray):
        count = images.shape[0]
        order = self._rng.permutation(count)
        batch = self.config.batch_size
        for start in range(0, count, batch):
            idx = order[start:start + batch]
            yield images[idx], labels[idx]

    def evaluate(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        num_classes: int,
        engine: Optional[str] = None,
    ) -> Tuple[float, float]:
        """Return (mIoU, pixel accuracy) on a dataset.

        The model's train/eval mode is restored afterwards, so evaluating an
        inference-mode model does not silently flip it back to training.

        ``engine`` selects the no-grad inference path (``"compiled"`` |
        ``"eager"``), resolving through :mod:`repro.core.engine_config`
        (kwarg > context > ``REPRO_INFER_ENGINE`` > ``"eager"``).  The
        compiled path traces once per chunk shape (two specialisations for
        a dataset whose size is not a batch multiple) and amortises the
        plan over every batch of the evaluation — and across evaluate()
        calls, re-tracing only when parameters were actually rebound
        (CompiledModel's staleness detection); predictions are
        bit-identical either way.
        """
        from repro.core.engine_config import resolve_infer_engine

        compiled = None
        if resolve_infer_engine(engine) == "compiled":
            if hasattr(self.model, "compiled"):
                compiled = self.model.compiled()
            else:
                from repro.graph.executor import CompiledModel

                if self._compiled_model is None or self._compiled_model.module is not self.model:
                    self._compiled_model = CompiledModel(self.model)
                compiled = self._compiled_model
        was_training = self.model.training
        self.model.eval()
        predictions = []
        batch = self.config.batch_size
        try:
            with no_grad():
                for start in range(0, images.shape[0], batch):
                    chunk = images[start:start + batch]
                    if compiled is not None:
                        predictions.append(compiled.predict(chunk))
                        continue
                    logits = self.model(Tensor(chunk))
                    predictions.append(np.argmax(logits.data, axis=-1))
        finally:
            self.model.train(was_training)
        predicted = np.concatenate(predictions, axis=0)
        return (
            mean_iou(predicted, labels, num_classes),
            pixel_accuracy(predicted, labels),
        )

    def fit(
        self,
        train_images: np.ndarray,
        train_labels: np.ndarray,
        val_images: Optional[np.ndarray] = None,
        val_labels: Optional[np.ndarray] = None,
        num_classes: Optional[int] = None,
        optimizer: Optional[Optimizer] = None,
    ) -> TrainingResult:
        """Train the model and evaluate on the validation split."""
        started = time.time()
        config = self.config
        if num_classes is None:
            num_classes = int(train_labels.max()) + 1
        optimizer = optimizer or Adam(
            self.model.parameters(), lr=config.learning_rate, weight_decay=config.weight_decay
        )
        steps_per_epoch = max(1, int(np.ceil(train_images.shape[0] / config.batch_size)))
        schedule = CosineSchedule(optimizer, total_steps=config.epochs * steps_per_epoch)

        losses: List[float] = []
        self.model.train()
        for epoch in range(config.epochs):
            for images, labels in self._batches(train_images, train_labels):
                logits = self.model(Tensor(images))
                loss = F.cross_entropy(logits, labels)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                schedule.step()
                losses.append(loss.item())
            if config.log_every and (epoch + 1) % config.log_every == 0:
                print("epoch %d/%d loss %.4f" % (epoch + 1, config.epochs, losses[-1]))

        train_miou, _ = self.evaluate(train_images, train_labels, num_classes)
        if val_images is not None and val_labels is not None:
            val_miou, val_acc = self.evaluate(val_images, val_labels, num_classes)
        else:
            val_miou, val_acc = train_miou, float("nan")
        return TrainingResult(
            losses=losses,
            train_miou=train_miou,
            val_miou=val_miou,
            val_pixel_accuracy=val_acc,
            epochs=config.epochs,
            duration_seconds=time.time() - started,
        )


def prepare_quantized_model(model: Module, bits: int = 8) -> int:
    """Apply INT8 LSQ quantization to every Linear layer of ``model``.

    Returns the number of layers quantized.  The non-linear operator inputs
    are quantized separately by the operator suite the model was built with.
    """
    return quantize_linears_in_place(model, bits=bits)


def transfer_weights(source: Module, target: Module) -> int:
    """Copy parameters from ``source`` into ``target`` by dotted name.

    Only parameters whose names and shapes match are copied (quantizer
    scales and pwl-specific parameters are left at their initial values).
    Returns the number of parameters copied.
    """
    source_state = source.state_dict()
    copied = 0
    for name, param in target.named_parameters():
        # Quantized models wrap Linear layers as `<name>.inner.weight`; make
        # both directions line up by also trying the un-wrapped name.
        candidates = [name, name.replace(".inner.", ".")]
        for candidate in candidates:
            if candidate in source_state and source_state[candidate].shape == param.data.shape:
                param.data = source_state[candidate].copy()
                copied += 1
                break
    return copied
