"""Quantization-aware training layers (LSQ + power-of-two scales).

The paper's fine-tuning baselines apply INT8 integer-only quantization to
weights and activations with LSQ [19], following the dyadic pipeline [15],
and restrict the scaling factor at the *input of each non-linear function*
to a power of two (Section 3.1).  These modules implement that scheme on the
numpy autograd substrate:

* :class:`LSQQuantizer` — a learnable-scale fake quantizer.
* :class:`PowerOfTwoQuantizer` — LSQ with the scale snapped to ``2^round(log2 alpha)``
  (used in front of every pwl-approximated operator).
* :class:`QuantLinear` — a Linear layer with weight + activation quantizers.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.backend import xp as np

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.quant.quantizer import quant_bounds


class LSQQuantizer(Module):
    """Learned Step-size Quantization (fake-quant, straight-through).

    The scale is stored as a positive parameter initialised from the first
    batch it observes (``2 * mean(|x|) / sqrt(qmax)``, the LSQ heuristic).
    """

    def __init__(self, bits: int = 8, signed: bool = True, per_channel: bool = False) -> None:
        super().__init__()
        self.bits = bits
        self.signed = signed
        self.per_channel = per_channel
        self.qmin, self.qmax = quant_bounds(bits, signed)
        self.scale = Parameter(np.asarray([1.0]))
        self._initialised = False
        self._version = 0
        self._version_scale: Optional[float] = None

    @property
    def initialised(self) -> bool:
        """Whether the scale has been initialised from observed data."""
        return self._initialised

    def initialise_from(self, x: np.ndarray) -> None:
        """Set the initial scale from a data sample (LSQ init heuristic)."""
        magnitude = float(np.mean(np.abs(x))) if x.size else 1.0
        init = max(2.0 * magnitude / math.sqrt(self.qmax), 1e-6)
        self.scale.data = np.asarray([init])
        self._initialised = True

    def scale_version(self) -> int:
        """Monotone counter identifying the current deployed scale.

        The scale parameter is mutated externally (optimiser steps,
        re-initialisation), so the version is maintained by observation:
        each call compares the deployed scale against the last observed
        value and bumps the counter when it changed.  Consumers caching
        per-scale artefacts — the dense-LUT engine — compare versions
        instead of tracking the float themselves.  For a
        :class:`PowerOfTwoQuantizer` the deployed scale is the snapped
        ``2^e``, so the version only moves when the exponent actually steps.
        """
        current = self.current_scale()
        if current != self._version_scale:
            self._version_scale = current
            self._version += 1
        return self._version

    def effective_scale(self) -> Tensor:
        """The (positive) scale actually used for quantization."""
        return self.scale.abs() + 1e-9

    def forward(self, x: Tensor) -> Tensor:
        if not self._initialised:
            self.initialise_from(x.data)
        grad_scale = 1.0 / math.sqrt(max(x.size * self.qmax, 1))
        return F.lsq_quantize(x, self.effective_scale(), self.qmin, self.qmax, grad_scale)

    def quantize_codes(self, x: np.ndarray) -> np.ndarray:
        """Integer codes for ``x`` under the current scale (inference path)."""
        scale = float(self.effective_scale().data[0])
        return np.clip(np.round(x / scale), self.qmin, self.qmax)

    def current_scale(self) -> float:
        """Float value of the deployed scale."""
        return float(self.effective_scale().data[0])


class PowerOfTwoQuantizer(LSQQuantizer):
    """LSQ quantizer whose scale is constrained to a power of two.

    This is the quantizer placed at the input of every non-linear operator
    (Section 3.1): the learnable ``alpha`` is rounded in the log domain with
    a straight-through gradient, so the deployed scale is always ``2^e`` and
    the pwl intercept rescaling reduces to a shift.
    """

    def effective_scale(self) -> Tensor:
        return F.power_of_two_scale(self.scale.abs() + 1e-9)

    def initialise_from(self, x: np.ndarray) -> None:
        super().initialise_from(x)
        # Snap the stored alpha to the nearest power of two so training
        # starts exactly on the constraint surface.
        exponent = round(math.log2(float(self.scale.data[0])))
        self.scale.data = np.asarray([2.0 ** exponent])
        self._initialised = True

    def current_exponent(self) -> int:
        """The deployed ``log2(S)`` exponent."""
        return int(round(math.log2(self.current_scale())))


class QuantLinear(Module):
    """Linear layer with LSQ weight and activation fake-quantization."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        bits: int = 8,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.inner = Linear(in_features, out_features, bias=bias, rng=rng)
        self.weight_quant = LSQQuantizer(bits=bits, signed=True)
        self.act_quant = LSQQuantizer(bits=bits, signed=True)

    @property
    def weight(self) -> Parameter:
        return self.inner.weight

    @property
    def bias(self) -> Optional[Parameter]:
        return self.inner.bias

    def forward(self, x: Tensor) -> Tensor:
        x_q = self.act_quant(x)
        w_q = self.weight_quant(self.inner.weight)
        out = x_q @ w_q
        if self.inner.bias is not None:
            out = out + self.inner.bias
        return out

    @classmethod
    def from_float(cls, linear: Linear, bits: int = 8) -> "QuantLinear":
        """Wrap an existing float Linear layer, sharing its parameters."""
        quant = cls(linear.in_features, linear.out_features, bias=linear.bias is not None, bits=bits)
        quant.inner.weight.data = linear.weight.data.copy()
        if linear.bias is not None and quant.inner.bias is not None:
            quant.inner.bias.data = linear.bias.data.copy()
        return quant


def quantize_linears_in_place(module: Module, bits: int = 8) -> int:
    """Replace every float :class:`Linear` child with a :class:`QuantLinear`.

    Returns the number of layers replaced.  The traversal skips layers that
    are already quantized (and the ``inner`` Linear inside a QuantLinear).
    """
    replaced = 0
    for owner in module.modules():
        if isinstance(owner, QuantLinear):
            continue
        for name, child in list(owner._modules.items()):
            if isinstance(child, Linear) and not isinstance(owner, QuantLinear):
                owner.register_module(name, QuantLinear.from_float(child, bits=bits))
                replaced += 1
    return replaced
