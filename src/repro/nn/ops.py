"""First-class op/VJP registry for the autograd substrate.

Every differentiable operation of :class:`repro.nn.tensor.Tensor` is a named
:class:`Op`: a pure array-level ``forward`` paired with its vector-Jacobian
products, registered in a process-wide table.  The design follows the
classic VJP-table shape of the autograd lineage (``defvjp`` per argument
number): gradients are *data*, not inline closures, so

* new kernels plug in with one :func:`register_op` call,
* the gradcheck harness (``tests/test_gradcheck.py``) can enumerate the
  whole table and finite-difference every entry,
* graph construction, ``no_grad`` short-circuiting and unbroadcast handling
  live in exactly one place (``Tensor.apply_op`` / ``Tensor.backward``)
  instead of being re-implemented per op.

An op's ``forward(*arrays, **params)`` returns the output array, or an
``(output, saved)`` pair when the backward pass needs intermediates beyond
the inputs and the output (e.g. the fused table lookup stashes the selected
slopes).  VJPs come in two flavours:

* ``vjps`` — a tuple with one function per positional input,
  ``vjp(grad, ans, saved, *arrays, **params) -> grad_for_that_input``;
  only the entries whose inputs require grad are invoked.
* ``vjp_all`` — for variadic ops (``concatenate``, ``scatter_sum``), one
  function returning the full list of input gradients.

VJP outputs may be broadcast-shaped; the caller sums them back to each
input's shape (the single unbroadcast site).  This module is Tensor-free on
purpose: ops are backend-level array kernels, usable and testable without
the graph machinery on top.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.backend import xp as np

Array = Any  # backend array type (numpy.ndarray under the default backend)


@dataclasses.dataclass(frozen=True)
class Op:
    """A named (forward, vjp) pair in the registry.

    Exactly one of ``vjps`` (per-input functions) and ``vjp_all`` (one
    function for every input, for variadic ops) must be provided.
    """

    name: str
    forward: Callable[..., Any]
    vjps: Optional[Tuple[Callable[..., Array], ...]] = None
    vjp_all: Optional[Callable[..., Sequence[Array]]] = None

    def __post_init__(self) -> None:
        if (self.vjps is None) == (self.vjp_all is None):
            raise ValueError(
                "op %r must define exactly one of vjps / vjp_all" % (self.name,)
            )


_REGISTRY: Dict[str, Op] = {}


def register_op(
    name: str,
    forward: Callable[..., Any],
    vjps: Optional[Sequence[Callable[..., Array]]] = None,
    vjp_all: Optional[Callable[..., Sequence[Array]]] = None,
) -> Op:
    """Register a named op; re-registering an existing name is an error."""
    if name in _REGISTRY:
        raise ValueError("op %r is already registered" % (name,))
    op = Op(
        name=name,
        forward=forward,
        vjps=tuple(vjps) if vjps is not None else None,
        vjp_all=vjp_all,
    )
    _REGISTRY[name] = op
    return op


def get_op(name: str) -> Op:
    """Look up a registered op by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown op %r; registered: %s" % (name, ", ".join(registered_ops()))
        ) from None


def registered_ops() -> Tuple[str, ...]:
    """Names of every registered op (sorted)."""
    return tuple(sorted(_REGISTRY))


#: Ops whose forward returns ``(output, saved)`` with an *array* saved
#: value.  Under gradient capture the tracer materialises that saved value
#: as a graph output of the node (``Node.saved_output``) so the traced VJP
#: can consume it instead of recomputing the forward.
SAVED_OUTPUT_OPS = frozenset({"elementwise_fused"})

#: Element-wise registry ops: same-shape (or broadcast) array-in/array-out
#: arithmetic with no data-dependent shape logic.  The chain-fusion pass
#: (:func:`repro.graph.passes.fuse_elementwise_chains`) collapses
#: single-consumer runs of these — and of their traced VJP wrappers — into
#: one kernel.  ``elementwise``/``elementwise_fused`` are excluded: their
#: params carry bound table callables the LUT fusion pass owns.
ELEMENTWISE_OPS = frozenset({
    "add", "neg", "mul", "div", "pow", "exp", "log", "sqrt", "tanh",
    "relu", "abs", "clip", "clip_ste", "round_ste",
})


def vjp_op_name(name: str, argnum: int) -> str:
    """The registry name of the traced-VJP wrapper for ``name``/``argnum``."""
    return "vjp[%s][%d]" % (name, argnum)


def is_vjp_op(name: str) -> bool:
    """Whether ``name`` is a traced-VJP wrapper (graph-only, no gradients)."""
    return name.startswith("vjp[")


def vjp_base(name: str) -> Optional[str]:
    """The base op a VJP wrapper differentiates, or ``None`` for plain ops."""
    if not is_vjp_op(name):
        return None
    return name[len("vjp["):name.index("]")]


def _non_differentiable(name: str):
    def vjp_all(grad, ans, saved, *arrays, **params):
        raise RuntimeError(
            "op %r is a traced-graph kernel and has no gradients" % (name,)
        )
    return vjp_all


def ensure_vjp_op(name: str, argnum: int) -> Op:
    """Register (once) and return the graph-level VJP wrapper op.

    The wrapper's forward computes the base op's gradient for input
    ``argnum`` by calling the *registered* VJP with positional array inputs
    ``(grad, ans, saved?, *base_inputs)`` — ``saved`` is present exactly
    for :data:`SAVED_OUTPUT_OPS` — plus the base op's params.  Calling the
    same function the eager backward calls makes the traced node
    bit-identical by construction.  Wrappers only appear in captured
    training graphs, never under eager autograd, so they register as
    non-differentiable.
    """
    wrapper_name = vjp_op_name(name, argnum)
    existing = _REGISTRY.get(wrapper_name)
    if existing is not None:
        return existing
    base = get_op(name)
    has_saved = name in SAVED_OUTPUT_OPS
    if base.vjp_all is not None:
        if has_saved:
            def forward(grad, ans, saved, *arrays, _fn=base.vjp_all, _i=argnum, **params):
                return _fn(grad, ans, saved, *arrays, **params)[_i]
        else:
            def forward(grad, ans, *arrays, _fn=base.vjp_all, _i=argnum, **params):
                return _fn(grad, ans, None, *arrays, **params)[_i]
    else:
        if not 0 <= argnum < len(base.vjps):
            raise ValueError(
                "op %r has %d inputs; no vjp for argnum %d"
                % (name, len(base.vjps), argnum)
            )
        if has_saved:
            def forward(grad, ans, saved, *arrays, _fn=base.vjps[argnum], **params):
                return _fn(grad, ans, saved, *arrays, **params)
        else:
            def forward(grad, ans, *arrays, _fn=base.vjps[argnum], **params):
                return _fn(grad, ans, None, *arrays, **params)
    return register_op(
        wrapper_name, forward=forward, vjp_all=_non_differentiable(wrapper_name)
    )


def run_forward(op: Op, *arrays: Array, **params: Any) -> Tuple[Array, Any]:
    """Execute an op's forward, normalising to ``(output, saved)``."""
    result = op.forward(*arrays, **params)
    if type(result) is tuple:
        out, saved = result
    else:
        out, saved = result, None
    return out, saved


def input_grads(
    op: Op,
    grad: Array,
    ans: Array,
    saved: Any,
    arrays: Sequence[Array],
    params: Dict[str, Any],
    needed: Sequence[bool],
) -> Sequence[Optional[Array]]:
    """Gradients w.r.t. each input; ``None`` where ``needed`` is false.

    For per-argnum ops only the needed VJPs run (a matmul whose weight side
    is frozen never computes the activation-side product); variadic ops
    compute the full list in one call.
    """
    if op.vjp_all is not None:
        return op.vjp_all(grad, ans, saved, *arrays, **params)
    if len(op.vjps) != len(arrays):
        raise ValueError(
            "op %r defines %d vjps but was applied to %d inputs"
            % (op.name, len(op.vjps), len(arrays))
        )
    return [
        op.vjps[i](grad, ans, saved, *arrays, **params) if needed[i] else None
        for i in range(len(arrays))
    ]


# -- arithmetic -----------------------------------------------------------------


register_op(
    "add",
    forward=lambda a, b: a + b,
    vjps=(
        lambda g, ans, s, a, b: g,
        lambda g, ans, s, a, b: g,
    ),
)

register_op(
    "neg",
    forward=lambda a: -a,
    vjps=(lambda g, ans, s, a: -g,),
)

register_op(
    "mul",
    forward=lambda a, b: a * b,
    vjps=(
        lambda g, ans, s, a, b: g * b,
        lambda g, ans, s, a, b: g * a,
    ),
)

register_op(
    "div",
    forward=lambda a, b: a / b,
    vjps=(
        lambda g, ans, s, a, b: g / b,
        lambda g, ans, s, a, b: -g * a / (b ** 2),
    ),
)


def _pow_forward(a: Array, exponent: float) -> Array:
    if not np.isscalar(exponent):
        raise TypeError("only scalar exponents are supported")
    return a ** exponent


register_op(
    "pow",
    forward=_pow_forward,
    vjps=(lambda g, ans, s, a, exponent: g * exponent * a ** (exponent - 1),),
)

register_op(
    "matmul",
    forward=lambda a, b: a @ b,
    vjps=(
        lambda g, ans, s, a, b: g @ np.swapaxes(b, -1, -2),
        lambda g, ans, s, a, b: np.swapaxes(a, -1, -2) @ g,
    ),
)


# -- shape manipulation ---------------------------------------------------------


register_op(
    "reshape",
    forward=lambda a, shape: a.reshape(shape),
    vjps=(lambda g, ans, s, a, shape: g.reshape(a.shape),),
)

register_op(
    "transpose",
    forward=lambda a, axes: a.transpose(axes),
    vjps=(lambda g, ans, s, a, axes: g.transpose(np.argsort(axes)),),
)


def _getitem_vjp(g: Array, ans: Array, s: Any, a: Array, index: Any) -> Array:
    full = np.zeros_like(a)
    np.add.at(full, index, g)
    return full


register_op(
    "getitem",
    forward=lambda a, index: a[index],
    vjps=(_getitem_vjp,),
)


def unbroadcast_array(grad: Array, shape: Tuple[int, ...]) -> Array:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``.

    The canonical sum-to-shape both the eager backward
    (:meth:`repro.nn.tensor.Tensor.backward`'s single unbroadcast site) and
    the captured training graph's ``unbroadcast`` nodes run — one
    implementation, so eager and compiled gradients agree bit for bit.
    """
    shape = tuple(shape)
    if grad.shape == shape:
        return grad
    # Sum leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum dimensions that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


register_op(
    "unbroadcast",
    forward=unbroadcast_array,
    vjps=(lambda g, ans, s, a, shape: np.broadcast_to(g, a.shape),),
)


def _concatenate_vjp_all(g, ans, s, *arrays, axis: int = 0):
    grads = []
    offset = 0
    for arr in arrays:
        size = arr.shape[axis]
        index = [slice(None)] * g.ndim
        index[axis] = slice(offset, offset + size)
        grads.append(g[tuple(index)])
        offset += size
    return grads


register_op(
    "concatenate",
    forward=lambda *arrays, axis=0: np.concatenate(arrays, axis=axis),
    vjp_all=_concatenate_vjp_all,
)


def _scatter_sum_forward(*arrays, slices, shape):
    out = np.zeros(shape)
    for arr, (y_slice, x_slice) in zip(arrays, slices):
        out[:, y_slice, x_slice, :] += arr
    return out


def _scatter_sum_vjp_all(g, ans, s, *arrays, slices, shape):
    return [g[:, y_slice, x_slice, :] for (y_slice, x_slice) in slices]


register_op(
    "scatter_sum",
    forward=_scatter_sum_forward,
    vjp_all=_scatter_sum_vjp_all,
)


# -- reductions -----------------------------------------------------------------


def _sum_vjp(g, ans, s, a, axis=None, keepdims=False):
    g = np.asarray(g, dtype=np.float64)
    if axis is not None and not keepdims:
        g = np.expand_dims(g, axis=axis)
    return np.broadcast_to(g, a.shape)


register_op(
    "sum",
    forward=lambda a, axis=None, keepdims=False: a.sum(axis=axis, keepdims=keepdims),
    vjps=(_sum_vjp,),
)


def _max_vjp(g, ans, s, a, axis=None, keepdims=False):
    g = np.asarray(g, dtype=np.float64)
    expanded = ans
    if axis is not None and not keepdims:
        g = np.expand_dims(g, axis=axis)
        expanded = np.expand_dims(ans, axis=axis)
    mask = (a == expanded).astype(np.float64)
    # Split gradient between ties, matching torch's behaviour closely
    # enough for training purposes.
    denom = mask.sum(axis=axis, keepdims=True)
    denom = np.where(denom == 0, 1.0, denom)
    return mask * g / denom


register_op(
    "max",
    forward=lambda a, axis=None, keepdims=False: a.max(axis=axis, keepdims=keepdims),
    vjps=(_max_vjp,),
)


# -- element-wise functions -----------------------------------------------------


register_op(
    "exp",
    forward=lambda a: np.exp(a),
    vjps=(lambda g, ans, s, a: g * ans,),
)

register_op(
    "log",
    forward=lambda a: np.log(a),
    vjps=(lambda g, ans, s, a: g / a,),
)

register_op(
    "sqrt",
    forward=lambda a: np.sqrt(a),
    vjps=(lambda g, ans, s, a: g * 0.5 / np.maximum(ans, 1e-12),),
)

register_op(
    "tanh",
    forward=lambda a: np.tanh(a),
    vjps=(lambda g, ans, s, a: g * (1.0 - ans ** 2),),
)

register_op(
    "relu",
    forward=lambda a: np.maximum(a, 0.0),
    vjps=(lambda g, ans, s, a: g * (a > 0),),
)

register_op(
    "abs",
    forward=lambda a: np.abs(a),
    vjps=(lambda g, ans, s, a: g * np.sign(a),),
)

register_op(
    "clip",
    forward=lambda a, lo, hi: np.clip(a, lo, hi),
    vjps=(lambda g, ans, s, a, lo, hi: g * ((a >= lo) & (a <= hi)),),
)

# Straight-through estimators: the forward is a hard quantization step, the
# VJP passes the incoming gradient through unchanged (LSQ / Eq. 2).
register_op(
    "clip_ste",
    forward=lambda a, lo, hi: np.clip(a, lo, hi),
    vjps=(lambda g, ans, s, a, lo, hi: g,),
)

register_op(
    "round_ste",
    forward=lambda a: np.round(a),
    vjps=(lambda g, ans, s, a: g,),
)


# -- generic element-wise hooks (pwl table lookups) -----------------------------


def _kernel_label(name: Optional[str]) -> str:
    """Human-readable kernel identifier for error messages and traces."""
    return "element-wise" if name is None else "element-wise kernel %r" % (name,)


def _elementwise_forward(a, forward_fn, grad_fn, name=None):
    out = np.asarray(forward_fn(a), dtype=np.float64)
    if out.shape != a.shape:
        raise ValueError("%s forward changed the shape" % _kernel_label(name))
    return out


register_op(
    "elementwise",
    forward=_elementwise_forward,
    vjps=(
        lambda g, ans, s, a, forward_fn, grad_fn, name=None: g
        * np.asarray(grad_fn(a), dtype=np.float64),
    ),
)


def _elementwise_fused_forward(a, fused_fn, name=None):
    out, slope = fused_fn(a)
    out = np.asarray(out, dtype=np.float64)
    if out.shape != a.shape:
        raise ValueError("%s forward changed the shape" % _kernel_label(name))
    slope = np.asarray(slope, dtype=np.float64)
    if slope.shape != a.shape:
        raise ValueError("%s derivative changed the shape" % _kernel_label(name))
    return out, slope


register_op(
    "elementwise_fused",
    forward=_elementwise_fused_forward,
    vjps=(lambda g, ans, slope, a, fused_fn, name=None: g * slope,),
)
