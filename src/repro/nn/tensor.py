"""A small reverse-mode automatic-differentiation engine over backend arrays.

This is the substrate that replaces PyTorch for the paper's fine-tuning
experiments: it provides a :class:`Tensor` with a dynamic computation graph,
the operations needed by miniature Transformer models (matmul, layer
statistics, softmax pieces, element-wise non-linearities) and the
straight-through-estimator (STE) primitives used by LSQ quantization.

The design intentionally mirrors the familiar torch API surface
(``tensor.backward()``, ``tensor.grad``, ``no_grad()``) so the model code in
:mod:`repro.nn.layers` and :mod:`repro.nn.models` reads naturally.

Gradient rules do not live here: every differentiable operation is a named
``(forward, vjp)`` pair in the :mod:`repro.nn.ops` registry, and the Tensor
methods are thin dispatches through :func:`apply_op` — the single place that
owns graph construction and ``no_grad`` short-circuiting.  Broadcast
gradients are summed back to each input's shape in one site inside
:meth:`Tensor.backward`.  Arrays come from the active :mod:`repro.backend`
(NumPy by default).
"""

from __future__ import annotations

import contextlib
from typing import List, Optional, Sequence, Tuple

from repro.backend import xp as np
from repro.nn import ops as _ops

_GRAD_ENABLED = True

# The active graph tracer (at most one).  While installed, every apply_op
# dispatch and every detach alias is reported to it, which is how
# :mod:`repro.graph.trace` captures a static IR from one eager forward run
# without the model code cooperating.
_TRACER = None


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def is_tracing() -> bool:
    """Whether a graph tracer is currently capturing apply_op dispatches."""
    return _TRACER is not None


@contextlib.contextmanager
def tracing(tracer):
    """Install ``tracer`` as the active capture hook for a ``with`` block.

    The tracer must provide ``record_op(name, inputs, params, out)`` and
    ``record_alias(source, alias)``.  Tracing does not nest: a second
    tracer inside an active capture raises, since the inner trace would
    steal the outer one's ops.
    """
    global _TRACER
    if _TRACER is not None:
        raise RuntimeError("a graph tracer is already active; tracing does not nest")
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = None


# The single sum-to-shape implementation, shared with the registered
# ``unbroadcast`` op so traced training graphs replay the exact function
# the eager backward runs.
_unbroadcast = _ops.unbroadcast_array


class _OpBackward:
    """Recorded backward step: one registry op plus its forward context."""

    __slots__ = ("op", "saved", "arrays", "params", "needed")

    def __init__(self, op, saved, arrays, params, needed) -> None:
        self.op = op
        self.saved = saved
        self.arrays = arrays
        self.params = params
        self.needed = needed

    def __call__(self, grad, ans):
        return _ops.input_grads(
            self.op, grad, ans, self.saved, self.arrays, self.params, self.needed
        )


def _emit_vjp_node(tracer, node: "Tensor", argnum: int, grad_vid: int) -> int:
    """Emit graph node(s) computing one VJP of ``node`` w.r.t. input ``argnum``.

    Called from :meth:`Tensor.backward` under gradient capture, *alongside*
    the eager VJP evaluation — the returned value id computes exactly the
    array the eager call produced.  The common arithmetic VJPs lower to
    primitive nodes mirroring the registered VJP's expression term for term
    (so constant folding and chain fusion see through them); everything
    else goes through a ``vjp[<op>][<argnum>]`` wrapper op that calls the
    identical registered VJP function (bit-identical trivially).
    """
    backward = node._backward
    op_name = backward.op.name
    emit = tracer.emit
    in_vids = tuple(tracer.value_of(parent) for parent in node._parents)
    if op_name == "add":            # vjp: g
        return grad_vid
    if op_name == "neg":            # vjp: -g
        return emit("neg", (grad_vid,))
    if op_name == "mul":            # vjp: g * other
        return emit("mul", (grad_vid, in_vids[1 - argnum]))
    if op_name == "exp":            # vjp: g * ans
        return emit("mul", (grad_vid, tracer.value_of(node)))
    if op_name == "div":
        if argnum == 0:             # vjp: g / b
            return emit("div", (grad_vid, in_vids[1]))
        # vjp: -g * a / (b ** 2), in Python evaluation order
        negated = emit("neg", (grad_vid,))
        numerator = emit("mul", (negated, in_vids[0]))
        denominator = emit("pow", (in_vids[1],), {"exponent": 2})
        return emit("div", (numerator, denominator))
    if op_name == "elementwise_fused":  # vjp: g * slope (the saved output)
        saved_vid = tracer.saved_value_of(node)
        if saved_vid is None:
            raise RuntimeError(
                "elementwise_fused output has no captured slope; was the "
                "forward traced with capture_grads?"
            )
        return emit("mul", (grad_vid, saved_vid))
    wrapper = _ops.ensure_vjp_op(op_name, argnum)
    inputs = [grad_vid, tracer.value_of(node)]
    if op_name in _ops.SAVED_OUTPUT_OPS:
        saved_vid = tracer.saved_value_of(node)
        if saved_vid is None:
            raise RuntimeError(
                "op %r output has no captured saved value" % (op_name,)
            )
        inputs.append(saved_vid)
    inputs.extend(in_vids)
    return emit(wrapper.name, tuple(inputs), dict(backward.params))


class Tensor:
    """A backend-array tensor participating in a dynamic autograd graph."""

    __slots__ = (
        "data", "grad", "requires_grad", "_backward", "_parents", "name",
        "__weakref__",
    )

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        name: Optional[str] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[_OpBackward] = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self.name = name

    # -- basic properties ------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self):
        """The underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        out = Tensor(self.data, requires_grad=False)
        if _TRACER is not None:
            # Detach only cuts the *gradient* graph; the value still flows
            # from the source, so the tracer aliases the two tensors.
            _TRACER.record_alias(self, out)
        return out

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Tensor(shape=%s, requires_grad=%s)" % (self.shape, self.requires_grad)

    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    # -- arithmetic (thin dispatches into the op registry) ---------------------

    def __add__(self, other) -> "Tensor":
        return apply_op("add", self, other)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return apply_op("neg", self)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        return apply_op("mul", self, other)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        return apply_op("div", self, other)

    def __rtruediv__(self, other) -> "Tensor":
        return apply_op("div", self._lift(other), self)

    def __pow__(self, exponent: float) -> "Tensor":
        return apply_op("pow", self, exponent=exponent)

    def __matmul__(self, other) -> "Tensor":
        return apply_op("matmul", self, other)

    # -- shape manipulation ----------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return apply_op("reshape", self, shape=shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        return apply_op("transpose", self, axes=axes)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        return apply_op("getitem", self, index=index)

    # -- reductions ------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op("sum", self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op("max", self, axis=axis, keepdims=keepdims)

    # -- element-wise functions ------------------------------------------------

    def exp(self) -> "Tensor":
        return apply_op("exp", self)

    def log(self) -> "Tensor":
        return apply_op("log", self)

    def sqrt(self) -> "Tensor":
        return apply_op("sqrt", self)

    def tanh(self) -> "Tensor":
        return apply_op("tanh", self)

    def relu(self) -> "Tensor":
        return apply_op("relu", self)

    def abs(self) -> "Tensor":
        return apply_op("abs", self)

    def clip(self, lo: float, hi: float) -> "Tensor":
        """Clamp with zero gradient outside the interval."""
        return apply_op("clip", self, lo=lo, hi=hi)

    def clip_ste(self, lo: float, hi: float) -> "Tensor":
        """Clamp whose gradient passes straight through (STE clip)."""
        return apply_op("clip_ste", self, lo=lo, hi=hi)

    def round_ste(self) -> "Tensor":
        """Round to nearest with a straight-through gradient (Eq. 2 / LSQ)."""
        return apply_op("round_ste", self)

    def apply_elementwise(self, forward_fn, grad_fn, name: Optional[str] = None) -> "Tensor":
        """Generic element-wise op: ``y = forward_fn(x)``, ``dy/dx = grad_fn(x)``.

        Used by the pwl-replacement modules, whose forward is a table lookup
        and whose backward is the selected segment's slope.  ``name`` is an
        optional stable identifier for the kernel — graph traces and error
        messages would otherwise only see an opaque callable.
        """
        return apply_op(
            "elementwise", self, forward_fn=forward_fn, grad_fn=grad_fn, name=name
        )

    def apply_elementwise_fused(self, fused_fn, name: Optional[str] = None) -> "Tensor":
        """Element-wise op producing output and derivative in a single pass.

        ``fused_fn(x)`` returns ``(y, dy/dx)`` together; the derivative is
        stashed for backward instead of being re-derived from the raw input.
        This is the dense-LUT fine-tuning path: one quantize feeds both the
        output gather and the slope gather, and backward is a single
        multiply.  ``name`` identifies the kernel in traces and errors.
        """
        return apply_op("elementwise_fused", self, fused_fn=fused_fn, name=name)

    # -- graph traversal -------------------------------------------------------

    def backward(self, grad=None, retain_graph: bool = False) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Every visited tensor that requires grad accumulates its total
        incoming gradient into ``.grad``; broadcast dimensions are summed
        away here, the one unbroadcast site.  After the traversal the graph
        edges (``_backward`` hooks, parent links and their saved arrays)
        are released so long fine-tuning runs do not retain every
        intermediate activation graph; pass ``retain_graph=True`` to keep
        them (needed to call backward twice through a shared subgraph).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Under an active gradient-capturing tracer the eager traversal
        # below additionally *emits* every VJP application as graph nodes,
        # mirroring each eager expression exactly — the capture is the
        # computation, so compiled replays are bit-identical by
        # construction (see repro.graph docs).
        tracer = _TRACER
        capture = tracer is not None and getattr(tracer, "capture_grads", False)

        topo: List[Tensor] = []
        visited = set()

        def build(node: Tensor) -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                build(parent)
            topo.append(node)

        build(self)
        grads = {id(self): grad}
        grad_vids = {id(self): tracer.constant(grad)} if capture else None
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            node_grad_vid = grad_vids.pop(id(node)) if capture else None
            if node.requires_grad:
                if capture and node.grad is not None:
                    raise RuntimeError(
                        "backward() under gradient capture requires zeroed "
                        "grads (tensor already carries a .grad the graph "
                        "cannot see)"
                    )
                node.grad = (
                    node_grad.copy() if node.grad is None else node.grad + node_grad
                )
                if capture:
                    # In reversed topo order every consumer was already
                    # processed, so this accumulated value is final.
                    tracer.note_grad(node, node_grad_vid)
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad, node.data)
            for argnum, (parent, parent_grad) in enumerate(
                zip(node._parents, parent_grads)
            ):
                if parent_grad is None or not parent.requires_grad:
                    continue
                raw = np.asarray(parent_grad, dtype=np.float64)
                contribution = _unbroadcast(raw, parent.data.shape)
                if capture:
                    vid = _emit_vjp_node(tracer, node, argnum, node_grad_vid)
                    if raw.shape != parent.data.shape:
                        vid = tracer.emit(
                            "unbroadcast", (vid,), {"shape": parent.data.shape}
                        )
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + contribution
                    if capture:
                        grad_vids[id(parent)] = tracer.emit(
                            "add", (grad_vids[id(parent)], vid)
                        )
                else:
                    grads[id(parent)] = contribution
                    if capture:
                        grad_vids[id(parent)] = vid
        if not retain_graph:
            for node in topo:
                if node._backward is not None:
                    node._backward = None
                    node._parents = ()


def apply_op(op_name: str, *inputs, **params) -> Tensor:
    """Apply a registered op to tensors, recording the graph edge.

    This is the single entry point every Tensor operation routes through:
    it lifts raw values to tensors, runs the op's forward on the underlying
    arrays, and — when gradients are enabled and any input requires them —
    attaches the op's VJPs for the backward pass.  Under ``no_grad`` (or
    with detached inputs) the result carries no parents and no backward
    hook, so intermediate graphs are never built.  (The first parameter is
    ``op_name`` rather than ``name`` so op params may themselves carry a
    ``name`` keyword — the element-wise kernels use it as a stable label.)
    """
    op = _ops.get_op(op_name)
    tensors = tuple(Tensor._lift(value) for value in inputs)
    arrays = tuple(t.data for t in tensors)
    out_data, saved = _ops.run_forward(op, *arrays, **params)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(out_data, requires_grad=requires, _parents=tensors if requires else ())
    if requires:
        needed = tuple(t.requires_grad for t in tensors)
        out._backward = _OpBackward(op, saved, arrays, params, needed)
    if _TRACER is not None:
        _TRACER.record_op(op_name, tensors, params, out, saved)
    return out


def tensor(data, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(shape, scale: float = 1.0, rng=None, requires_grad: bool = False) -> Tensor:
    generator = rng or np.random.default_rng()
    return Tensor(scale * generator.standard_normal(shape), requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    return apply_op("concatenate", *tensors, axis=axis)
