"""A small reverse-mode automatic-differentiation engine over numpy arrays.

This is the substrate that replaces PyTorch for the paper's fine-tuning
experiments: it provides a :class:`Tensor` with a dynamic computation graph,
the operations needed by miniature Transformer models (matmul, layer
statistics, softmax pieces, element-wise non-linearities) and the
straight-through-estimator (STE) primitives used by LSQ quantization.

The design intentionally mirrors the familiar torch API surface
(``tensor.backward()``, ``tensor.grad``, ``no_grad()``) so the model code in
:mod:`repro.nn.layers` and :mod:`repro.nn.models` reads naturally.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum dimensions that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in a dynamic autograd graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        name: Optional[str] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self.name = name

    # -- basic properties ------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Tensor(shape=%s, requires_grad=%s)" % (self.shape, self.requires_grad)

    # -- graph construction helpers --------------------------------------------

    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=tuple(parents) if requires else ())
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # -- arithmetic -------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return self._make(out_data, (self, other), backward)

    # -- shape manipulation -----------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # -- reductions ---------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad, dtype=np.float64)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad, dtype=np.float64)
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            # Split gradient between ties, matching torch's behaviour closely
            # enough for training purposes.
            denom = mask.sum(axis=axis, keepdims=True)
            denom = np.where(denom == 0, 1.0, denom)
            self._accumulate(mask * g / denom)

        return self._make(out_data, (self,), backward)

    # -- element-wise functions ----------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0))

        return self._make(out_data, (self,), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        """Clamp with zero gradient outside the interval."""
        out_data = np.clip(self.data, lo, hi)

        def backward(grad: np.ndarray) -> None:
            inside = (self.data >= lo) & (self.data <= hi)
            self._accumulate(grad * inside)

        return self._make(out_data, (self,), backward)

    def clip_ste(self, lo: float, hi: float) -> "Tensor":
        """Clamp whose gradient passes straight through (STE clip)."""
        out_data = np.clip(self.data, lo, hi)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)

        return self._make(out_data, (self,), backward)

    def round_ste(self) -> "Tensor":
        """Round to nearest with a straight-through gradient (Eq. 2 / LSQ)."""
        out_data = np.round(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)

        return self._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return self._make(out_data, (self,), backward)

    def apply_elementwise(
        self, forward_fn: Callable[[np.ndarray], np.ndarray], grad_fn: Callable[[np.ndarray], np.ndarray]
    ) -> "Tensor":
        """Generic element-wise op: ``y = forward_fn(x)``, ``dy/dx = grad_fn(x)``.

        Used by the pwl-replacement modules, whose forward is a table lookup
        and whose backward is the selected segment's slope.
        """
        out_data = np.asarray(forward_fn(self.data), dtype=np.float64)
        if out_data.shape != self.data.shape:
            raise ValueError("element-wise forward changed the shape")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.asarray(grad_fn(self.data), dtype=np.float64))

        return self._make(out_data, (self,), backward)

    def apply_elementwise_fused(
        self, fused_fn: Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray]]
    ) -> "Tensor":
        """Element-wise op producing output and derivative in a single pass.

        ``fused_fn(x)`` returns ``(y, dy/dx)`` together; the derivative is
        stashed for backward instead of being re-derived from the raw input.
        This is the dense-LUT fine-tuning path: one quantize feeds both the
        output gather and the slope gather, and backward is a single multiply.
        """
        out_data, slope = fused_fn(self.data)
        out_data = np.asarray(out_data, dtype=np.float64)
        if out_data.shape != self.data.shape:
            raise ValueError("element-wise forward changed the shape")
        slope = np.asarray(slope, dtype=np.float64)
        if slope.shape != self.data.shape:
            raise ValueError("element-wise derivative changed the shape")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * slope)

        return self._make(out_data, (self,), backward)

    # -- graph traversal ------------------------------------------------------------

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: List[Tensor] = []
        visited = set()

        def build(node: Tensor) -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                build(parent)
            topo.append(node)

        build(self)
        grads = {id(self): grad}
        self.grad = grad.copy() if self.grad is None else self.grad + grad
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None or node._backward is None:
                continue
            # The _backward closures accumulate into parents' .grad directly;
            # collect what each parent received this step so propagation
            # continues with the correct local contribution.
            before = {id(p): None if p.grad is None else p.grad.copy() for p in node._parents}
            node._backward(node_grad)
            seen_parents = set()
            for parent in node._parents:
                if not parent.requires_grad or id(parent) in seen_parents:
                    # A parent may appear twice (e.g. ``c * c``); its combined
                    # contribution is already captured on the first visit.
                    continue
                seen_parents.add(id(parent))
                prev = before[id(parent)]
                current = parent.grad
                contribution = current if prev is None else current - prev
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + contribution
                else:
                    grads[id(parent)] = contribution


def tensor(data, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(shape, scale: float = 1.0, rng: Optional[np.random.Generator] = None,
          requires_grad: bool = False) -> Tensor:
    generator = rng or np.random.default_rng()
    return Tensor(scale * generator.standard_normal(shape), requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor._lift(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad: np.ndarray) -> None:
        offset = 0
        for t, size in zip(tensors, sizes):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(offset, offset + size)
            t._accumulate(grad[tuple(index)])
            offset += size

    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors) if requires else ())
    if requires:
        out._backward = backward
    return out
