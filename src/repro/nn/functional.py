"""Functional operations built on :class:`repro.nn.tensor.Tensor`.

These mirror ``torch.nn.functional`` for the small set of operations the
miniature Transformer models need: activations, softmax, layer
normalisation, cross entropy and the LSQ fake-quantization primitives.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.backend import xp as np

from repro.nn.tensor import Tensor

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    """GELU (tanh approximation, differentiable through the graph)."""
    inner = (x + x * x * x * 0.044715) * _SQRT_2_OVER_PI
    return x * 0.5 * (inner.tanh() + 1.0)


def hswish(x: Tensor) -> Tensor:
    """Hard swish ``x * relu6(x + 3) / 6``."""
    return x * (x + 3.0).clip(0.0, 6.0) * (1.0 / 6.0)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return 1.0 / ((-x).exp() + 1.0)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normalised = (x - mean) * ((var + eps) ** -0.5)
    return normalised * weight + bias


#: How far below the row minimum a masked attention score is pushed before
#: the stable-softmax max subtraction.  The value only has to keep masked
#: slots from winning the row max — exact zeroing of their probability is
#: done multiplicatively (the pwl EXP table clamps at its search-range
#: floor and never underflows to 0.0, so an additive mask alone would leak
#: ~exp(range_min) per masked slot).  Kept modest on purpose: the masked
#: scores pass through the EXP operator's input quantizer, and a huge
#: offset would blow up its calibrated power-of-two scale.
MASK_OFFSET = 30.0


def causal_mask(tokens: int) -> np.ndarray:
    """Lower-triangular ``(tokens, tokens)`` float mask (1.0 = attend)."""
    return np.tril(np.ones((tokens, tokens)))


def masked_softmax(scores: Tensor, mask, exp_fn=None, reciprocal_fn=None) -> Tensor:
    """Numerically stable softmax over the last axis, restricted to ``mask``.

    ``mask`` is a float array/Tensor broadcastable to ``scores`` with 1.0 at
    valid slots and 0.0 elsewhere.  Three properties the decode stack
    depends on:

    * **stable**: the row max is subtracted before EXP, and masked slots
      are first pushed :data:`MASK_OFFSET` below their own score so the
      max lands on a valid entry for any attention-scale input — ±30
      magnitude logits survive bit-exactly (pinned by the traced-softmax
      parity test);
    * **exactly zero outside the mask**: the numerator is multiplied by the
      mask, so masked probabilities are 0.0 bit-for-bit under the exact
      EXP *and* under the pwl LUT engines (whose tables never underflow);
    * **traceable**: every step is a registry op — the max/detach subtree
      traces into the compiled graph, and when ``scores`` is built from
      constants the whole subtree constant-folds.

    ``exp_fn`` / ``reciprocal_fn`` default to the exact operators; the
    attention layers pass their suite hooks so the pwl replacements
    intercept EXP and DIV here exactly as in the encoder softmax.
    """
    if not isinstance(mask, Tensor):
        mask = Tensor(mask)
    exp_fn = exp_fn or (lambda t: t.exp())
    reciprocal_fn = reciprocal_fn or (lambda t: 1.0 / t)
    shifted = scores - (1.0 - mask) * MASK_OFFSET
    shifted = shifted - shifted.max(axis=-1, keepdims=True).detach()
    numerator = exp_fn(shifted) * mask
    denominator = numerator.sum(axis=-1, keepdims=True)
    return numerator * reciprocal_fn(denominator)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(
    logits: Tensor, targets: np.ndarray, ignore_index: Optional[int] = None
) -> Tensor:
    """Mean cross-entropy over integer class targets.

    ``logits`` has shape ``(..., num_classes)`` and ``targets`` the matching
    leading shape.  Pixels equal to ``ignore_index`` are excluded from the
    mean (the usual semantic-segmentation convention).
    """
    targets = np.asarray(targets)
    num_classes = logits.shape[-1]
    flat_logits = logits.reshape(-1, num_classes)
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        keep = flat_targets != ignore_index
        if not np.any(keep):
            raise ValueError("all targets are ignore_index; loss is undefined")
        flat_logits = flat_logits[np.where(keep)[0]]
        flat_targets = flat_targets[keep]
    log_probs = log_softmax(flat_logits, axis=-1)
    rows = np.arange(flat_targets.shape[0])
    picked = log_probs[rows, flat_targets]
    return -picked.mean()


def one_hot(targets: np.ndarray, num_classes: int) -> np.ndarray:
    """Float64 one-hot encoding of integer ``targets`` (flattened)."""
    flat = np.asarray(targets).reshape(-1)
    encoded = np.zeros((flat.shape[0], num_classes))
    encoded[np.arange(flat.shape[0]), flat] = 1.0
    return encoded


def cross_entropy_onehot(logits: Tensor, onehot: Tensor) -> Tensor:
    """Mean cross-entropy against a one-hot target tensor.

    The traceable-shape variant of :func:`cross_entropy` used by the
    compiled training step: integer labels select rows via fancy indexing,
    whose index array would be burned into a trace as a constant, so the
    compiled path feeds ``one_hot(labels)`` as a graph *input* instead and
    selects by multiply-and-reduce.  Losses and gradients are bit-identical
    to :func:`cross_entropy` for the same labels: the one-hot mask zeroes
    every non-target term exactly (``0.0 * x == ±0.0`` and the subsequent
    sum restores the picked value's bit pattern), and below the
    log-softmax both formulations propagate the identical cotangent.
    ``ignore_index`` filtering is data-dependent and stays eager-only.

    ``logits`` has shape ``(..., num_classes)``; ``onehot`` must be the
    matching flattened ``(pixels, num_classes)`` float encoding.
    """
    num_classes = logits.shape[-1]
    flat_logits = logits.reshape(-1, num_classes)
    log_probs = log_softmax(flat_logits, axis=-1)
    picked = (log_probs * onehot).sum(axis=-1)
    return -picked.mean()


# -- LSQ quantization primitives -------------------------------------------------


def lsq_quantize(
    x: Tensor, scale: Tensor, qmin: int, qmax: int, grad_scale: float = 1.0
) -> Tensor:
    """LSQ fake quantization [Esser et al., ICLR 2020].

    ``x`` is divided by the learnable ``scale``, clipped to ``[qmin, qmax]``
    with straight-through rounding, then multiplied back by the scale.  The
    LSQ gradient for ``scale`` emerges from this composition of STE ops
    (clip passes the gradient only inside the interval; outside, the
    gradient flows to the scale via the boundary terms), matching the
    published formulation closely enough for fine-tuning.
    """
    scaled = x / scale
    clipped = scaled.clip(qmin, qmax)
    # Pass-through rounding on the clipped value.
    rounded = clipped.round_ste()
    # Re-attach the clipping boundary contribution for out-of-range inputs:
    # where the input saturates, the quantized value is qmin/qmax * scale and
    # its derivative w.r.t. scale is qmin/qmax.  The composition below keeps
    # that dependence because `rounded` is multiplied by `scale` again.
    #
    # The recombination only exists to attenuate *scale's gradient* (the LSQ
    # sqrt(count) heuristic), so it is skipped when no gradient can flow to
    # the scale: the identity `s*g + s*(1-g) == s` holds in exact arithmetic
    # but not bitwise in floats, and since grad_scale depends on x.size the
    # 1-ulp perturbation would make no-grad inference batch-size dependent.
    if grad_scale != 1.0 and scale.requires_grad:
        scale = scale * grad_scale + scale.detach() * (1.0 - grad_scale)
    return rounded * scale


def power_of_two_scale(alpha: Tensor) -> Tensor:
    """Snap a learnable positive scale to the nearest power of two (STE).

    Implements ``S = 2^round(log2(alpha))`` of Section 3.1 with a
    straight-through gradient on the rounding.
    """
    log_alpha = alpha.abs().log() * (1.0 / math.log(2.0))
    exponent = log_alpha.round_ste()
    # 2^e with gradient through e.
    return (exponent * math.log(2.0)).exp()
