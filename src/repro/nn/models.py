"""Miniature segmentation Transformers for the fine-tuning experiments.

Two model families mirror the paper's evaluation targets:

* :class:`MiniSegformer` — a scaled-down Segformer-B0: patch embedding,
  Transformer encoder blocks with vanilla softmax self-attention (EXP + DIV),
  GELU feed-forward networks and LayerNorm (RSQRT), followed by a light
  all-MLP decode head.  Its non-linear operator inventory is exactly the
  one Table 4 replaces: EXP, GELU, DIV, RSQRT.
* :class:`MiniEfficientViT` — a scaled-down EfficientViT-B0: depthwise-conv
  token mixing, softmax-free linear attention (DIV only) and HSWISH FFNs —
  the HSWISH + DIV inventory of Table 5.

Both operate on channels-last images ``(B, H, W, C)`` and return per-pixel
class logits ``(B, H, W, num_classes)``.

The models are deliberately small (a few tens of thousands of parameters)
so that quantization-aware fine-tuning runs in seconds on a laptop, while
keeping the exact operator data-flow of their full-size counterparts.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.backend import xp as np

from repro.nn.approx import FloatSuite, OperatorSuite
from repro.nn.attention import LinearAttention, MultiHeadSelfAttention
from repro.nn.layers import (
    DepthwiseConv2d,
    Linear,
    MLP,
    PatchEmbed,
    Upsample,
)
from repro.nn.module import Module
from repro.nn.tensor import Tensor


@dataclasses.dataclass(frozen=True)
class ModelConfig:
    """Shared structural hyper-parameters of the miniature models."""

    image_size: int = 32
    in_channels: int = 3
    num_classes: int = 5
    patch_size: int = 4
    embed_dim: int = 32
    depth: int = 2
    num_heads: int = 2
    mlp_ratio: float = 2.0
    seed: int = 0

    @property
    def tokens_per_side(self) -> int:
        return self.image_size // self.patch_size


class TransformerBlock(Module):
    """Pre-norm Transformer encoder block with pluggable operators."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        mlp_ratio: float,
        suite: OperatorSuite,
        attention_kind: str = "softmax",
        activation_kind: str = "gelu",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.norm1 = suite.layer_norm(dim)
        if attention_kind == "softmax":
            self.attention = MultiHeadSelfAttention(
                dim,
                num_heads=num_heads,
                rng=rng,
                exp_fn=suite.exp_fn(),
                reciprocal_fn=suite.reciprocal_fn(),
            )
        elif attention_kind == "linear":
            self.attention = LinearAttention(
                dim, num_heads=num_heads, rng=rng, reciprocal_fn=suite.reciprocal_fn()
            )
        else:
            raise ValueError("unknown attention kind %r" % (attention_kind,))
        self.norm2 = suite.layer_norm(dim)
        self.mlp = MLP(dim, int(dim * mlp_ratio), activation=suite.activation(activation_kind), rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.norm1(x))
        x = x + self.mlp(self.norm2(x))
        return x


class SegmentationHead(Module):
    """All-MLP decode head: per-token classification + nearest upsampling."""

    def __init__(self, dim: int, num_classes: int, upsample_factor: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.classifier = Linear(dim, num_classes, rng=rng)
        self.upsample = Upsample(upsample_factor)
        self.num_classes = num_classes

    def forward(self, tokens: Tensor, grid_h: int, grid_w: int) -> Tensor:
        logits = self.classifier(tokens)  # (B, T, num_classes)
        batch = logits.shape[0]
        logits = logits.reshape(batch, grid_h, grid_w, self.num_classes)
        return self.upsample(logits)


class SegmentationTransformer(Module):
    """Shared encoder/decoder scaffold for both model families."""

    def __init__(
        self,
        config: ModelConfig,
        suite: Optional[OperatorSuite] = None,
        attention_kind: str = "softmax",
        activation_kind: str = "gelu",
        use_dwconv: bool = False,
    ) -> None:
        super().__init__()
        suite = suite or FloatSuite()
        self.config = config
        self._compiled_model = None
        self.suite_name = suite.name
        self.attention_kind = attention_kind
        self.activation_kind = activation_kind
        self.use_dwconv = use_dwconv
        rng = np.random.default_rng(config.seed)

        self.patch_embed = PatchEmbed(
            config.in_channels, config.embed_dim, patch_size=config.patch_size, rng=rng
        )
        if use_dwconv:
            self.dwconv = DepthwiseConv2d(config.in_channels, rng=rng)
        self.blocks: List[TransformerBlock] = []
        for index in range(config.depth):
            block = TransformerBlock(
                config.embed_dim,
                config.num_heads,
                config.mlp_ratio,
                suite,
                attention_kind=attention_kind,
                activation_kind=activation_kind,
                rng=rng,
            )
            self.register_module("block%d" % index, block)
            self.blocks.append(block)
        self.final_norm = suite.layer_norm(config.embed_dim)
        self.head = SegmentationHead(
            config.embed_dim, config.num_classes, config.patch_size, rng=rng
        )

    def forward(self, images: Tensor) -> Tensor:
        x = images
        if self.use_dwconv:
            x = x + self.dwconv(x)
        grid_h, grid_w = self.patch_embed.output_grid(x.shape[1], x.shape[2])
        tokens = self.patch_embed(x)
        for block in self.blocks:
            tokens = block(tokens)
        tokens = self.final_norm(tokens)
        return self.head(tokens, grid_h, grid_w)

    def compiled(self):
        """The (lazily created) compiled-inference wrapper for this model.

        One :class:`repro.graph.executor.CompiledModel` per model instance;
        it traces per input signature on demand and re-traces automatically
        when parameters are rebound (e.g. after further training), so the
        handle stays valid across the model's lifetime.
        """
        if self._compiled_model is None:
            from repro.graph.executor import CompiledModel

            self._compiled_model = CompiledModel(self)
        return self._compiled_model

    def predict(self, images, engine: Optional[str] = None) -> np.ndarray:
        """Per-pixel argmax class prediction (no gradient tracking).

        ``engine`` selects the inference path — ``"compiled"`` replays the
        traced/optimised graph plan, ``"eager"`` runs the dynamic forward —
        and resolves through :mod:`repro.core.engine_config`
        (kwarg > context > ``REPRO_INFER_ENGINE`` > ``"eager"``).  Both
        paths return bit-identical predictions.
        """
        from repro.core.engine_config import resolve_infer_engine

        if resolve_infer_engine(engine) == "compiled":
            return self.compiled().predict(images)
        from repro.nn.tensor import Tensor, no_grad

        with no_grad():
            logits = self.forward(Tensor(images))
        return np.argmax(logits.data, axis=-1)


class MiniSegformer(SegmentationTransformer):
    """Vanilla-Transformer segmentation model (EXP, GELU, DIV, RSQRT)."""

    def __init__(self, config: ModelConfig = ModelConfig(), suite: Optional[OperatorSuite] = None) -> None:
        super().__init__(config, suite=suite, attention_kind="softmax", activation_kind="gelu",
                         use_dwconv=False)

    # The operator inventory Table 4 sweeps over.
    REPLACEABLE_OPERATORS = ("exp", "gelu", "div", "rsqrt")


class MiniEfficientViT(SegmentationTransformer):
    """Linear-attention lightweight model (HSWISH, DIV)."""

    def __init__(self, config: ModelConfig = ModelConfig(), suite: Optional[OperatorSuite] = None) -> None:
        super().__init__(config, suite=suite, attention_kind="linear", activation_kind="hswish",
                         use_dwconv=True)

    # The operator inventory Table 5 sweeps over.
    REPLACEABLE_OPERATORS = ("hswish", "div")
