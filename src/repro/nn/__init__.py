"""Numpy neural-network substrate (autograd, layers, models, training).

This package stands in for PyTorch in the fine-tuning experiments: it
provides a reverse-mode autograd engine, the layers and attention variants
needed by miniature Segformer / EfficientViT style segmentation models, LSQ
quantization-aware training, and the operator-replacement machinery that
swaps exact non-linear functions for searched pwl approximations.
"""

from repro.nn.tensor import Tensor, tensor, no_grad, zeros, ones, randn, concatenate
from repro.nn.module import Module, Parameter, Sequential
from repro.nn import functional
from repro.nn.layers import (
    Linear,
    LayerNorm,
    GELU,
    HSwish,
    ReLU,
    PatchEmbed,
    DepthwiseConv2d,
    Upsample,
    Dropout,
    MLP,
)
from repro.nn.attention import MultiHeadSelfAttention, LinearAttention
from repro.nn.quantization import (
    LSQQuantizer,
    PowerOfTwoQuantizer,
    QuantLinear,
    quantize_linears_in_place,
)
from repro.nn.approx import (
    OperatorSuite,
    FloatSuite,
    QuantizedBaselineSuite,
    PWLSuite,
    PWLActivation,
    PWLWideRange,
    PWLLayerNorm,
    QuantizedActivation,
)
from repro.nn.models import (
    ModelConfig,
    MiniSegformer,
    MiniEfficientViT,
    SegmentationTransformer,
    TransformerBlock,
)
from repro.nn.transformer import (
    CausalSelfAttention,
    DecoderBlock,
    DecoderConfig,
    KVCache,
    MiniDecoder,
    bucket_capacity,
    greedy_generate,
)
from repro.nn.optim import SGD, Adam, CosineSchedule
from repro.nn.training import Trainer, TrainingConfig, TrainingResult, prepare_quantized_model, transfer_weights
from repro.nn.metrics import mean_iou, pixel_accuracy, confusion_matrix, iou_per_class

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "zeros",
    "ones",
    "randn",
    "concatenate",
    "Module",
    "Parameter",
    "Sequential",
    "functional",
    "Linear",
    "LayerNorm",
    "GELU",
    "HSwish",
    "ReLU",
    "PatchEmbed",
    "DepthwiseConv2d",
    "Upsample",
    "Dropout",
    "MLP",
    "MultiHeadSelfAttention",
    "LinearAttention",
    "LSQQuantizer",
    "PowerOfTwoQuantizer",
    "QuantLinear",
    "quantize_linears_in_place",
    "OperatorSuite",
    "FloatSuite",
    "QuantizedBaselineSuite",
    "PWLSuite",
    "PWLActivation",
    "PWLWideRange",
    "PWLLayerNorm",
    "QuantizedActivation",
    "ModelConfig",
    "MiniSegformer",
    "MiniEfficientViT",
    "SegmentationTransformer",
    "TransformerBlock",
    "CausalSelfAttention",
    "DecoderBlock",
    "DecoderConfig",
    "KVCache",
    "MiniDecoder",
    "bucket_capacity",
    "greedy_generate",
    "SGD",
    "Adam",
    "CosineSchedule",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
    "prepare_quantized_model",
    "transfer_weights",
    "mean_iou",
    "pixel_accuracy",
    "confusion_matrix",
    "iou_per_class",
]
