"""Optimisers for the numpy training substrate."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.backend import xp as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding the parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive, got %r" % (lr,))
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def state_dict(self) -> Dict[str, Any]:
        """Resumable state: the learning rate plus per-parameter buffers.

        Subclasses with momentum/moment buffers extend this — together
        with the model's ``state_dict`` it makes a mid-run checkpoint
        bit-exact to an uninterrupted run (pinned by the resume tests).
        """
        return {"lr": self.lr}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.lr = float(state["lr"])

    def _check_buffers(self, name: str, buffers: List[Any]) -> List[Any]:
        if len(buffers) != len(self.parameters):
            raise ValueError(
                "optimizer state has %d %s buffer(s) for %d parameter(s)"
                % (len(buffers), name, len(self.parameters))
            )
        return [np.asarray(buffer, dtype=np.float64).copy() for buffer in buffers]


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["velocity"] = [velocity.copy() for velocity in self._velocity]
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self._velocity = self._check_buffers("velocity", state["velocity"])


class Adam(Optimizer):
    """Adam optimiser."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._step = 0

    def step(self) -> None:
        self._step += 1
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad ** 2
            m_hat = self._m[i] / (1 - self.beta1 ** self._step)
            v_hat = self._v[i] / (1 - self.beta2 ** self._step)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["step"] = self._step
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self._step = int(state["step"])
        self._m = self._check_buffers("m", state["m"])
        self._v = self._check_buffers("v", state["v"])


class CosineSchedule:
    """Cosine learning-rate decay over a fixed number of steps."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0) -> None:
        if total_steps < 1:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.base_lr = optimizer.lr
        self.min_lr = min_lr
        self._step = 0

    def step(self) -> float:
        """Advance one step and return the new learning rate."""
        self._step = min(self._step + 1, self.total_steps)
        progress = self._step / self.total_steps
        lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + np.cos(np.pi * progress))
        self.optimizer.lr = float(lr)
        return float(lr)

    def state_dict(self) -> Dict[str, Any]:
        """Resumable state: only the step — the decay shape is config."""
        return {"step": self._step}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        step = int(state["step"])
        if not 0 <= step <= self.total_steps:
            raise ValueError(
                "schedule step %d outside [0, %d]" % (step, self.total_steps)
            )
        self._step = step
