"""Optimisers for the numpy training substrate.

``SGD`` and ``Adam`` additionally support *traced updates* for compiled
training (:class:`repro.graph.executor.CompiledTrainStep`): ``trace_step``
emits the update rule as graph nodes mirroring the eager ``step()``
arithmetic expression for expression — same ops, same evaluation order, so
replayed updates are bit-identical — and then performs the real eager step
(the trace step *is* a training step).  Hyper-parameters that are fixed for
a run (betas, eps, momentum, weight decay) become graph constants; values
the Python side advances per step (the scheduled learning rate, Adam's
bias corrections) become 0-d array inputs fed at each replay.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.backend import xp as np

from repro.nn.module import Parameter

#: trace_step return type: (feeds, updates, advance) — per-replay input
#: sources [(vid, fn)], output rebinding [(vid, apply)], and the per-step
#: Python bookkeeping the replay must run after rebinding.
TraceStepPlan = Tuple[
    List[Tuple[int, Callable[[], Any]]],
    List[Tuple[int, Callable[[Any], None]]],
    Callable[[], None],
]


class Optimizer:
    """Base class holding the parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive, got %r" % (lr,))
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def state_dict(self) -> Dict[str, Any]:
        """Resumable state: the learning rate plus per-parameter buffers.

        Subclasses with momentum/moment buffers extend this — together
        with the model's ``state_dict`` it makes a mid-run checkpoint
        bit-exact to an uninterrupted run (pinned by the resume tests).
        """
        return {"lr": self.lr}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.lr = float(state["lr"])

    def _check_buffers(self, name: str, buffers: List[Any]) -> List[Any]:
        if len(buffers) != len(self.parameters):
            raise ValueError(
                "optimizer state has %d %s buffer(s) for %d parameter(s)"
                % (len(buffers), name, len(self.parameters))
            )
        return [np.asarray(buffer, dtype=np.float64).copy() for buffer in buffers]


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad

    def trace_step(self, tracer, param_vids: Dict[int, int]) -> TraceStepPlan:
        """Emit this step's updates as graph nodes, then run the real step.

        ``param_vids`` maps ``id(param)`` to the graph-input value id the
        parameter was pre-bound to.  Each emitted expression mirrors
        :meth:`step` exactly: ``grad + wd*p``, ``v*mu + grad``,
        ``p - lr*grad`` (as ``p + (-lr*grad)`` — IEEE-identical).  The
        learning rate is a per-replay feed so the cosine schedule keeps
        driving it from Python.
        """
        feeds: List[Tuple[int, Callable[[], Any]]] = []
        updates: List[Tuple[int, Callable[[Any], None]]] = []
        lr_vid = tracer.add_input_array()
        feeds.append((lr_vid, lambda: np.asarray(self.lr)))
        wd_vid = (
            tracer.constant(np.asarray(self.weight_decay))
            if self.weight_decay else None
        )
        momentum_vid = (
            tracer.constant(np.asarray(self.momentum)) if self.momentum else None
        )
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad_vid = tracer.grad_vid(param)
            if grad_vid is None:
                raise RuntimeError(
                    "parameter has a .grad but no captured gradient; was "
                    "backward() run under the gradient-capturing tracer?"
                )
            param_vid = param_vids[id(param)]
            if self.weight_decay:   # grad = grad + wd * param
                decay_vid = tracer.emit("mul", (wd_vid, param_vid))
                grad_vid = tracer.emit("add", (grad_vid, decay_vid))
            if self.momentum:       # velocity = velocity * mu + grad
                velocity_vid = tracer.add_input_array()
                feeds.append((velocity_vid, lambda i=index: self._velocity[i]))
                scaled_vid = tracer.emit("mul", (velocity_vid, momentum_vid))
                new_velocity = tracer.emit("add", (scaled_vid, grad_vid))
                updates.append((
                    new_velocity,
                    lambda array, i=index: self._velocity.__setitem__(i, array),
                ))
                grad_vid = new_velocity
            # param = param - lr * grad  (emitted as param + (-(lr * grad)))
            step_vid = tracer.emit("mul", (lr_vid, grad_vid))
            new_param = tracer.emit(
                "add", (param_vid, tracer.emit("neg", (step_vid,)))
            )
            updates.append((
                new_param, lambda array, p=param: setattr(p, "data", array)
            ))
        self.step()
        return feeds, updates, lambda: None

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["velocity"] = [velocity.copy() for velocity in self._velocity]
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self._velocity = self._check_buffers("velocity", state["velocity"])


class Adam(Optimizer):
    """Adam optimiser."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._step = 0

    def step(self) -> None:
        self._step += 1
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad ** 2
            m_hat = self._m[i] / (1 - self.beta1 ** self._step)
            v_hat = self._v[i] / (1 - self.beta2 ** self._step)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def trace_step(self, tracer, param_vids: Dict[int, int]) -> TraceStepPlan:
        """Emit this step's updates as graph nodes, then run the real step.

        Mirrors :meth:`step` bit-for-bit: moment updates as
        ``b*m + (1-b)*g`` (with ``g**2`` via the ``pow`` op), bias
        corrections ``1 - b**t`` fed per replay as 0-d inputs (``t`` is the
        *post*-advance step count, matching eager's increment-first order),
        and the parameter update ``p - lr*m_hat/(sqrt(v_hat)+eps)`` emitted
        as ``p + (-(lr*m_hat/(sqrt(v_hat)+eps)))`` — IEEE-identical.
        """
        feeds: List[Tuple[int, Callable[[], Any]]] = []
        updates: List[Tuple[int, Callable[[Any], None]]] = []
        lr_vid = tracer.add_input_array()
        feeds.append((lr_vid, lambda: np.asarray(self.lr)))
        correction1_vid = tracer.add_input_array()
        feeds.append((
            correction1_vid,
            lambda: np.asarray(1 - self.beta1 ** (self._step + 1)),
        ))
        correction2_vid = tracer.add_input_array()
        feeds.append((
            correction2_vid,
            lambda: np.asarray(1 - self.beta2 ** (self._step + 1)),
        ))
        beta1_vid = tracer.constant(np.asarray(self.beta1))
        omb1_vid = tracer.constant(np.asarray(1 - self.beta1))
        beta2_vid = tracer.constant(np.asarray(self.beta2))
        omb2_vid = tracer.constant(np.asarray(1 - self.beta2))
        eps_vid = tracer.constant(np.asarray(self.eps))
        wd_vid = (
            tracer.constant(np.asarray(self.weight_decay))
            if self.weight_decay else None
        )
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad_vid = tracer.grad_vid(param)
            if grad_vid is None:
                raise RuntimeError(
                    "parameter has a .grad but no captured gradient; was "
                    "backward() run under the gradient-capturing tracer?"
                )
            param_vid = param_vids[id(param)]
            if self.weight_decay:   # grad = grad + wd * param
                decay_vid = tracer.emit("mul", (wd_vid, param_vid))
                grad_vid = tracer.emit("add", (grad_vid, decay_vid))
            m_vid = tracer.add_input_array()
            feeds.append((m_vid, lambda i=index: self._m[i]))
            v_vid = tracer.add_input_array()
            feeds.append((v_vid, lambda i=index: self._v[i]))
            # m = beta1*m + (1-beta1)*grad ; v = beta2*v + (1-beta2)*grad**2
            m_new = tracer.emit("add", (
                tracer.emit("mul", (beta1_vid, m_vid)),
                tracer.emit("mul", (omb1_vid, grad_vid)),
            ))
            grad_sq = tracer.emit("pow", (grad_vid,), {"exponent": 2})
            v_new = tracer.emit("add", (
                tracer.emit("mul", (beta2_vid, v_vid)),
                tracer.emit("mul", (omb2_vid, grad_sq)),
            ))
            updates.append((
                m_new, lambda array, i=index: self._m.__setitem__(i, array)
            ))
            updates.append((
                v_new, lambda array, i=index: self._v.__setitem__(i, array)
            ))
            m_hat = tracer.emit("div", (m_new, correction1_vid))
            v_hat = tracer.emit("div", (v_new, correction2_vid))
            # param = param - lr * m_hat / (sqrt(v_hat) + eps)
            numer_vid = tracer.emit("mul", (lr_vid, m_hat))
            denom_vid = tracer.emit(
                "add", (tracer.emit("sqrt", (v_hat,)), eps_vid)
            )
            step_vid = tracer.emit("div", (numer_vid, denom_vid))
            new_param = tracer.emit(
                "add", (param_vid, tracer.emit("neg", (step_vid,)))
            )
            updates.append((
                new_param, lambda array, p=param: setattr(p, "data", array)
            ))
        self.step()

        def advance() -> None:
            self._step += 1

        return feeds, updates, advance

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["step"] = self._step
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self._step = int(state["step"])
        self._m = self._check_buffers("m", state["m"])
        self._v = self._check_buffers("v", state["v"])


class CosineSchedule:
    """Cosine learning-rate decay over a fixed number of steps."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0) -> None:
        if total_steps < 1:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.base_lr = optimizer.lr
        self.min_lr = min_lr
        self._step = 0

    def step(self) -> float:
        """Advance one step and return the new learning rate."""
        self._step = min(self._step + 1, self.total_steps)
        progress = self._step / self.total_steps
        lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + np.cos(np.pi * progress))
        self.optimizer.lr = float(lr)
        return float(lr)

    def state_dict(self) -> Dict[str, Any]:
        """Resumable state: only the step — the decay shape is config."""
        return {"step": self._step}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        step = int(state["step"])
        if not 0 <= step <= self.total_steps:
            raise ValueError(
                "schedule step %d outside [0, %d]" % (step, self.total_steps)
            )
        self._step = step
