"""Quantized decoder blocks with KV-cached autoregressive decode.

The paper's operator tables (EXP/DIV for softmax, GELU for the MLP, RSQRT
for LayerNorm) were exercised so far only inside the two encoder-style
vision models.  This module adds the decoder-side workload the ROADMAP
names — causal attention over a growing prefix — in a form every engine in
the repo can serve:

* :class:`CausalSelfAttention` — :class:`~repro.nn.attention.MultiHeadSelfAttention`
  with a causal mask, built on the same replaceable ``exp_fn`` /
  ``reciprocal_fn`` hooks, plus an incremental :meth:`~CausalSelfAttention.decode`
  that reads and extends an explicit KV cache.
* :class:`DecoderBlock` — pre-norm attention + MLP block assembled from an
  :class:`~repro.nn.approx.OperatorSuite` (PWL GELU, rsqrt-hooked
  LayerNorm), mirroring :class:`~repro.nn.models.TransformerBlock`.
* :class:`KVCache` — per-layer ``(batch, heads, capacity, head_dim)`` key
  and value arrays, zero-padded to a power-of-two **capacity bucket** so
  the compiled executor's shape-specialisation cache sees ``O(log T)``
  signatures over a ``T``-token decode instead of one per length.
* :class:`MiniDecoder` — a miniature decoder-only LM whose full-sequence
  :meth:`~MiniDecoder.forward` and single-token :meth:`~MiniDecoder.step`
  are both traceable: token/position selection is one-hot matmul against
  the embedding tables (fancy indexing would burn the indices into a trace
  as constants), the cache write is a one-hot outer-product add (unwritten
  slots see exactly ``+0.0``, preserving their bits), and the causal /
  validity masks enter as dense float inputs.

Decode parity contract: for a fixed model state, **greedy token streams
are identical** across eager/compiled × cached/uncached × dense/legacy pwl
engines (pinned by the decode parity suite).  Cached-vs-uncached *logits*
agree only to float noise — padded attention rows change numpy's pairwise
summation split points and BLAS blocking — which is why the contract is
stream-level; eager-cached vs compiled-cached logits ARE bit-identical
(the compiled plan replays the same ops on the same arrays).

The pwl operator suites calibrate their input quantizers from the first
data they see, so every decode path must observe the *same* first data:
:meth:`MiniDecoder.calibrate` runs one eager full-sequence forward over
the prompt, and :func:`greedy_generate` (and the serving tier's
``open_session``) always calls it before the first step.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, List, Optional, Sequence, Tuple

from repro.backend import xp as np

from repro.core.engine_config import resolve_decode_engine
from repro.nn import functional as F
from repro.nn.approx import FloatSuite, OperatorSuite
from repro.nn.layers import Linear, MLP
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, no_grad

OperatorHook = Any  # Tensor -> Tensor, element-wise (see nn.attention)


def bucket_capacity(length: int, max_seq: int) -> int:
    """The power-of-two cache capacity bucket holding ``length`` positions.

    Capped at ``max_seq`` (the positional table's extent), so a 1000-token
    decode re-traces ~``log2(1000)`` times — once per bucket — instead of
    once per length.
    """
    if length > max_seq:
        raise ValueError(
            "sequence length %d exceeds max_seq %d" % (length, max_seq)
        )
    capacity = 1
    while capacity < length:
        capacity *= 2
    return min(capacity, max_seq)


class KVCache:
    """Per-layer key/value prefix arrays, padded to a capacity bucket.

    ``keys[i]`` / ``values[i]`` hold layer ``i``'s projected prefix as
    ``(batch, num_heads, capacity, head_dim)`` float64 arrays; slots at or
    beyond ``length`` are zero.  ``capacity`` is always the power-of-two
    bucket of ``length`` (capped at ``max_seq``), so the traced decode
    step sees one input signature per (batch, capacity) pair.

    The cache is the decode step's *carried state*: its arrays enter the
    step as inputs and are rebound to the step's outputs afterwards
    (:meth:`update`) — the same in-place carry
    :class:`repro.graph.executor.CompiledTrainStep` uses for parameters.
    """

    __slots__ = ("keys", "values", "length", "max_seq", "batch",
                 "num_heads", "head_dim")

    def __init__(self, num_layers: int, batch: int, num_heads: int,
                 head_dim: int, max_seq: int, capacity: int = 1) -> None:
        shape = (batch, num_heads, capacity, head_dim)
        self.keys = [np.zeros(shape) for _ in range(num_layers)]
        self.values = [np.zeros(shape) for _ in range(num_layers)]
        self.length = 0
        self.max_seq = max_seq
        self.batch = batch
        self.num_heads = num_heads
        self.head_dim = head_dim

    @property
    def num_layers(self) -> int:
        return len(self.keys)

    @property
    def capacity(self) -> int:
        return self.keys[0].shape[2]

    def ensure(self, length: int) -> int:
        """Grow (re-pad) to the bucket holding ``length``; returns capacity.

        Growth copies the valid prefix into a fresh zeroed array — values
        are preserved bit-exactly, only the zero tail lengthens, so a
        bucket crossing never perturbs past attention context.
        """
        needed = bucket_capacity(length, self.max_seq)
        if needed > self.capacity:
            for arrays in (self.keys, self.values):
                for index, old in enumerate(arrays):
                    grown = np.zeros(old.shape[:2] + (needed, old.shape[3]))
                    grown[:, :, : old.shape[2], :] = old
                    arrays[index] = grown
        return self.capacity

    def arrays(self) -> List[Any]:
        """The carried-slot feed order: ``k0, v0, k1, v1, ...``."""
        feed: List[Any] = []
        for k, v in zip(self.keys, self.values):
            feed.append(k)
            feed.append(v)
        return feed

    def update(self, new_arrays: Sequence[Any]) -> None:
        """Rebind the carried slots to a step's output arrays (+1 token)."""
        if len(new_arrays) != 2 * self.num_layers:
            raise ValueError(
                "expected %d cache arrays, got %d"
                % (2 * self.num_layers, len(new_arrays))
            )
        for index in range(self.num_layers):
            self.keys[index] = new_arrays[2 * index]
            self.values[index] = new_arrays[2 * index + 1]
        self.length += 1

    def rows(self, start: int, stop: int) -> "KVCache":
        """A copy holding batch rows ``[start:stop)`` (serving split)."""
        out = KVCache(self.num_layers, stop - start, self.num_heads,
                      self.head_dim, self.max_seq, capacity=self.capacity)
        out.keys = [k[start:stop].copy() for k in self.keys]
        out.values = [v[start:stop].copy() for v in self.values]
        out.length = self.length
        return out


def stack_caches(caches: Sequence[KVCache]) -> KVCache:
    """Concatenate same-capacity caches along the batch axis (serving).

    Lengths may differ per row — the per-row position/mask inputs carry
    that — but capacities must already agree (the caller groups sessions
    by bucket).  ``length`` on the stacked cache is advisory (the max).
    """
    first = caches[0]
    for cache in caches[1:]:
        if cache.capacity != first.capacity or cache.num_layers != first.num_layers:
            raise ValueError("stack_caches requires one capacity bucket per group")
    out = KVCache(first.num_layers, sum(c.batch for c in caches),
                  first.num_heads, first.head_dim, first.max_seq,
                  capacity=first.capacity)
    out.keys = [np.concatenate([c.keys[i] for c in caches], axis=0)
                for i in range(first.num_layers)]
    out.values = [np.concatenate([c.values[i] for c in caches], axis=0)
                  for i in range(first.num_layers)]
    out.length = max(c.length for c in caches)
    return out


class CausalSelfAttention(Module):
    """Multi-head self-attention with a causal mask and a KV-cached step.

    The softmax is decomposed through :func:`repro.nn.functional.masked_softmax`
    so EXP and DIV remain separate interceptable element-wise calls (the
    operators Table 4 replaces), with masked slots zeroed *exactly* even
    under the pwl LUT engines.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int = 2,
        rng: Optional[np.random.Generator] = None,
        exp_fn: Optional[OperatorHook] = None,
        reciprocal_fn: Optional[OperatorHook] = None,
    ) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError(
                "dim %d must be divisible by num_heads %d" % (dim, num_heads)
            )
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.qkv = Linear(dim, dim * 3, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)
        self.exp_fn = exp_fn or (lambda t: t.exp())
        self.reciprocal_fn = reciprocal_fn or (lambda t: 1.0 / t)

    def _split_heads(self, x: Tensor, tokens: int) -> Tuple[Tensor, Tensor, Tensor]:
        batch = x.shape[0]
        qkv = self.qkv(x)  # (B, T, 3*D)
        qkv = qkv.reshape(batch, tokens, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, T, d)
        return qkv[0], qkv[1], qkv[2]

    def forward(self, x: Tensor) -> Tensor:
        """Full-sequence causal attention ``(B, T, D) -> (B, T, D)``."""
        batch, tokens, dim = x.shape
        q, k, v = self._split_heads(x, tokens)
        scale = 1.0 / math.sqrt(self.head_dim)
        scores = (q @ k.swapaxes(-1, -2)) * scale  # (B, H, T, T)
        mask = Tensor(F.causal_mask(tokens))       # constant (T, T)
        attention = F.masked_softmax(
            scores, mask, exp_fn=self.exp_fn, reciprocal_fn=self.reciprocal_fn
        )
        context = attention @ v  # (B, H, T, d)
        context = context.transpose(0, 2, 1, 3).reshape(batch, tokens, dim)
        return self.proj(context)

    def decode(
        self,
        x: Tensor,
        k_cache: Tensor,
        v_cache: Tensor,
        write: Tensor,
        mask: Tensor,
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """One-token attention against the cached prefix.

        ``x`` is the new token's hidden state ``(B, 1, D)``; ``k_cache`` /
        ``v_cache`` are ``(B, H, capacity, d)``; ``write`` is the one-hot
        ``(B, capacity)`` slot selector for this token's position and
        ``mask`` the ``(B, capacity)`` validity mask covering it.  Returns
        ``(context, new_k_cache, new_v_cache)``.

        The cache write is ``cache + write ⊗ token``: slots where the
        one-hot is 0.0 receive exactly ``+0.0``, so every previously
        written entry keeps its bit pattern — the carried caches never
        drift across steps.
        """
        batch = x.shape[0]
        capacity = k_cache.shape[2]
        q, k_tok, v_tok = self._split_heads(x, 1)  # (B, H, 1, d) each
        slot = write.reshape(batch, 1, capacity, 1)
        new_k = k_cache + slot * k_tok  # (B, H, capacity, d)
        new_v = v_cache + slot * v_tok
        scale = 1.0 / math.sqrt(self.head_dim)
        scores = (q @ new_k.swapaxes(-1, -2)) * scale  # (B, H, 1, capacity)
        attention = F.masked_softmax(
            scores,
            mask.reshape(batch, 1, 1, capacity),
            exp_fn=self.exp_fn,
            reciprocal_fn=self.reciprocal_fn,
        )
        context = attention @ new_v  # (B, H, 1, d)
        context = context.transpose(0, 2, 1, 3).reshape(batch, 1, self.dim)
        return self.proj(context), new_k, new_v


class DecoderBlock(Module):
    """Pre-norm decoder block: causal attention + MLP, suite-assembled.

    Mirrors :class:`~repro.nn.models.TransformerBlock` (same residual
    structure, same operator hooks) with causal attention and a paired
    incremental :meth:`decode`.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        mlp_ratio: float,
        suite: OperatorSuite,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.norm1 = suite.layer_norm(dim)
        self.attention = CausalSelfAttention(
            dim,
            num_heads=num_heads,
            rng=rng,
            exp_fn=suite.exp_fn(),
            reciprocal_fn=suite.reciprocal_fn(),
        )
        self.norm2 = suite.layer_norm(dim)
        self.mlp = MLP(dim, int(dim * mlp_ratio),
                       activation=suite.activation("gelu"), rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.norm1(x))
        x = x + self.mlp(self.norm2(x))
        return x

    def decode(
        self, x: Tensor, k_cache: Tensor, v_cache: Tensor,
        write: Tensor, mask: Tensor,
    ) -> Tuple[Tensor, Tensor, Tensor]:
        attended, new_k, new_v = self.attention.decode(
            self.norm1(x), k_cache, v_cache, write, mask
        )
        x = x + attended
        x = x + self.mlp(self.norm2(x))
        return x, new_k, new_v


@dataclasses.dataclass(frozen=True)
class DecoderConfig:
    """Structural hyper-parameters of the miniature decoder LM."""

    vocab_size: int = 32
    max_seq: int = 64
    embed_dim: int = 32
    depth: int = 2
    num_heads: int = 2
    mlp_ratio: float = 2.0
    seed: int = 0


class MiniDecoder(Module):
    """Miniature decoder-only LM with traceable full and incremental paths.

    Both entry points take dense float inputs only (traceability):

    * :meth:`forward` — ``(B, T, vocab)`` one-hot tokens → ``(B, T, vocab)``
      logits, causal attention over the whole sequence.  This is the
      *uncached* path: generating token ``T+1`` re-runs all ``T`` tokens,
      the O(T²) baseline the KV cache removes.
    * :meth:`step` — one token per row against a :class:`KVCache`:
      ``(token_onehot, pos_onehot, mask, k0, v0, k1, v1, ...)`` →
      ``(logits, new_k0, new_v0, ...)``.  Shape-specialised per
      (batch, cache capacity); :func:`bucket_capacity` keeps that count
      logarithmic in sequence length.
    """

    # The operator inventory the decoder exposes to the pwl sweep.
    REPLACEABLE_OPERATORS = ("exp", "gelu", "div", "rsqrt")

    def __init__(self, config: DecoderConfig = DecoderConfig(),
                 suite: Optional[OperatorSuite] = None) -> None:
        super().__init__()
        suite = suite or FloatSuite()
        self.config = config
        self.suite_name = suite.name
        self._compiled_model = None
        self._compiled_step = None
        self._calibrated = False
        rng = np.random.default_rng(config.seed)
        scale = 1.0 / math.sqrt(config.embed_dim)
        self.embed = Parameter(
            rng.normal(scale=scale, size=(config.vocab_size, config.embed_dim))
        )
        self.pos_embed = Parameter(
            rng.normal(scale=scale, size=(config.max_seq, config.embed_dim))
        )
        self.blocks: List[DecoderBlock] = []
        for index in range(config.depth):
            block = DecoderBlock(
                config.embed_dim, config.num_heads, config.mlp_ratio,
                suite, rng=rng,
            )
            self.register_module("block%d" % index, block)
            self.blocks.append(block)
        self.final_norm = suite.layer_norm(config.embed_dim)
        self.lm_head = Linear(config.embed_dim, config.vocab_size, rng=rng)

    # -- shared pieces ---------------------------------------------------------

    def _embed_sequence(self, tokens_onehot: Tensor) -> Tensor:
        batch, tokens, _vocab = tokens_onehot.shape
        x = tokens_onehot @ self.embed            # (B, T, D)
        return x + self.pos_embed[:tokens]        # static slice, traceable

    # -- full-sequence (uncached) path -----------------------------------------

    def forward(self, tokens_onehot: Tensor) -> Tensor:
        """Causal logits over a one-hot token batch ``(B, T, vocab)``."""
        x = self._embed_sequence(tokens_onehot)
        for block in self.blocks:
            x = block(x)
        x = self.final_norm(x)
        return self.lm_head(x)

    # -- incremental (cached) path ---------------------------------------------

    def step(self, token_onehot: Tensor, pos_onehot: Tensor,
             mask: Tensor, *caches: Tensor) -> Tuple[Tensor, ...]:
        """Advance one token per row against the carried KV caches.

        ``token_onehot`` is ``(B, vocab)``, ``pos_onehot`` ``(B, max_seq)``
        (one-hot at each row's write position = its current length),
        ``mask`` ``(B, capacity)`` with 1.0 at slots ``<= position``, and
        ``caches`` the ``2 * depth`` cache arrays in
        :meth:`KVCache.arrays` order.  Returns ``(logits, *new_caches)``
        with ``logits`` ``(B, vocab)``.

        Rows are independent — sessions at different lengths batch into
        one step as long as they share a capacity bucket, which is exactly
        how the serving tier drains decode groups.
        """
        if len(caches) != 2 * len(self.blocks):
            raise ValueError(
                "expected %d cache tensors, got %d"
                % (2 * len(self.blocks), len(caches))
            )
        batch = token_onehot.shape[0]
        capacity = caches[0].shape[2]
        dim = self.config.embed_dim
        x = (token_onehot @ self.embed).reshape(batch, 1, dim)
        x = x + (pos_onehot @ self.pos_embed).reshape(batch, 1, dim)
        # The write selector is the position one-hot restricted to the
        # cache window — a static slice, so it traces cleanly.
        write = pos_onehot[:, :capacity]
        outputs: List[Tensor] = []
        for index, block in enumerate(self.blocks):
            x, new_k, new_v = block.decode(
                x, caches[2 * index], caches[2 * index + 1], write, mask
            )
            outputs.append(new_k)
            outputs.append(new_v)
        x = self.final_norm(x)
        logits = self.lm_head(x).reshape(batch, self.config.vocab_size)
        return (logits,) + tuple(outputs)

    # -- cache / engine plumbing -----------------------------------------------

    def new_cache(self, batch: int = 1, capacity: int = 1) -> KVCache:
        """An empty carried cache for ``batch`` concurrent sequences."""
        config = self.config
        return KVCache(
            num_layers=config.depth,
            batch=batch,
            num_heads=config.num_heads,
            head_dim=config.embed_dim // config.num_heads,
            max_seq=config.max_seq,
            capacity=capacity,
        )

    def calibrate(self, prompt_tokens: Sequence[int]) -> None:
        """Initialise operator quantizers from one eager prompt forward.

        The pwl suites' input quantizers calibrate from the first data
        they observe; running this identical full-sequence forward first
        pins every decode path (cached/uncached, eager/compiled) to the
        same power-of-two scales — a precondition of stream parity.
        Idempotent: later calls are no-ops.
        """
        if self._calibrated:
            return
        onehot = encode_tokens(prompt_tokens, self.config.vocab_size)
        with no_grad():
            self.forward(Tensor(onehot[None, :, :]))
        self._calibrated = True

    def compiled(self):
        """Lazy :class:`~repro.graph.executor.CompiledModel` over ``forward``."""
        if self._compiled_model is None:
            from repro.graph.executor import CompiledModel

            self._compiled_model = CompiledModel(self)
        return self._compiled_model

    def compiled_step(self):
        """Lazy :class:`~repro.graph.executor.CompiledDecodeStep` over ``step``."""
        if self._compiled_step is None:
            from repro.graph.executor import CompiledDecodeStep

            self._compiled_step = CompiledDecodeStep(self)
        return self._compiled_step

    def eager_step(self, token_onehot: Any, pos_onehot: Any, mask: Any,
                   cache_arrays: Sequence[Any]) -> Tuple[Any, List[Any]]:
        """The dynamic-graph step on raw arrays: ``(logits, new_caches)``."""
        with no_grad():
            outputs = self.step(
                Tensor(token_onehot), Tensor(pos_onehot), Tensor(mask),
                *[Tensor(array) for array in cache_arrays]
            )
        return outputs[0].data, [tensor.data for tensor in outputs[1:]]


# -- decode loops ---------------------------------------------------------------


def encode_tokens(tokens: Sequence[int], vocab_size: int) -> np.ndarray:
    """``(len(tokens), vocab_size)`` float one-hot encoding."""
    return F.one_hot(np.asarray(tokens, dtype=np.int64), vocab_size)


def step_inputs(model: MiniDecoder, tokens: Sequence[int],
                positions: Sequence[int], capacity: int
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build one step's ``(token_onehot, pos_onehot, mask)`` row batch."""
    config = model.config
    token_onehot = encode_tokens(tokens, config.vocab_size)
    pos_onehot = F.one_hot(
        np.asarray(positions, dtype=np.int64), config.max_seq
    )
    mask = np.zeros((len(positions), capacity))
    for row, position in enumerate(positions):
        mask[row, : position + 1] = 1.0
    return token_onehot, pos_onehot, mask


def _cached_stepper(model: MiniDecoder, engine: Optional[str]):
    """The array-level step callable for the resolved decode engine."""
    if resolve_decode_engine(engine) == "compiled":
        compiled = model.compiled_step()
        return lambda *arrays_and_cache: compiled.step(*arrays_and_cache)
    return lambda token, pos, mask, cache_arrays: model.eager_step(
        token, pos, mask, cache_arrays
    )


def greedy_generate(
    model: MiniDecoder,
    prompt: Sequence[int],
    num_new: int,
    cache: bool = True,
    engine: Optional[str] = None,
) -> List[int]:
    """Greedy-decode ``num_new`` tokens after ``prompt``; returns them.

    ``cache=True`` runs the O(T) KV-cached loop — the prompt is consumed
    one :meth:`MiniDecoder.step` at a time (prefill-by-decode), then each
    generated token feeds the next step.  ``cache=False`` re-runs the full
    causal forward per generated token (the O(T²) baseline).  ``engine``
    resolves through :func:`repro.core.engine_config.resolve_decode_engine`
    (kwarg > context > ``REPRO_DECODE_ENGINE`` > ``"eager"``); for the
    uncached path ``"compiled"`` routes each full forward through the
    model's :meth:`~MiniDecoder.compiled` wrapper (one specialisation per
    sequence length — the pathology motivating the cache).

    Greedy streams are identical across all four combinations for the
    same model state (the decode parity contract).
    """
    prompt = [int(token) for token in prompt]
    if not prompt:
        raise ValueError("prompt must contain at least one token")
    total = len(prompt) + num_new
    if total > model.config.max_seq:
        raise ValueError(
            "prompt %d + num_new %d exceeds max_seq %d"
            % (len(prompt), num_new, model.config.max_seq)
        )
    model.calibrate(prompt)
    resolved = resolve_decode_engine(engine)

    if not cache:
        tokens = list(prompt)
        generated: List[int] = []
        compiled = model.compiled() if resolved == "compiled" else None
        for _ in range(num_new):
            onehot = encode_tokens(tokens, model.config.vocab_size)[None]
            if compiled is not None:
                logits = compiled(onehot)
            else:
                with no_grad():
                    logits = model(Tensor(onehot)).data
            token = int(np.argmax(logits[0, -1]))
            generated.append(token)
            tokens.append(token)
        return generated

    stepper = _cached_stepper(model, resolved)
    kv = model.new_cache(batch=1)
    tokens = list(prompt)
    generated = []
    for index in range(total - 1):
        capacity = kv.ensure(index + 1)
        token_onehot, pos_onehot, mask = step_inputs(
            model, [tokens[index]], [index], capacity
        )
        logits, new_cache = stepper(token_onehot, pos_onehot, mask, kv.arrays())
        kv.update(new_cache)
        if index >= len(prompt) - 1:
            token = int(np.argmax(logits[0]))
            generated.append(token)
            tokens.append(token)
    return generated
