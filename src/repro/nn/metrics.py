"""Segmentation metrics: confusion matrix, mIoU, pixel accuracy."""

from __future__ import annotations

from typing import Optional

from repro.backend import xp as np


def confusion_matrix(
    predictions: np.ndarray, targets: np.ndarray, num_classes: int,
    ignore_index: Optional[int] = None,
) -> np.ndarray:
    """Class-by-class confusion matrix over all pixels."""
    preds = np.asarray(predictions).reshape(-1)
    labels = np.asarray(targets).reshape(-1)
    if preds.shape != labels.shape:
        raise ValueError("predictions and targets must align, got %s vs %s"
                         % (preds.shape, labels.shape))
    if ignore_index is not None:
        keep = labels != ignore_index
        preds, labels = preds[keep], labels[keep]
    valid = (labels >= 0) & (labels < num_classes) & (preds >= 0) & (preds < num_classes)
    preds, labels = preds[valid], labels[valid]
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, preds), 1)
    return matrix


def iou_per_class(matrix: np.ndarray) -> np.ndarray:
    """Intersection-over-union per class; NaN for classes absent from both."""
    intersection = np.diag(matrix).astype(np.float64)
    union = matrix.sum(axis=0) + matrix.sum(axis=1) - np.diag(matrix)
    with np.errstate(divide="ignore", invalid="ignore"):
        iou = np.where(union > 0, intersection / union, np.nan)
    return iou


def mean_iou(
    predictions: np.ndarray, targets: np.ndarray, num_classes: int,
    ignore_index: Optional[int] = None,
) -> float:
    """Mean IoU over classes present in predictions or targets (the paper's metric)."""
    matrix = confusion_matrix(predictions, targets, num_classes, ignore_index)
    iou = iou_per_class(matrix)
    if np.all(np.isnan(iou)):
        return 0.0
    return float(np.nanmean(iou))


def pixel_accuracy(
    predictions: np.ndarray, targets: np.ndarray, ignore_index: Optional[int] = None
) -> float:
    """Fraction of correctly classified pixels."""
    preds = np.asarray(predictions).reshape(-1)
    labels = np.asarray(targets).reshape(-1)
    if ignore_index is not None:
        keep = labels != ignore_index
        preds, labels = preds[keep], labels[keep]
    if labels.size == 0:
        return 0.0
    return float(np.mean(preds == labels))
