"""Operator-replacement modules: exact, quantized-exact and pwl-approximated.

The fine-tuning experiments (Tables 4 and 5) compare a quantized baseline
model against the same model with one or more non-linear operators replaced
by an 8-entry pwl produced by NN-LUT, GQA-LUT w/o RM or GQA-LUT w/ RM.  To
keep the model definitions independent of that choice, models are built
against an :class:`OperatorSuite` that supplies:

* activation modules (GELU / HSWISH),
* the EXP and DIV hooks used inside attention,
* the LayerNorm flavour (exact or RSQRT-approximated).

Three suites are provided: :class:`FloatSuite` (FP training),
:class:`QuantizedBaselineSuite` (INT8 LSQ with power-of-two scales in front
of every non-linear operator — the "None" row of Tables 4/5), and
:class:`PWLSuite` (selected operators routed through their searched pwl).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.backend import xp as np

from repro.core.engine_config import resolve_pwl_engine
from repro.core.lut import DenseLUT, QuantizedLUT, dense_lut_for
from repro.core.pwl import PiecewiseLinear
from repro.functions.nonlinear import NonLinearFunction
from repro.functions.registry import get_function
from repro.nn import functional as F
from repro.nn.layers import GELU, HSwish, LayerNorm
from repro.nn.module import Module, Parameter
from repro.nn.quantization import PowerOfTwoQuantizer
from repro.nn.tensor import Tensor, is_grad_enabled, is_tracing
from repro.quant.quantizer import QuantSpec
from repro.scaling.multi_range import MultiRangePWL, MultiRangeScaling, default_multi_range

class PWLElementwise(Module):
    """Element-wise pwl application with segment-slope gradients."""

    def __init__(self, forward_fn: Callable[[np.ndarray], np.ndarray],
                 slope_fn: Callable[[np.ndarray], np.ndarray]) -> None:
        super().__init__()
        self._forward_fn = forward_fn
        self._slope_fn = slope_fn

    def forward(self, x: Tensor) -> Tensor:
        return x.apply_elementwise(self._forward_fn, self._slope_fn, name="pwl_elementwise")


class QuantizedActivation(Module):
    """Exact non-linear operator preceded by a power-of-two LSQ quantizer.

    This is the operator flavour used by the quantized *baseline* model: the
    input is INT8-quantized with a power-of-two scale (Section 3.1) and the
    exact function is applied to the dequantized value.
    """

    def __init__(self, name: str, bits: int = 8) -> None:
        super().__init__()
        self.name = name
        self.quantizer = PowerOfTwoQuantizer(bits=bits, signed=True)
        self._exact = {"gelu": F.gelu, "hswish": F.hswish, "exp": lambda t: t.exp()}[name]

    def forward(self, x: Tensor) -> Tensor:
        return self._exact(self.quantizer(x))


class PWLActivation(Module):
    """Scale-dependent operator (GELU / HSWISH / EXP) replaced by a pwl.

    The input passes through a power-of-two LSQ quantizer; the pwl is then
    evaluated through the quantization-aware pipeline of Fig. 1b at the
    quantizer's current scale.  The backward pass uses the slope of the
    selected segment, which is the exact derivative of the deployed
    approximation.
    """

    def __init__(
        self,
        name: str,
        pwl: PiecewiseLinear,
        bits: int = 8,
        frac_bits: int = 5,
        engine: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.name = name
        self.pwl = pwl
        self.bits = bits
        self.frac_bits = frac_bits
        self.engine = resolve_pwl_engine(engine)
        self.quantizer = PowerOfTwoQuantizer(bits=bits, signed=True)
        self._spec = QuantSpec(bits=bits, signed=True)
        self._dense_table: Optional[DenseLUT] = None
        self._dense_version = -1

    def _lut(self) -> QuantizedLUT:
        scale = self.quantizer.current_scale()
        return QuantizedLUT(
            pwl=self.pwl,
            scale=scale,
            spec=self._spec,
            frac_bits=self.frac_bits,
        )

    def _dense(self) -> DenseLUT:
        """The dense table for the quantizer's current scale.

        Invalidation is driven by the quantizer's scale version, so the
        table survives across training steps and is only rebuilt (or
        re-fetched from the process-wide cache) when the power-of-two scale
        actually steps to a new exponent.
        """
        version = self.quantizer.scale_version()
        if self._dense_table is None or self._dense_version != version:
            self._dense_table = dense_lut_for(
                self.pwl,
                self.quantizer.current_scale(),
                spec=self._spec,
                frac_bits=self.frac_bits,
            )
            self._dense_version = version
        return self._dense_table

    def swap_pwl(self, pwl: PiecewiseLinear) -> PiecewiseLinear:
        """Replace the deployed approximation; returns the previous one.

        Drops the cached dense table so the next forward rebuilds it from
        the new pwl at the quantizer's current (unchanged) scale — the
        rolling hot-swap path must never serve a stale table.
        """
        previous = self.pwl
        self.pwl = pwl
        self._dense_table = None
        self._dense_version = -1
        return previous

    def forward(self, x: Tensor) -> Tensor:
        if not self.quantizer.initialised:
            self.quantizer.initialise_from(x.data)
        kernel = "pwl[%s]" % self.name
        if self.engine == "dense":
            table = self._dense()
            if is_tracing() or (is_grad_enabled() and x.requires_grad):
                # Under tracing the fused dispatch keeps the lookup on the
                # recorded apply_op path (the graph fusion pass rewrites it
                # to the output-only gather); elsewhere the no-grad branch
                # below skips the Tensor/op machinery entirely.
                return x.apply_elementwise_fused(table.lookup_with_slope, name=kernel)
            return Tensor(table(x.data))
        lut = self._lut()

        def forward_fn(data: np.ndarray) -> np.ndarray:
            return lut(data)

        def slope_fn(data: np.ndarray) -> np.ndarray:
            q = np.clip(np.round(data / lut.scale), lut.spec.qmin, lut.spec.qmax)
            idx = lut.segment_index(q)
            return lut.stored_slopes[idx]

        return x.apply_elementwise(forward_fn, slope_fn, name=kernel)


class PWLWideRange(Module):
    """Wide-range operator (DIV / RSQRT) replaced by a multi-range pwl."""

    def __init__(
        self,
        name: str,
        pwl: PiecewiseLinear,
        scaling: Optional[MultiRangeScaling] = None,
        frac_bits: int = 5,
        engine: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.name = name
        self.engine = resolve_pwl_engine(engine)
        self.scaling = scaling or default_multi_range(name)
        self.wrapped = MultiRangePWL(pwl=pwl, scaling=self.scaling, frac_bits=frac_bits)

    def swap_pwl(self, pwl: PiecewiseLinear) -> PiecewiseLinear:
        """Replace the deployed approximation; returns the previous one."""
        previous = self.wrapped.pwl
        self.wrapped = MultiRangePWL(
            pwl=pwl, scaling=self.scaling, frac_bits=self.wrapped.frac_bits
        )
        return previous

    def forward(self, x: Tensor) -> Tensor:
        wrapped = self.wrapped
        kernel = "pwl_wide[%s]" % self.name
        if self.engine == "dense":
            # Wide-range inputs are not integer codes, so there is no dense
            # table; the engine win here is the fused single-classification
            # pass that produces output and slope together.
            if is_tracing() or (is_grad_enabled() and x.requires_grad):
                return x.apply_elementwise_fused(wrapped.lookup_with_slope, name=kernel)
            return Tensor(wrapped.lookup(x.data))
        fxp = wrapped.fxp_pwl

        def forward_fn(data: np.ndarray) -> np.ndarray:
            return wrapped(data)

        def slope_fn(data: np.ndarray) -> np.ndarray:
            # d/dx [ factor * pwl(scale * x) ] = factor * slope * scale; the
            # input scale equals factor**(1/rescale_power) only for DIV, so
            # it comes explicitly from the classification.
            scaled, factor, input_scale = wrapped.scaling.rescale_input_with_scale(data)
            idx = fxp.segment_index(scaled)
            return factor * fxp.slopes[idx] * input_scale

        return x.apply_elementwise(forward_fn, slope_fn, name=kernel)


class PWLLayerNorm(Module):
    """LayerNorm whose inverse standard deviation uses a pwl RSQRT."""

    def __init__(self, num_features: int, rsqrt_module: Module, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.rsqrt = rsqrt_module

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = self.rsqrt(var + self.eps)
        return (x - mean) * inv_std * self.weight + self.bias


# -- Operator suites -----------------------------------------------------------------


class OperatorSuite:
    """Factory for the operator flavours a model should be built with."""

    name = "base"

    def activation(self, kind: str) -> Module:  # pragma: no cover - interface
        raise NotImplementedError

    def exp_fn(self) -> Callable[[Tensor], Tensor]:  # pragma: no cover - interface
        raise NotImplementedError

    def reciprocal_fn(self) -> Callable[[Tensor], Tensor]:  # pragma: no cover - interface
        raise NotImplementedError

    def layer_norm(self, num_features: int) -> Module:  # pragma: no cover - interface
        raise NotImplementedError


class FloatSuite(OperatorSuite):
    """Exact floating-point operators (used for pre-training)."""

    name = "float"

    def activation(self, kind: str) -> Module:
        return {"gelu": GELU, "hswish": HSwish}[kind]()

    def exp_fn(self) -> Callable[[Tensor], Tensor]:
        return lambda t: t.exp()

    def reciprocal_fn(self) -> Callable[[Tensor], Tensor]:
        return lambda t: 1.0 / t

    def layer_norm(self, num_features: int) -> Module:
        return LayerNorm(num_features)


class QuantizedBaselineSuite(OperatorSuite):
    """INT8 baseline: exact operators behind power-of-two input quantizers.

    Matches the "None" replacement row of Tables 4 and 5: the network is
    quantized (weights/activations via LSQ elsewhere), the non-linear
    operator inputs are quantized with power-of-two scales, but the
    operators themselves are still exact.
    """

    name = "quant-baseline"

    def __init__(self, bits: int = 8) -> None:
        self.bits = bits

    def activation(self, kind: str) -> Module:
        return QuantizedActivation(kind, bits=self.bits)

    def exp_fn(self) -> Callable[[Tensor], Tensor]:
        op = QuantizedActivation("exp", bits=self.bits)
        return op

    def reciprocal_fn(self) -> Callable[[Tensor], Tensor]:
        return lambda t: 1.0 / t

    def layer_norm(self, num_features: int) -> Module:
        return LayerNorm(num_features)


@dataclasses.dataclass
class PWLSuite(OperatorSuite):
    """Operators replaced by searched pwl approximations.

    Parameters
    ----------
    approximations:
        Mapping from operator name ("gelu", "hswish", "exp", "div",
        "rsqrt") to the searched FXP :class:`PiecewiseLinear`.
    replace:
        Which operators to actually replace; the rest fall back to the
        quantized-baseline behaviour.  This directly encodes the rows of
        Tables 4 and 5 ("EXP only", "GELU only", ..., "Altogether").
    bits, frac_bits:
        Deployment precision of the pwl units.
    engine:
        Operator inference engine: ``"dense"`` (precomputed gather tables,
        fused forward/backward) or ``"legacy"`` (per-pass Fig. 1b pipeline).
        Seeded fine-tuning runs are bit-identical across engines.  ``None``
        (the default) resolves through :mod:`repro.core.engine_config`
        (context > env > ``"dense"``) when the suite is constructed.
    """

    approximations: Dict[str, PiecewiseLinear]
    replace: Set[str] = dataclasses.field(default_factory=set)
    bits: int = 8
    frac_bits: int = 5
    name: str = "pwl"
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        self.engine = resolve_pwl_engine(self.engine)

    def _should_replace(self, op: str) -> bool:
        return op in self.replace and op in self.approximations

    def activation(self, kind: str) -> Module:
        if self._should_replace(kind):
            return PWLActivation(kind, self.approximations[kind], bits=self.bits,
                                 frac_bits=self.frac_bits, engine=self.engine)
        return QuantizedActivation(kind, bits=self.bits)

    def exp_fn(self) -> Callable[[Tensor], Tensor]:
        if self._should_replace("exp"):
            return PWLActivation("exp", self.approximations["exp"], bits=self.bits,
                                 frac_bits=self.frac_bits, engine=self.engine)
        return QuantizedActivation("exp", bits=self.bits)

    def reciprocal_fn(self) -> Callable[[Tensor], Tensor]:
        if self._should_replace("div"):
            return PWLWideRange("div", self.approximations["div"],
                                frac_bits=self.frac_bits, engine=self.engine)
        return lambda t: 1.0 / t

    def layer_norm(self, num_features: int) -> Module:
        if self._should_replace("rsqrt"):
            rsqrt = PWLWideRange("rsqrt", self.approximations["rsqrt"],
                                 frac_bits=self.frac_bits, engine=self.engine)
            return PWLLayerNorm(num_features, rsqrt)
        return LayerNorm(num_features)


def swap_lut_tables(
    model: Module, tables: Dict[str, PiecewiseLinear]
) -> Dict[str, PiecewiseLinear]:
    """Hot-swap deployed pwl approximations by operator name across ``model``.

    Every :class:`PWLActivation` / :class:`PWLWideRange` whose ``name`` is
    a key of ``tables`` gets the new approximation (cached dense tables are
    dropped so the next forward rebuilds from the new pwl).  Returns the
    previous table per name, so a failed rolling swap can restore them
    bit-exactly.  A name matching no module raises ``KeyError`` — a swap
    aimed at an operator the model does not deploy must fail loudly, not
    silently serve the old table.  The check runs *before* any module is
    touched, so a rejected swap is atomic: either every named table is
    live afterwards or none is.
    """
    matched: List = []
    for module in model.modules():
        if isinstance(module, (PWLActivation, PWLWideRange)) and module.name in tables:
            matched.append(module)
    deployed = {module.name for module in matched}
    unknown = sorted(set(tables) - deployed)
    if unknown:
        raise KeyError(
            "no deployed pwl module named %s in the model "
            "(deployed: %s)" % (unknown, sorted(deployed))
        )
    previous: Dict[str, PiecewiseLinear] = {}
    for module in matched:
        old = module.swap_pwl(tables[module.name])
        previous.setdefault(module.name, old)
    return previous
