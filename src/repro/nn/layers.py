"""Neural-network layers for the miniature Transformer models.

Images follow the channels-last convention ``(batch, height, width,
channels)`` and token sequences are ``(batch, tokens, channels)``; the patch
embedding and upsampling layers convert between them.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.backend import xp as np

from repro.nn import functional as F
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, apply_op


def _kaiming_init(rng: np.random.Generator, fan_in: int, shape) -> np.ndarray:
    scale = math.sqrt(2.0 / max(fan_in, 1))
    return rng.standard_normal(shape) * scale


class Linear(Module):
    """Affine projection ``y = x W + b`` over the last dimension."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_kaiming_init(rng, in_features, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalisation over the last (channel) dimension.

    The inverse standard deviation is the RSQRT operator the paper replaces
    with a pwl; :class:`repro.nn.approx.PWLLayerNorm` swaps that step out.
    """

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, self.eps)


class GELU(Module):
    """GELU activation module (exact graph-differentiable version)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class HSwish(Module):
    """Hard-swish activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.hswish(x)


class ReLU(Module):
    """ReLU activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class PatchEmbed(Module):
    """Non-overlapping patch embedding for channels-last images.

    Splits ``(B, H, W, C)`` into ``patch_size x patch_size`` patches and
    projects each to ``embed_dim``, producing ``(B, H/p * W/p, embed_dim)``.
    """

    def __init__(
        self,
        in_channels: int,
        embed_dim: int,
        patch_size: int = 4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.patch_size = patch_size
        self.in_channels = in_channels
        self.embed_dim = embed_dim
        self.proj = Linear(in_channels * patch_size * patch_size, embed_dim, rng=rng)

    def output_grid(self, height: int, width: int) -> Tuple[int, int]:
        if height % self.patch_size or width % self.patch_size:
            raise ValueError(
                "image size (%d, %d) not divisible by patch size %d"
                % (height, width, self.patch_size)
            )
        return height // self.patch_size, width // self.patch_size

    def forward(self, x: Tensor) -> Tensor:
        batch, height, width, channels = x.shape
        gh, gw = self.output_grid(height, width)
        p = self.patch_size
        patches = x.reshape(batch, gh, p, gw, p, channels)
        patches = patches.transpose(0, 1, 3, 2, 4, 5)
        patches = patches.reshape(batch, gh * gw, p * p * channels)
        return self.proj(patches)


class DepthwiseConv2d(Module):
    """3x3 depthwise convolution on channels-last images (stride 1, same pad).

    Lightweight Transformer variants (EfficientViT-style) mix tokens locally
    with depthwise convolutions; this implementation shifts-and-adds the
    nine taps, which keeps the autograd graph small.
    """

    def __init__(self, channels: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.channels = channels
        self.weight = Parameter(rng.standard_normal((3, 3, channels)) * (1.0 / 3.0))
        self.bias = Parameter(np.zeros(channels))

    def forward(self, x: Tensor) -> Tensor:
        batch, height, width, channels = x.shape
        if channels != self.channels:
            raise ValueError("expected %d channels, got %d" % (self.channels, channels))
        # Accumulate the nine tap contributions by shifting slices of x into
        # a single shared canvas ("same" zero padding falls out naturally);
        # one full-size allocation per forward instead of one per tap.
        contributions = []
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                src_y = slice(max(0, -dy), height - max(0, dy))
                src_x = slice(max(0, -dx), width - max(0, dx))
                dst_y = slice(max(0, dy), height - max(0, -dy))
                dst_x = slice(max(0, dx), width - max(0, -dx))
                tap = self.weight[dy + 1, dx + 1]
                contributions.append((x[:, src_y, src_x, :] * tap, dst_y, dst_x))
        out = _scatter_sum(contributions, (batch, height, width, channels))
        return out + self.bias


def _scatter_sum(
    contributions: Sequence[Tuple[Tensor, slice, slice]], shape: Tuple[int, ...]
) -> Tensor:
    """Sum spatially shifted contributions into one zero canvas of ``shape``.

    Forward adds every contribution in place at its destination slices;
    backward routes each contribution the gradient slice it landed on.
    Dispatches to the variadic ``scatter_sum`` registry op.
    """
    tensors = tuple(tensor for tensor, _, _ in contributions)
    slices = tuple((y_slice, x_slice) for _, y_slice, x_slice in contributions)
    return apply_op("scatter_sum", *tensors, slices=slices, shape=shape)


class Upsample(Module):
    """Nearest-neighbour spatial upsampling for channels-last images."""

    def __init__(self, factor: int) -> None:
        super().__init__()
        if factor < 1:
            raise ValueError("factor must be >= 1, got %d" % factor)
        self.factor = factor

    def forward(self, x: Tensor) -> Tensor:
        if self.factor == 1:
            return x
        _, height, width, _ = x.shape
        f = self.factor
        idx_y = np.repeat(np.arange(height), f)
        idx_x = np.repeat(np.arange(width), f)
        # Broadcast the row/column indices against each other so both axes
        # replicate in a single fancy-index gather (one graph node instead
        # of two chained full-size gathers).
        return x[:, idx_y[:, None], idx_x[None, :], :]


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1), got %r" % (p,))
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * mask


class MLP(Module):
    """Transformer feed-forward network with a configurable activation."""

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        activation: Optional[Module] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.fc1 = Linear(dim, hidden_dim, rng=rng)
        self.act = activation or GELU()
        self.fc2 = Linear(hidden_dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.act(self.fc1(x)))
