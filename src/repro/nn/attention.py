"""Attention mechanisms.

Two flavours are implemented, matching the two evaluated model families:

* :class:`MultiHeadSelfAttention` — vanilla softmax attention (Segformer
  style); its Softmax contains the EXP and DIV operators the paper replaces.
* :class:`LinearAttention` — softmax-free linear attention (EfficientViT
  style); it contains only a DIV (the normalisation by the key aggregate).

Both expose ``exp_fn`` / ``div_fn`` hooks so the pwl-replacement modules can
swap the exact operators for their LUT approximations without touching the
attention algebra.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.backend import xp as np

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor

# An operator hook takes and returns a Tensor, element-wise.
OperatorHook = Callable[[Tensor], Tensor]


def _default_exp(x: Tensor) -> Tensor:
    return x.exp()


def _default_reciprocal(x: Tensor) -> Tensor:
    return 1.0 / x


class MultiHeadSelfAttention(Module):
    """Vanilla multi-head self-attention with replaceable EXP / DIV kernels.

    The Softmax is decomposed explicitly into ``exp(x - max)`` followed by a
    multiplication with the reciprocal of the row sum, so the EXP and DIV
    operators appear as separate element-wise calls that the approximation
    layer can intercept (exactly the operators Table 4 replaces).
    """

    def __init__(
        self,
        dim: int,
        num_heads: int = 2,
        rng: Optional[np.random.Generator] = None,
        exp_fn: Optional[OperatorHook] = None,
        reciprocal_fn: Optional[OperatorHook] = None,
    ) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError("dim %d must be divisible by num_heads %d" % (dim, num_heads))
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.qkv = Linear(dim, dim * 3, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)
        self.exp_fn: OperatorHook = exp_fn or _default_exp
        self.reciprocal_fn: OperatorHook = reciprocal_fn or _default_reciprocal

    def forward(self, x: Tensor) -> Tensor:
        batch, tokens, dim = x.shape
        qkv = self.qkv(x)  # (B, T, 3*D)
        qkv = qkv.reshape(batch, tokens, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, T, d)
        q, k, v = qkv[0], qkv[1], qkv[2]

        scale = 1.0 / math.sqrt(self.head_dim)
        scores = (q @ k.swapaxes(-1, -2)) * scale  # (B, H, T, T)

        # Softmax decomposed into EXP and DIV so both are interceptable.
        shifted = scores - scores.max(axis=-1, keepdims=True).detach()
        numerator = self.exp_fn(shifted)
        denominator = numerator.sum(axis=-1, keepdims=True)
        attention = numerator * self.reciprocal_fn(denominator)

        context = attention @ v  # (B, H, T, d)
        context = context.transpose(0, 2, 1, 3).reshape(batch, tokens, dim)
        return self.proj(context)


class LinearAttention(Module):
    """Softmax-free linear attention with a ReLU feature map.

    Follows the lightweight-ViT formulation: ``phi(q) (phi(k)^T v)``
    normalised by ``phi(q) (phi(k)^T 1)``.  The only non-linear operator of
    interest is the final DIV, exposed through ``reciprocal_fn`` (the
    operator Table 5 replaces for EfficientViT).
    """

    def __init__(
        self,
        dim: int,
        num_heads: int = 2,
        rng: Optional[np.random.Generator] = None,
        reciprocal_fn: Optional[OperatorHook] = None,
        eps: float = 1e-3,
    ) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError("dim %d must be divisible by num_heads %d" % (dim, num_heads))
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.qkv = Linear(dim, dim * 3, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)
        self.reciprocal_fn: OperatorHook = reciprocal_fn or _default_reciprocal
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        batch, tokens, dim = x.shape
        qkv = self.qkv(x)
        qkv = qkv.reshape(batch, tokens, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, T, d)
        q, k, v = qkv[0].relu(), qkv[1].relu(), qkv[2]

        # (B, H, d, d): aggregate key-value outer products once per head.
        kv = k.swapaxes(-1, -2) @ v
        numerator = q @ kv  # (B, H, T, d)
        key_sum = k.sum(axis=-2, keepdims=True)  # (B, H, 1, d)
        denominator = (q * key_sum).sum(axis=-1, keepdims=True) + self.eps  # (B, H, T, 1)
        out = numerator * self.reciprocal_fn(denominator)

        out = out.transpose(0, 2, 1, 3).reshape(batch, tokens, dim)
        return self.proj(out)
