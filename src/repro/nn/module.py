"""Module/Parameter system, a minimal mirror of ``torch.nn.Module``."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.backend import xp as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable parameter."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with parameter registration, train/eval mode and traversal."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # -- registration ----------------------------------------------------------

    def __setattr__(self, key, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[key] = value
        object.__setattr__(self, key, value)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal ---------------------------------------------------------------

    def parameters(self) -> List[Parameter]:
        """All trainable parameters of this module and its children."""
        out: List[Parameter] = []
        seen = set()
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                out.append(param)
        return out

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    # -- state ---------------------------------------------------------------------

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        """Copy of every parameter's data, keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters(prefix)}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values by dotted name; shapes must match.

        With ``strict`` (the default) the key sets must match exactly: the
        error lists every missing and every unexpected key, so a renamed
        submodule is diagnosable from the message alone.  ``strict=False``
        loads the intersection and ignores the rest (the escape hatch for
        partial checkpoints, e.g. loading a float backbone into a quantized
        model).  A shape mismatch on a key being loaded always raises.
        """
        own = dict(self.named_parameters())
        if strict:
            missing = sorted(set(own) - set(state))
            unexpected = sorted(set(state) - set(own))
            if missing or unexpected:
                raise KeyError(
                    "state dict does not match the module: "
                    "missing keys %s, unexpected keys %s "
                    "(pass strict=False to load the matching subset)"
                    % (missing, unexpected)
                )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    "shape mismatch for %s: %s vs %s" % (name, value.shape, param.data.shape)
                )
            param.data = value.copy()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- calling ---------------------------------------------------------------------

    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chains modules in registration order.

    The layers are looked up from the registered children on every call, so
    in-place surgery such as
    :func:`repro.nn.quantization.quantize_linears_in_place` (which swaps a
    child for its quantized counterpart under the same name) takes effect
    immediately.
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            self.register_module("layer%d" % index, module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self):
        return iter(self._modules.values())
