"""Multi-Range Input Scaling (Section 3.1 and Table 2).

DIV (the Softmax denominator reciprocal) and RSQRT (the LayerNorm inverse
standard deviation) receive intermediate fixed-point values whose range is
far wider than the breakpoint interval ``I_R = [R_n, R_p]`` the pwl was
searched on.  The paper splits the out-of-range region into sub-ranges
``SR_i = [SR_n_i, SR_p_i)``; inputs falling in ``SR_i`` are rescaled into
``I_R`` by a manually chosen power-of-two factor ``S'_i`` and the pwl result
is corrected by ``S'_i`` (DIV) or ``sqrt(S'_i)`` (RSQRT), exploiting

    1 / (x)      = S' * (1 / (S' x))
    1 / sqrt(x)  = sqrt(S') * (1 / sqrt(S' x))

Table 2 of the paper gives the default sub-range setups reproduced here.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence, Tuple

from repro.backend import xp as np

from repro.core.pwl import PiecewiseLinear
from repro.functions.nonlinear import NonLinearFunction
from repro.quant.fxp import fxp_round
from repro.quant.power_of_two import is_power_of_two


@dataclasses.dataclass(frozen=True)
class SubRange:
    """One sub-range ``[lower, upper)`` with its power-of-two scale ``S'``."""

    lower: float
    upper: float
    scale: float

    def __post_init__(self) -> None:
        if not self.lower < self.upper:
            raise ValueError("invalid sub-range [%r, %r)" % (self.lower, self.upper))
        if self.scale <= 0:
            raise ValueError("sub-range scale must be positive, got %r" % (self.scale,))
        if not is_power_of_two(self.scale):
            raise ValueError("sub-range scale must be a power of two, got %r" % (self.scale,))

    def contains(self, x) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        return (arr >= self.lower) & (arr < self.upper)


@dataclasses.dataclass(frozen=True)
class MultiRangeScaling:
    """The full Table 2 setup for one wide-range operator.

    Attributes
    ----------
    operator:
        Operator name ("div" or "rsqrt").
    breakpoint_interval:
        ``I_R = [R_n, R_p]`` — inputs already inside it bypass rescaling.
    sub_ranges:
        The out-of-range pieces and their scales, in ascending order.
    rescale_power:
        Output correction exponent: the pwl result is multiplied by
        ``scale ** rescale_power`` (1.0 for DIV, 0.5 for RSQRT).
    """

    operator: str
    breakpoint_interval: Tuple[float, float]
    sub_ranges: Tuple[SubRange, ...]
    rescale_power: float

    def __post_init__(self) -> None:
        lows = [sr.lower for sr in self.sub_ranges]
        if lows != sorted(lows):
            raise ValueError("sub-ranges must be sorted by lower bound")

    def classify(self, x) -> np.ndarray:
        """Return the sub-range index per element (-1 = inside ``I_R``)."""
        arr = np.asarray(x, dtype=np.float64)
        out = np.full(arr.shape, -1, dtype=np.int64)
        for i, sr in enumerate(self.sub_ranges):
            out[sr.contains(arr)] = i
        return out

    def _sweep(self, x, with_scale: bool):
        """The sub-range mask sweep, optionally also producing ``S'``.

        Single implementation shared by :meth:`rescale_input` and
        :meth:`rescale_input_with_scale`; ``input_scale`` is only allocated
        when a caller needs the derivative factor.
        """
        arr = np.asarray(x, dtype=np.float64)
        idx = self.classify(arr)
        scaled = arr.copy()
        factor = np.ones_like(arr)
        input_scale = np.ones_like(arr) if with_scale else None
        for i, sr in enumerate(self.sub_ranges):
            mask = idx == i
            scaled = np.where(mask, arr * sr.scale, scaled)
            factor = np.where(mask, sr.scale ** self.rescale_power, factor)
            if with_scale:
                input_scale = np.where(mask, sr.scale, input_scale)
        return scaled, factor, input_scale

    def rescale_input(self, x) -> Tuple[np.ndarray, np.ndarray]:
        """Map inputs into ``I_R`` and return ``(scaled_x, output_factor)``.

        ``output_factor`` is the per-element multiplier to apply to the pwl
        output (``S'^rescale_power``; 1.0 for in-range inputs).
        """
        scaled, factor, _ = self._sweep(x, with_scale=False)
        return scaled, factor

    def rescale_input_with_scale(self, x) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`rescale_input`, also returning the input scale ``S'``.

        The fused lookup and the derivative path both need the per-element
        input scale (``d/dx [factor * pwl(S' x)] = factor * slope * S'``),
        so it is produced alongside ``scaled_x`` and ``output_factor``.
        """
        return self._sweep(x, with_scale=True)

    def coverage_upper_bound(self) -> float:
        """Largest input covered (inf when the last sub-range is unbounded)."""
        if not self.sub_ranges:
            return self.breakpoint_interval[1]
        return self.sub_ranges[-1].upper


# Table 2: DIV covers I_R=(0.5, 4) plus [4, 32)/2^-3, [32, 256)/2^-6,
# [256, inf)/2^-6; RSQRT covers I_R=(0.25, 4) plus [4, 64)/2^-4,
# [64, 1024)/2^-8, [1024, inf)/2^-12.
DIV_MULTI_RANGE = MultiRangeScaling(
    operator="div",
    breakpoint_interval=(0.5, 4.0),
    sub_ranges=(
        SubRange(4.0, 32.0, 2.0 ** -3),
        SubRange(32.0, 256.0, 2.0 ** -6),
        SubRange(256.0, float("inf"), 2.0 ** -6),
    ),
    rescale_power=1.0,
)

RSQRT_MULTI_RANGE = MultiRangeScaling(
    operator="rsqrt",
    breakpoint_interval=(0.25, 4.0),
    sub_ranges=(
        SubRange(4.0, 64.0, 2.0 ** -4),
        SubRange(64.0, 1024.0, 2.0 ** -8),
        SubRange(1024.0, float("inf"), 2.0 ** -12),
    ),
    rescale_power=0.5,
)

_DEFAULTS = {"div": DIV_MULTI_RANGE, "rsqrt": RSQRT_MULTI_RANGE}


def default_multi_range(operator: str) -> MultiRangeScaling:
    """Return the Table 2 setup for ``operator`` ("div" or "rsqrt")."""
    key = operator.lower()
    if key not in _DEFAULTS:
        raise KeyError(
            "no default multi-range setup for %r; known: %s"
            % (operator, ", ".join(sorted(_DEFAULTS)))
        )
    return _DEFAULTS[key]


@dataclasses.dataclass
class MultiRangePWL:
    """A pwl wrapped with multi-range input scaling for wide-range operators.

    The breakpoints and intercepts are rounded to 8-bit FXP with
    ``frac_bits`` decimal bits (the Table 2 footnote), so the whole unit
    operates on fixed-point data of the input width.
    """

    pwl: PiecewiseLinear
    scaling: MultiRangeScaling
    frac_bits: int = 5
    total_bits: int = 8

    def __post_init__(self) -> None:
        self._fxp_pwl = PiecewiseLinear(
            breakpoints=fxp_round(self.pwl.breakpoints, self.frac_bits),
            slopes=fxp_round(self.pwl.slopes, self.frac_bits),
            intercepts=fxp_round(self.pwl.intercepts, self.frac_bits),
        )
        self._build_slot_tables()

    def _build_slot_tables(self) -> None:
        """Precompute the dense sub-range classification tables.

        The sub-range edges ``[l_0, u_0, l_1, u_1, ...]`` split the real line
        into ``2n + 1`` slots; one ``searchsorted(side="right")`` maps every
        input to its slot, and per-slot gather tables give the input scale
        and output correction factor directly — replacing one boolean
        mask + ``np.where`` sweep per sub-range.  Odd slots are inside
        sub-range ``(slot - 1) / 2``; even slots (gaps and ``I_R``) keep
        scale/factor 1.  Requires non-decreasing edges (true for any
        non-overlapping Table 2 setup); otherwise the generic mask loop is
        used.
        """
        subs = self.scaling.sub_ranges
        edges = np.array([e for sr in subs for e in (sr.lower, sr.upper)], dtype=np.float64)
        if edges.size and np.any(np.diff(edges) < 0):
            self._slot_edges = None
            self._slot_scales = None
            self._slot_factors = None
            return
        power = self.scaling.rescale_power
        scales = np.ones(2 * len(subs) + 1, dtype=np.float64)
        factors = np.ones_like(scales)
        for i, sr in enumerate(subs):
            scales[2 * i + 1] = sr.scale
            factors[2 * i + 1] = sr.scale ** power
        self._slot_edges = edges
        self._slot_scales = scales
        self._slot_factors = factors

    @property
    def fxp_pwl(self) -> PiecewiseLinear:
        """The fixed-point pwl actually evaluated by the unit."""
        return self._fxp_pwl

    def __call__(self, x) -> np.ndarray:
        """Approximate the operator over the full wide input range."""
        arr = np.asarray(x, dtype=np.float64)
        scaled, factor = self.scaling.rescale_input(arr)
        return factor * self._fxp_pwl(scaled)

    def lookup(self, x) -> np.ndarray:
        """Forward-only fast path over the precomputed slot tables.

        Bit-identical to ``self(x)`` (pinned by the engine-parity tests) but
        classifies with a single ``searchsorted`` instead of the per-sub-range
        mask sweep — the inference/no-grad path of the dense engine.  Falls
        back to the generic ``__call__`` when the slot tables are unavailable
        (overlapping sub-ranges).
        """
        if self._slot_edges is None:
            return self(x)
        arr = np.asarray(x, dtype=np.float64)
        slot = np.searchsorted(self._slot_edges, arr, side="right")
        scaled = arr * self._slot_scales[slot]
        idx = self._fxp_pwl.segment_index(scaled)
        return self._slot_factors[slot] * (
            self._fxp_pwl.slopes[idx] * scaled + self._fxp_pwl.intercepts[idx]
        )

    def lookup_with_slope(self, x) -> Tuple[np.ndarray, np.ndarray]:
        """Output and exact ``d/dx`` from a single classify/rescale pass.

        The separate forward/backward path classifies the input three times
        (rescale for the output, rescale plus classify again for the slope);
        here the sub-range classification runs once — a single
        ``searchsorted`` against the precomputed slot tables — and feeds the
        output, the output correction factor and the input scale together.
        The returned values are bit-identical to ``self(x)`` and to
        ``factor * slopes[idx] * input_scale`` from the separate path, since
        every factor is gathered from the same scalar values and combined in
        the same order (in-range inputs multiply by exactly 1.0).
        """
        arr = np.asarray(x, dtype=np.float64)
        if self._slot_edges is not None:
            slot = np.searchsorted(self._slot_edges, arr, side="right")
            input_scale = self._slot_scales[slot]
            factor = self._slot_factors[slot]
            scaled = arr * input_scale
        else:
            scaled, factor, input_scale = self.scaling.rescale_input_with_scale(arr)
        idx = self._fxp_pwl.segment_index(scaled)
        slopes = self._fxp_pwl.slopes[idx]
        outputs = factor * (slopes * scaled + self._fxp_pwl.intercepts[idx])
        return outputs, factor * slopes * input_scale

    def mse(self, function: NonLinearFunction, inputs) -> float:
        """MSE of the wrapped approximation against the exact operator."""
        arr = np.asarray(inputs, dtype=np.float64)
        approx = self(arr)
        reference = np.asarray(function(arr), dtype=np.float64)
        return float(np.mean((approx - reference) ** 2))
