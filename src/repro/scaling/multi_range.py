"""Multi-Range Input Scaling (Section 3.1 and Table 2).

DIV (the Softmax denominator reciprocal) and RSQRT (the LayerNorm inverse
standard deviation) receive intermediate fixed-point values whose range is
far wider than the breakpoint interval ``I_R = [R_n, R_p]`` the pwl was
searched on.  The paper splits the out-of-range region into sub-ranges
``SR_i = [SR_n_i, SR_p_i)``; inputs falling in ``SR_i`` are rescaled into
``I_R`` by a manually chosen power-of-two factor ``S'_i`` and the pwl result
is corrected by ``S'_i`` (DIV) or ``sqrt(S'_i)`` (RSQRT), exploiting

    1 / (x)      = S' * (1 / (S' x))
    1 / sqrt(x)  = sqrt(S') * (1 / sqrt(S' x))

Table 2 of the paper gives the default sub-range setups reproduced here.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pwl import PiecewiseLinear
from repro.functions.nonlinear import NonLinearFunction
from repro.quant.fxp import fxp_round
from repro.quant.power_of_two import is_power_of_two


@dataclasses.dataclass(frozen=True)
class SubRange:
    """One sub-range ``[lower, upper)`` with its power-of-two scale ``S'``."""

    lower: float
    upper: float
    scale: float

    def __post_init__(self) -> None:
        if not self.lower < self.upper:
            raise ValueError("invalid sub-range [%r, %r)" % (self.lower, self.upper))
        if self.scale <= 0:
            raise ValueError("sub-range scale must be positive, got %r" % (self.scale,))
        if not is_power_of_two(self.scale):
            raise ValueError("sub-range scale must be a power of two, got %r" % (self.scale,))

    def contains(self, x) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        return (arr >= self.lower) & (arr < self.upper)


@dataclasses.dataclass(frozen=True)
class MultiRangeScaling:
    """The full Table 2 setup for one wide-range operator.

    Attributes
    ----------
    operator:
        Operator name ("div" or "rsqrt").
    breakpoint_interval:
        ``I_R = [R_n, R_p]`` — inputs already inside it bypass rescaling.
    sub_ranges:
        The out-of-range pieces and their scales, in ascending order.
    rescale_power:
        Output correction exponent: the pwl result is multiplied by
        ``scale ** rescale_power`` (1.0 for DIV, 0.5 for RSQRT).
    """

    operator: str
    breakpoint_interval: Tuple[float, float]
    sub_ranges: Tuple[SubRange, ...]
    rescale_power: float

    def __post_init__(self) -> None:
        lows = [sr.lower for sr in self.sub_ranges]
        if lows != sorted(lows):
            raise ValueError("sub-ranges must be sorted by lower bound")

    def classify(self, x) -> np.ndarray:
        """Return the sub-range index per element (-1 = inside ``I_R``)."""
        arr = np.asarray(x, dtype=np.float64)
        out = np.full(arr.shape, -1, dtype=np.int64)
        for i, sr in enumerate(self.sub_ranges):
            out[sr.contains(arr)] = i
        return out

    def rescale_input(self, x) -> Tuple[np.ndarray, np.ndarray]:
        """Map inputs into ``I_R`` and return ``(scaled_x, output_factor)``.

        ``output_factor`` is the per-element multiplier to apply to the pwl
        output (``S'^rescale_power``; 1.0 for in-range inputs).
        """
        arr = np.asarray(x, dtype=np.float64)
        idx = self.classify(arr)
        scaled = arr.copy()
        factor = np.ones_like(arr)
        for i, sr in enumerate(self.sub_ranges):
            mask = idx == i
            scaled = np.where(mask, arr * sr.scale, scaled)
            factor = np.where(mask, sr.scale ** self.rescale_power, factor)
        return scaled, factor

    def coverage_upper_bound(self) -> float:
        """Largest input covered (inf when the last sub-range is unbounded)."""
        if not self.sub_ranges:
            return self.breakpoint_interval[1]
        return self.sub_ranges[-1].upper


# Table 2: DIV covers I_R=(0.5, 4) plus [4, 32)/2^-3, [32, 256)/2^-6,
# [256, inf)/2^-6; RSQRT covers I_R=(0.25, 4) plus [4, 64)/2^-4,
# [64, 1024)/2^-8, [1024, inf)/2^-12.
DIV_MULTI_RANGE = MultiRangeScaling(
    operator="div",
    breakpoint_interval=(0.5, 4.0),
    sub_ranges=(
        SubRange(4.0, 32.0, 2.0 ** -3),
        SubRange(32.0, 256.0, 2.0 ** -6),
        SubRange(256.0, float("inf"), 2.0 ** -6),
    ),
    rescale_power=1.0,
)

RSQRT_MULTI_RANGE = MultiRangeScaling(
    operator="rsqrt",
    breakpoint_interval=(0.25, 4.0),
    sub_ranges=(
        SubRange(4.0, 64.0, 2.0 ** -4),
        SubRange(64.0, 1024.0, 2.0 ** -8),
        SubRange(1024.0, float("inf"), 2.0 ** -12),
    ),
    rescale_power=0.5,
)

_DEFAULTS = {"div": DIV_MULTI_RANGE, "rsqrt": RSQRT_MULTI_RANGE}


def default_multi_range(operator: str) -> MultiRangeScaling:
    """Return the Table 2 setup for ``operator`` ("div" or "rsqrt")."""
    key = operator.lower()
    if key not in _DEFAULTS:
        raise KeyError(
            "no default multi-range setup for %r; known: %s"
            % (operator, ", ".join(sorted(_DEFAULTS)))
        )
    return _DEFAULTS[key]


@dataclasses.dataclass
class MultiRangePWL:
    """A pwl wrapped with multi-range input scaling for wide-range operators.

    The breakpoints and intercepts are rounded to 8-bit FXP with
    ``frac_bits`` decimal bits (the Table 2 footnote), so the whole unit
    operates on fixed-point data of the input width.
    """

    pwl: PiecewiseLinear
    scaling: MultiRangeScaling
    frac_bits: int = 5
    total_bits: int = 8

    def __post_init__(self) -> None:
        self._fxp_pwl = PiecewiseLinear(
            breakpoints=fxp_round(self.pwl.breakpoints, self.frac_bits),
            slopes=fxp_round(self.pwl.slopes, self.frac_bits),
            intercepts=fxp_round(self.pwl.intercepts, self.frac_bits),
        )

    @property
    def fxp_pwl(self) -> PiecewiseLinear:
        """The fixed-point pwl actually evaluated by the unit."""
        return self._fxp_pwl

    def __call__(self, x) -> np.ndarray:
        """Approximate the operator over the full wide input range."""
        arr = np.asarray(x, dtype=np.float64)
        scaled, factor = self.scaling.rescale_input(arr)
        return factor * self._fxp_pwl(scaled)

    def mse(self, function: NonLinearFunction, inputs) -> float:
        """MSE of the wrapped approximation against the exact operator."""
        arr = np.asarray(inputs, dtype=np.float64)
        approx = self(arr)
        reference = np.asarray(function(arr), dtype=np.float64)
        return float(np.mean((approx - reference) ** 2))
