"""Multi-Range Input Scaling for wide-range operators (Section 3.1, Table 2)."""

from repro.scaling.multi_range import (
    SubRange,
    MultiRangeScaling,
    DIV_MULTI_RANGE,
    RSQRT_MULTI_RANGE,
    default_multi_range,
    MultiRangePWL,
)

__all__ = [
    "SubRange",
    "MultiRangeScaling",
    "DIV_MULTI_RANGE",
    "RSQRT_MULTI_RANGE",
    "default_multi_range",
    "MultiRangePWL",
]
