"""Array-API dispatch layer: every kernel module computes through ``xp``.

The reproduction's kernels — the autograd substrate (:mod:`repro.nn`), the
pwl/LUT/genetic engines (:mod:`repro.core`), the quantization utilities
(:mod:`repro.quant`) and the multi-range scaling (:mod:`repro.scaling`) —
do not import :mod:`numpy` directly.  They import the module-level proxy
:data:`xp` from here::

    from repro.backend import xp as np

``xp`` forwards every attribute access to the *active* backend's array
module, so the entire kernel stack retargets at once when the backend is
switched.  NumPy is the default (and the only required) backend; the
contract below plus the conformance test in ``tests/test_backend.py`` make
alternate array libraries (or instrumented wrappers) drop-in:

* register one with :func:`register_backend`,
* activate it globally with :func:`set_backend` or locally with the
  :func:`use_backend` context manager.

Backend contract
----------------
A backend is any module-like object providing the NumPy-compatible surface
the kernels actually use.  :data:`REQUIRED_ATTRS` enumerates that surface
explicitly (it is the checklist :func:`check_conformance` walks); semantics
must match NumPy's for float64 arrays:

* array construction / dtypes: ``asarray``, ``zeros``, ``ones``,
  ``zeros_like``, ``ones_like``, ``arange``, ``linspace``, ``concatenate``,
  ``stack``, ``float64``, ``intp``, ``ndarray``;
* elementwise math: ``exp``, ``log``, ``log2``, ``sqrt``, ``tanh``,
  ``abs``, ``sign``, ``round``, ``floor``, ``clip``, ``maximum``,
  ``minimum``, ``where``, ``isnan``, ``isfinite``, ``isscalar``;
* linear algebra / reductions: ``matmul`` (via ``@``), ``linalg.lstsq``,
  ``sum``, ``mean``, ``prod``, ``argmin``, ``argsort``, ``sort``,
  ``searchsorted``, ``broadcast_to``, ``expand_dims``, ``swapaxes``,
  ``repeat``, ``unique``, ``nonzero``, ``outer``, ``cumsum``;
* ufunc methods used by the gradient kernels: ``add.at`` (scatter-add)
  and ``maximum.accumulate``;
* random: ``random.default_rng`` returning a NumPy-``Generator``-compatible
  object (``uniform``, ``integers``, ``random``, ``standard_normal``,
  ``normal``, ``permutation``).

Seeded bit-parity across backends is *not* part of the contract (each
library owns its RNG streams); parity within one backend is.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
from typing import Any, Dict, Iterator, Tuple

import numpy

#: The module surface every backend must provide (dotted names allowed).
#: This is the conformance checklist — extend it when a kernel starts using
#: a new array-API function, so ``check_conformance`` keeps alternates honest.
REQUIRED_ATTRS: Tuple[str, ...] = (
    # construction & dtypes
    "asarray", "zeros", "ones", "zeros_like", "ones_like", "full",
    "arange", "linspace", "concatenate", "stack", "atleast_1d",
    "float64", "intp", "ndarray",
    # elementwise
    "exp", "log", "log2", "sqrt", "tanh", "abs", "sign", "round", "floor",
    "clip", "maximum", "minimum", "where", "isnan", "isfinite", "isscalar",
    "isclose", "allclose", "array_equal",
    # reductions / shaping / selection
    "sum", "mean", "prod", "argmin", "argmax", "argsort", "sort",
    "searchsorted", "broadcast_to", "expand_dims", "swapaxes", "repeat",
    "unique", "nonzero", "outer", "cumsum", "interp", "tile",
    # submodules / ufunc methods
    "linalg.lstsq", "add.at", "maximum.accumulate", "random.default_rng",
    # constants
    "nan", "inf", "pi", "newaxis",
)


@dataclasses.dataclass(frozen=True)
class ArrayBackend:
    """A named array backend: a display name plus its array module."""

    name: str
    module: Any

    def conformance_failures(self) -> Tuple[str, ...]:
        """Dotted names from :data:`REQUIRED_ATTRS` this backend lacks."""
        missing = []
        for dotted in REQUIRED_ATTRS:
            obj = self.module
            try:
                for part in dotted.split("."):
                    obj = getattr(obj, part)
            except AttributeError:
                missing.append(dotted)
        return tuple(missing)


_REGISTRY: Dict[str, ArrayBackend] = {}
_LOCK = threading.Lock()


def register_backend(name: str, module: Any, strict: bool = True) -> ArrayBackend:
    """Register an array module under ``name`` and return its descriptor.

    With ``strict`` (the default) the module is checked against
    :data:`REQUIRED_ATTRS` up front, so a non-conforming backend fails at
    registration time instead of deep inside a kernel.
    """
    backend = ArrayBackend(name=name, module=module)
    if strict:
        missing = backend.conformance_failures()
        if missing:
            raise ValueError(
                "backend %r does not satisfy the array contract; missing: %s"
                % (name, ", ".join(missing))
            )
    with _LOCK:
        _REGISTRY[name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Names of every registered backend."""
    return tuple(sorted(_REGISTRY))


# NumPy is the default and only required backend.
_NUMPY = register_backend("numpy", numpy)
_ACTIVE: ArrayBackend = _NUMPY


def get_backend() -> ArrayBackend:
    """The currently active backend descriptor."""
    return _ACTIVE


def set_backend(name: str) -> ArrayBackend:
    """Switch the process-wide active backend (must be registered)."""
    global _ACTIVE
    try:
        backend = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            "unknown backend %r; registered: %s" % (name, ", ".join(available_backends()))
        ) from None
    _ACTIVE = backend
    return backend


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[ArrayBackend]:
    """Context manager scoping :func:`set_backend` to a ``with`` block."""
    previous = _ACTIVE.name
    backend = set_backend(name)
    try:
        yield backend
    finally:
        set_backend(previous)


def check_conformance(name: str) -> None:
    """Raise ``ValueError`` if the named backend violates the contract."""
    try:
        backend = _REGISTRY[name]
    except KeyError:
        raise ValueError("unknown backend %r" % (name,)) from None
    missing = backend.conformance_failures()
    if missing:
        raise ValueError(
            "backend %r does not satisfy the array contract; missing: %s"
            % (name, ", ".join(missing))
        )


class _ArrayModuleProxy:
    """Module-like proxy forwarding attribute access to the active backend.

    Kernels hold a reference to this single object (conventionally imported
    ``as np``), so :func:`set_backend` / :func:`use_backend` retarget every
    kernel at once without re-imports.  Attribute forwarding is one dict
    lookup plus a ``getattr`` — negligible next to the array work behind it
    (the throughput benchmarks gate this).
    """

    __slots__ = ()

    def __getattr__(self, name: str) -> Any:
        return getattr(_ACTIVE.module, name)

    def __dir__(self):  # pragma: no cover - introspection aid
        return dir(_ACTIVE.module)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<array backend proxy -> %r>" % (_ACTIVE.name,)


#: The proxy every kernel module imports (``from repro.backend import xp``).
xp = _ArrayModuleProxy()
