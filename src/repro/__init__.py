"""GQA-LUT reproduction: Genetic Quantization-Aware Approximation for
Non-Linear Operations in Transformers (DAC 2024).

The package is organised as:

* :mod:`repro.functions` — the non-linear operators (GELU, HSWISH, EXP, DIV,
  RSQRT, ...).
* :mod:`repro.core` — piece-wise linear approximation, LUT storage, the
  genetic search (Algorithm 1), the Rounding Mutation (Algorithm 2) and the
  quantization-aware evaluation protocol.
* :mod:`repro.quant` — integer-only quantization utilities (uniform
  quantizers, power-of-two scales, dyadic numbers, fixed-point).
* :mod:`repro.scaling` — multi-range input scaling for DIV/RSQRT (Table 2).
* :mod:`repro.baselines` — NN-LUT, uniform/Chebyshev pwl and I-BERT
  polynomial baselines.
* :mod:`repro.hardware` — the 28-nm cost model and Verilog generator for
  the pwl unit (Table 6).
* :mod:`repro.nn` — a numpy autograd + miniature Transformer substrate used
  for the fine-tuning experiments (Tables 4 and 5).
* :mod:`repro.graph` — traced graph IR, optimisation passes and the
  compiled inference executor (``REPRO_INFER_ENGINE=compiled``).
* :mod:`repro.serve` — the micro-batching serving front-end over compiled
  inference.
* :mod:`repro.data` — synthetic semantic-segmentation data.
* :mod:`repro.experiments` — runners reproducing each table and figure.

Quickstart::

    from repro import GQALUT

    outcome = GQALUT.for_operator("gelu", num_entries=8, use_rm=True).search(
        generations=100, seed=0
    )
    print(outcome.average_mse())          # Table 3 style number
    lut = outcome.quantized_lut(scale=0.25)
    y = lut(x)                            # INT8 quantization-aware approximation
"""

from repro.core import (
    GQALUT,
    SearchOutcome,
    PiecewiseLinear,
    PiecewiseLinearBatch,
    fit_pwl,
    fit_pwl_batch,
    LUT,
    QuantizedLUT,
    QuantizedLUTBatch,
    GeneticSearch,
    GASettings,
    RoundingMutation,
    NormalMutation,
    GridMSEFitness,
    default_config,
    DEFAULT_CONFIGS,
)
from repro.functions import get_function, list_functions, NonLinearFunction
from repro.quant import UniformQuantizer, QuantSpec
from repro.scaling import MultiRangePWL, default_multi_range
from repro.baselines import NNLUT
from repro.hardware import Precision, estimate_pwl_unit, table6_sweep, generate_pwl_verilog

__version__ = "0.1.0"

__all__ = [
    "GQALUT",
    "SearchOutcome",
    "PiecewiseLinear",
    "PiecewiseLinearBatch",
    "fit_pwl",
    "fit_pwl_batch",
    "LUT",
    "QuantizedLUT",
    "QuantizedLUTBatch",
    "GeneticSearch",
    "GASettings",
    "RoundingMutation",
    "NormalMutation",
    "GridMSEFitness",
    "default_config",
    "DEFAULT_CONFIGS",
    "get_function",
    "list_functions",
    "NonLinearFunction",
    "UniformQuantizer",
    "QuantSpec",
    "MultiRangePWL",
    "default_multi_range",
    "NNLUT",
    "Precision",
    "estimate_pwl_unit",
    "table6_sweep",
    "generate_pwl_verilog",
    "__version__",
]
