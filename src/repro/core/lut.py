"""LUT storage structures mirroring Figure 1 of the paper.

Two storage patterns are modelled:

* :class:`LUT` — the conventional FP/INT32 pattern (Fig. 1a): slopes,
  intercepts and breakpoints are stored at full precision and the comparer
  operates on the high-precision input directly.
* :class:`QuantizedLUT` — the quantization-aware pattern (Fig. 1b): the LUT
  stores FXP slopes/intercepts plus breakpoints pre-quantized by the runtime
  power-of-two scaling factor ``S``; the comparer operates on the INT8/16
  code ``q`` and the intercepts are rescaled by a shifter at run time.
* :class:`DenseLUT` — the deployed inference engine: for a ``bits``-bit
  input there are only ``2^bits`` possible codes, so the whole Fig. 1b
  pipeline (comparer + multiplier + shifter) collapses into one precomputed
  output table and one slope table, and a lookup is a single gather.  Entry
  ``q`` is bit-identical to the :class:`QuantizedLUT` pipeline evaluated at
  code ``q``, so the two storage patterns are interchangeable at run time.

:func:`dense_lut_for` maintains a bounded process-wide cache of dense
tables keyed by ``(pwl identity, scale, spec, frac_bits)`` so that modules
re-evaluating the same frozen pwl every training step (the fine-tuning hot
path) build each table exactly once per deployed scale.
"""

from __future__ import annotations

import collections
import dataclasses
import functools
from typing import List, Optional, Tuple

from repro.backend import xp as np

from repro.core.engine_config import PWL_ENGINES, check_pwl_engine
from repro.core.pwl import PiecewiseLinear, PiecewiseLinearBatch, segment_counts
from repro.quant.fxp import fxp_round
from repro.quant.power_of_two import is_power_of_two, power_of_two_exponent
from repro.quant.quantizer import QuantSpec, quant_bounds

# Inference engines every pwl deployment surface accepts: "dense" gathers
# from the precomputed all-codes tables, "legacy" re-runs the Fig. 1b
# comparer pipeline per pass.  The two are bit-identical.  The canonical
# inventory and validator live in :mod:`repro.core.engine_config`; the
# aliases here are kept for the deployment-surface modules.
ENGINES = PWL_ENGINES
check_engine = check_pwl_engine


@dataclasses.dataclass(frozen=True)
class LUTEntry:
    """One row of the LUT: a slope/intercept pair."""

    slope: float
    intercept: float

    def evaluate(self, x) -> np.ndarray:
        """Evaluate this entry's line at ``x``."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


@dataclasses.dataclass(frozen=True)
class LUT:
    """High-precision LUT storage (Fig. 1a).

    Wraps a :class:`PiecewiseLinear` and exposes the row/comparer view a
    hardware designer would use.
    """

    pwl: PiecewiseLinear

    @property
    def num_entries(self) -> int:
        return self.pwl.num_entries

    @property
    def entries(self) -> List[LUTEntry]:
        return [
            LUTEntry(float(k), float(b))
            for k, b in zip(self.pwl.slopes, self.pwl.intercepts)
        ]

    @property
    def breakpoints(self) -> np.ndarray:
        return self.pwl.breakpoints

    def lookup(self, x) -> np.ndarray:
        """Comparer + selected-entry evaluation on high-precision input."""
        return self.pwl(x)

    def storage_bits(self, value_bits: int = 32) -> int:
        """Total parameter storage in bits.

        ``N`` slopes + ``N`` intercepts + ``N - 1`` breakpoints, each stored
        in ``value_bits`` bits.
        """
        n = self.num_entries
        return (3 * n - 1) * value_bits


@dataclasses.dataclass(frozen=True)
class QuantizedLUT:
    """Quantization-aware LUT (Fig. 1b).

    Parameters
    ----------
    pwl:
        The searched pwl (FP breakpoints, FXP-rounded slopes/intercepts).
    scale:
        Power-of-two input scaling factor ``S``.
    spec:
        Integer format of the input codes (INT8 by default).
    frac_bits:
        Decimal bit-width ``lambda`` used for the stored slopes/intercepts
        and for the shifter output.

    The derived arrays (:attr:`quantized_breakpoints`, :attr:`stored_slopes`,
    :attr:`stored_intercepts`, :attr:`shifted_intercepts`) are cached
    properties — the dataclass is frozen, so they can never go stale — and
    repeated access during a lookup does not re-run the clip/round/FXP
    pipeline (``functools.cached_property`` writes to the instance
    ``__dict__`` directly, bypassing the frozen ``__setattr__``).
    """

    pwl: PiecewiseLinear
    scale: float
    spec: QuantSpec = QuantSpec(bits=8, signed=True)
    frac_bits: int = 5

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive, got %r" % (self.scale,))
        if not is_power_of_two(self.scale):
            raise ValueError(
                "QuantizedLUT requires a power-of-two scale (got %r); "
                "round it with round_scale_to_power_of_two()" % (self.scale,)
            )

    @property
    def num_entries(self) -> int:
        return self.pwl.num_entries

    @property
    def shift(self) -> int:
        """Right-shift amount implementing the division by ``S``."""
        return power_of_two_exponent(self.scale)

    @functools.cached_property
    def quantized_breakpoints(self) -> np.ndarray:
        """Breakpoints quantized to the input integer grid (Eq. 3)."""
        qn, qp = quant_bounds(self.spec.bits, self.spec.signed)
        return np.clip(np.round(self.pwl.breakpoints / self.scale), qn, qp)

    @functools.cached_property
    def stored_slopes(self) -> np.ndarray:
        """FXP slopes as stored in the LUT."""
        return fxp_round(self.pwl.slopes, self.frac_bits)

    @functools.cached_property
    def stored_intercepts(self) -> np.ndarray:
        """FXP intercepts as stored in the LUT (pre-shift values)."""
        return fxp_round(self.pwl.intercepts, self.frac_bits)

    @functools.cached_property
    def shifted_intercepts(self) -> np.ndarray:
        """Run-time intercepts ``b_i >> log2(S)`` produced by the shifter."""
        return fxp_round(self.stored_intercepts / self.scale, self.frac_bits)

    def segment_index(self, q) -> np.ndarray:
        """Comparer on integer codes against the quantized breakpoints."""
        codes = np.asarray(q, dtype=np.float64)
        return np.searchsorted(self.quantized_breakpoints, codes, side="right")

    def lookup_integer(self, q) -> np.ndarray:
        """Integer-domain pwl output ``k_i * q + (b_i >> shift)``."""
        codes = np.asarray(q, dtype=np.float64)
        idx = self.segment_index(codes)
        return self.stored_slopes[idx] * codes + self.shifted_intercepts[idx]

    def lookup_dequantized(self, q) -> np.ndarray:
        """Real-domain approximation ``S * (k_i q + b_i / S) ~= k_i x + b_i``."""
        return self.scale * self.lookup_integer(q)

    def __call__(self, x) -> np.ndarray:
        """Quantize ``x``, run the integer pipeline, and dequantize.

        This is the end-to-end behaviour of the Fig. 1b unit when fed a real
        value: the surrounding layer would normally supply ``q`` directly.
        """
        qn, qp = quant_bounds(self.spec.bits, self.spec.signed)
        q = np.clip(np.round(np.asarray(x, dtype=np.float64) / self.scale), qn, qp)
        return self.lookup_dequantized(q)

    def storage_bits(self) -> int:
        """Parameter storage in bits for the Fig. 1b pattern.

        Slopes and intercepts are stored in ``frac_bits``-fraction FXP words
        of the input width; breakpoints are stored as input-width integers.
        """
        n = self.num_entries
        word = self.spec.bits
        return (3 * n - 1) * word

    def with_scale(self, scale: float) -> "QuantizedLUT":
        """Re-target the same searched parameters to a new scaling factor."""
        return QuantizedLUT(pwl=self.pwl, scale=scale, spec=self.spec, frac_bits=self.frac_bits)

    def to_dense(self) -> "DenseLUT":
        """Materialise this unit as a :class:`DenseLUT` gather table."""
        return DenseLUT.from_quantized(self)


@dataclasses.dataclass(frozen=True)
class DenseLUT:
    """All-codes materialisation of the Fig. 1b pipeline (the deployed LUT).

    A ``bits``-bit input only takes ``2^bits`` values, so the comparer +
    multiplier + shifter pipeline of :class:`QuantizedLUT` can be evaluated
    once per code at build time and stored densely:

    * :attr:`outputs` — ``outputs[q - qmin]`` is the *dequantized* pipeline
      output for code ``q``, bit-identical to
      ``QuantizedLUT.lookup_dequantized(q)``.
    * :attr:`segment_slopes` — the FXP slope of the segment the comparer
      selects for code ``q``; this is the exact derivative of the deployed
      approximation, used by the fine-tuning backward pass.

    A real-valued lookup is then quantize-once + gather, replacing the
    per-call ``searchsorted`` + fancy indexing + rescaling of the pipeline
    form.  This is exactly the table a hardware deployment (and the NN-LUT
    baseline) burns into SRAM.
    """

    pwl: PiecewiseLinear
    scale: float
    spec: QuantSpec = QuantSpec(bits=8, signed=True)
    frac_bits: int = 5
    outputs: Optional[np.ndarray] = None
    segment_slopes: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if (self.outputs is None) != (self.segment_slopes is None):
            raise ValueError(
                "outputs and segment_slopes must be supplied together "
                "(or both omitted to derive them from the pwl)"
            )
        if self.outputs is None:
            reference = QuantizedLUT(
                pwl=self.pwl, scale=self.scale, spec=self.spec, frac_bits=self.frac_bits
            )
            codes = np.arange(self.spec.qmin, self.spec.qmax + 1, dtype=np.float64)
            idx = reference.segment_index(codes)
            object.__setattr__(self, "outputs", reference.lookup_dequantized(codes))
            object.__setattr__(self, "segment_slopes", reference.stored_slopes[idx])
        outputs = np.asarray(self.outputs, dtype=np.float64)
        slopes = np.asarray(self.segment_slopes, dtype=np.float64)
        if outputs.shape != (self.spec.num_levels,) or slopes.shape != outputs.shape:
            raise ValueError(
                "dense tables must hold one entry per code (%d), got %r / %r"
                % (self.spec.num_levels, outputs.shape, slopes.shape)
            )
        object.__setattr__(self, "outputs", outputs)
        object.__setattr__(self, "segment_slopes", slopes)
        # Division by the power-of-two scale is an exact exponent shift, so
        # quantizing with a multiply is bit-identical and faster.
        object.__setattr__(self, "_inv_scale", 1.0 / self.scale)
        object.__setattr__(self, "_qmin", float(self.spec.qmin))
        object.__setattr__(self, "_qmax", float(self.spec.qmax))
        # Extended gather tables with one sentinel row for NaN inputs, which
        # survive the clip and would otherwise index garbage.  The sentinel
        # replicates the legacy pipeline bitwise: its comparer sends NaN to
        # the last segment, so the output is NaN (slope * NaN + b) while the
        # selected slope is the top segment's finite value.
        object.__setattr__(
            self, "_outputs_ext", np.concatenate([outputs, [np.nan]])
        )
        object.__setattr__(
            self, "_slopes_ext", np.concatenate([slopes, [slopes[-1]]])
        )

    @classmethod
    def from_quantized(cls, lut: QuantizedLUT) -> "DenseLUT":
        """Build the dense form of an existing :class:`QuantizedLUT`."""
        return cls(pwl=lut.pwl, scale=lut.scale, spec=lut.spec, frac_bits=lut.frac_bits)

    @property
    def num_codes(self) -> int:
        """Table length ``2^bits``."""
        return int(self.outputs.size)

    def _offsets(self, q: np.ndarray) -> np.ndarray:
        """Map clipped codes to extended-table offsets (NaN → sentinel row).

        ``q`` is already clipped to ``[qmin, qmax]``, so its sum is finite
        unless NaN lanes survived the clip — one allocation-free reduction
        guards the common all-finite path.  NaN lanes are redirected to the
        sentinel offset *before* the integer cast, so no invalid-cast
        warning is emitted.
        """
        offsets = q - self._qmin
        if not np.isfinite(q.sum()):
            offsets = np.where(np.isnan(q), float(self.num_codes), offsets)
        return offsets.astype(np.intp)

    def table_indices(self, x) -> np.ndarray:
        """Quantize real inputs to extended-table offsets (one pass)."""
        arr = np.asarray(x, dtype=np.float64)
        q = np.clip(np.round(arr * self._inv_scale), self._qmin, self._qmax)
        return self._offsets(q)

    def code_indices(self, q) -> np.ndarray:
        """Table offsets for integer codes, saturated to the spec's range.

        Codes outside ``[qmin, qmax]`` clamp to the boundary entries (the
        quantizer in front of a deployed LUT clips before lookup, so such
        codes cannot occur in-pipeline).
        """
        codes = np.clip(np.asarray(q, dtype=np.float64), self._qmin, self._qmax)
        return self._offsets(codes)

    def lookup_codes(self, q) -> np.ndarray:
        """Dequantized outputs for integer codes ``q`` (single gather)."""
        return self._outputs_ext[self.code_indices(q)]

    def slope_codes(self, q) -> np.ndarray:
        """Selected-segment slopes for integer codes ``q``."""
        return self._slopes_ext[self.code_indices(q)]

    def __call__(self, x) -> np.ndarray:
        """Real-domain lookup: quantize once, gather the output table."""
        return self._outputs_ext[self.table_indices(x)]

    def lookup_with_slope(self, x) -> Tuple[np.ndarray, np.ndarray]:
        """Fused lookup: one quantize pass, output *and* slope gathers.

        This is the fine-tuning fast path: the forward value and the exact
        backward slope come from the same table offsets, so the training
        step quantizes each activation once instead of three times.
        """
        idx = self.table_indices(x)
        return self._outputs_ext[idx], self._slopes_ext[idx]

    def storage_bits(self) -> int:
        """Dense storage: one output word plus one slope word per code."""
        return 2 * self.num_codes * self.spec.bits


# -- Dense-table cache ----------------------------------------------------------------
#
# The fine-tuning modules evaluate the same frozen pwl under a scale that
# changes only when the LSQ power-of-two quantizer steps to a new exponent.
# Tables are therefore cached process-wide, keyed by pwl identity + scale +
# format.  Entries hold strong references to their pwl, which keeps ``id``
# stable for the lifetime of the entry; the LRU bound keeps the cache from
# growing without limit.

_DENSE_LUT_CACHE: "collections.OrderedDict[Tuple[int, float, int, bool, int], DenseLUT]" = (
    collections.OrderedDict()
)
_DENSE_LUT_CACHE_SIZE = 256


def dense_lut_for(
    pwl: PiecewiseLinear,
    scale: float,
    spec: QuantSpec = QuantSpec(bits=8, signed=True),
    frac_bits: int = 5,
) -> DenseLUT:
    """Return the (cached) :class:`DenseLUT` for ``pwl`` at ``scale``.

    Repeated calls with the same arguments return the same table object;
    a new scale (or pwl / format) builds and caches a new table.
    """
    key = (id(pwl), float(scale), spec.bits, spec.signed, frac_bits)
    hit = _DENSE_LUT_CACHE.get(key)
    if hit is not None and hit.pwl is pwl:
        _DENSE_LUT_CACHE.move_to_end(key)
        return hit
    table = DenseLUT(pwl=pwl, scale=float(scale), spec=spec, frac_bits=frac_bits)
    _DENSE_LUT_CACHE[key] = table
    while len(_DENSE_LUT_CACHE) > _DENSE_LUT_CACHE_SIZE:
        _DENSE_LUT_CACHE.popitem(last=False)
    return table


def dense_lut_cache_clear() -> None:
    """Drop every cached dense table (tests and memory-pressure hooks)."""
    _DENSE_LUT_CACHE.clear()


@dataclasses.dataclass(frozen=True)
class QuantizedLUTBatch:
    """The Fig. 1b pipeline broadcast over a pwl population and a scale sweep.

    Wraps a :class:`PiecewiseLinearBatch` of ``P`` individuals and ``S``
    power-of-two scaling factors; lookups return ``(S, P, C)`` arrays where
    ``C`` is the number of input codes.  Entry ``[s, p]`` is bit-identical to
    the scalar :class:`QuantizedLUT` built from row ``p`` at scale ``s`` —
    this is what lets :class:`repro.core.fitness.QuantizedMSEFitness` score a
    whole GA population across its scale sweep in a handful of array ops.
    """

    pwl: PiecewiseLinearBatch
    scales: np.ndarray
    spec: QuantSpec = QuantSpec(bits=8, signed=True)
    frac_bits: int = 5

    def __post_init__(self) -> None:
        scales = np.atleast_1d(np.asarray(self.scales, dtype=np.float64))
        if scales.ndim != 1 or scales.size == 0:
            raise ValueError("scales must be a non-empty 1-D sequence")
        for scale in scales:
            if scale <= 0 or not is_power_of_two(float(scale)):
                raise ValueError(
                    "QuantizedLUTBatch requires positive power-of-two scales (got %r)"
                    % (scale,)
                )
        object.__setattr__(self, "scales", scales)

    @property
    def num_scales(self) -> int:
        return int(self.scales.size)

    @property
    def population_size(self) -> int:
        return self.pwl.population_size

    @property
    def num_entries(self) -> int:
        return self.pwl.num_entries

    @property
    def quantized_breakpoints(self) -> np.ndarray:
        """Breakpoints quantized per scale (Eq. 3): ``(S, P, N - 1)``."""
        qn, qp = quant_bounds(self.spec.bits, self.spec.signed)
        return np.clip(
            np.round(self.pwl.breakpoints[None, :, :] / self.scales[:, None, None]), qn, qp
        )

    @property
    def stored_slopes(self) -> np.ndarray:
        """FXP slopes as stored in the LUT: ``(P, N)`` (scale independent)."""
        return fxp_round(self.pwl.slopes, self.frac_bits)

    @property
    def stored_intercepts(self) -> np.ndarray:
        """FXP intercepts as stored in the LUT: ``(P, N)``."""
        return fxp_round(self.pwl.intercepts, self.frac_bits)

    @property
    def shifted_intercepts(self) -> np.ndarray:
        """Shifter outputs ``b_i >> log2(S)`` per scale: ``(S, P, N)``."""
        return fxp_round(
            self.stored_intercepts[None, :, :] / self.scales[:, None, None], self.frac_bits
        )

    def segment_index(self, q) -> np.ndarray:
        """Comparer on integer codes: ``(S, P, C)`` segment indices."""
        codes = np.asarray(q, dtype=np.float64).ravel()
        return (self.quantized_breakpoints[:, :, :, None] <= codes[None, None, None, :]).sum(
            axis=2
        )

    def lookup_integer(self, q) -> np.ndarray:
        """Integer-domain outputs ``k_i q + (b_i >> shift)``: ``(S, P, C)``.

        Ascending code vectors (the evaluation-protocol case) take a
        repeat-expansion fast path via :func:`segment_counts`; the selected
        coefficients per code are identical either way.
        """
        codes = np.asarray(q, dtype=np.float64).ravel()
        scale_count, pop, entries = (
            self.num_scales,
            self.population_size,
            self.num_entries,
        )
        if codes.size and entries > 1 and np.all(codes[1:] >= codes[:-1]):
            counts = segment_counts(
                self.quantized_breakpoints.reshape(scale_count * pop, entries - 1), codes
            )
            k_all = np.broadcast_to(
                self.stored_slopes[None, :, :], (scale_count, pop, entries)
            ).ravel()
            k = np.repeat(k_all, counts.ravel()).reshape(scale_count, pop, codes.size)
            b = np.repeat(self.shifted_intercepts.ravel(), counts.ravel()).reshape(
                scale_count, pop, codes.size
            )
            return k * codes[None, None, :] + b
        idx = self.segment_index(codes)
        rows = np.arange(pop)[None, :, None]
        sweep = np.arange(scale_count)[:, None, None]
        k = self.stored_slopes[rows, idx]
        b = self.shifted_intercepts[sweep, rows, idx]
        return k * codes[None, None, :] + b

    def lookup_dequantized(self, q) -> np.ndarray:
        """Real-domain approximations ``S * (k_i q + b_i / S)``: ``(S, P, C)``."""
        return self.scales[:, None, None] * self.lookup_integer(q)

    def at(self, scale_index: int, row: int) -> QuantizedLUT:
        """The scalar :class:`QuantizedLUT` for one (scale, individual) pair."""
        return QuantizedLUT(
            pwl=self.pwl.row(row),
            scale=float(self.scales[scale_index]),
            spec=self.spec,
            frac_bits=self.frac_bits,
        )
