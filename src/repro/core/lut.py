"""LUT storage structures mirroring Figure 1 of the paper.

Two storage patterns are modelled:

* :class:`LUT` — the conventional FP/INT32 pattern (Fig. 1a): slopes,
  intercepts and breakpoints are stored at full precision and the comparer
  operates on the high-precision input directly.
* :class:`QuantizedLUT` — the quantization-aware pattern (Fig. 1b): the LUT
  stores FXP slopes/intercepts plus breakpoints pre-quantized by the runtime
  power-of-two scaling factor ``S``; the comparer operates on the INT8/16
  code ``q`` and the intercepts are rescaled by a shifter at run time.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.core.pwl import PiecewiseLinear, PiecewiseLinearBatch, segment_counts
from repro.quant.fxp import fxp_round
from repro.quant.power_of_two import is_power_of_two, power_of_two_exponent
from repro.quant.quantizer import QuantSpec, quant_bounds


@dataclasses.dataclass(frozen=True)
class LUTEntry:
    """One row of the LUT: a slope/intercept pair."""

    slope: float
    intercept: float

    def evaluate(self, x) -> np.ndarray:
        """Evaluate this entry's line at ``x``."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


@dataclasses.dataclass(frozen=True)
class LUT:
    """High-precision LUT storage (Fig. 1a).

    Wraps a :class:`PiecewiseLinear` and exposes the row/comparer view a
    hardware designer would use.
    """

    pwl: PiecewiseLinear

    @property
    def num_entries(self) -> int:
        return self.pwl.num_entries

    @property
    def entries(self) -> List[LUTEntry]:
        return [
            LUTEntry(float(k), float(b))
            for k, b in zip(self.pwl.slopes, self.pwl.intercepts)
        ]

    @property
    def breakpoints(self) -> np.ndarray:
        return self.pwl.breakpoints

    def lookup(self, x) -> np.ndarray:
        """Comparer + selected-entry evaluation on high-precision input."""
        return self.pwl(x)

    def storage_bits(self, value_bits: int = 32) -> int:
        """Total parameter storage in bits.

        ``N`` slopes + ``N`` intercepts + ``N - 1`` breakpoints, each stored
        in ``value_bits`` bits.
        """
        n = self.num_entries
        return (3 * n - 1) * value_bits


@dataclasses.dataclass(frozen=True)
class QuantizedLUT:
    """Quantization-aware LUT (Fig. 1b).

    Parameters
    ----------
    pwl:
        The searched pwl (FP breakpoints, FXP-rounded slopes/intercepts).
    scale:
        Power-of-two input scaling factor ``S``.
    spec:
        Integer format of the input codes (INT8 by default).
    frac_bits:
        Decimal bit-width ``lambda`` used for the stored slopes/intercepts
        and for the shifter output.
    """

    pwl: PiecewiseLinear
    scale: float
    spec: QuantSpec = QuantSpec(bits=8, signed=True)
    frac_bits: int = 5

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive, got %r" % (self.scale,))
        if not is_power_of_two(self.scale):
            raise ValueError(
                "QuantizedLUT requires a power-of-two scale (got %r); "
                "round it with round_scale_to_power_of_two()" % (self.scale,)
            )

    @property
    def num_entries(self) -> int:
        return self.pwl.num_entries

    @property
    def shift(self) -> int:
        """Right-shift amount implementing the division by ``S``."""
        return power_of_two_exponent(self.scale)

    @property
    def quantized_breakpoints(self) -> np.ndarray:
        """Breakpoints quantized to the input integer grid (Eq. 3)."""
        qn, qp = quant_bounds(self.spec.bits, self.spec.signed)
        return np.clip(np.round(self.pwl.breakpoints / self.scale), qn, qp)

    @property
    def stored_slopes(self) -> np.ndarray:
        """FXP slopes as stored in the LUT."""
        return fxp_round(self.pwl.slopes, self.frac_bits)

    @property
    def stored_intercepts(self) -> np.ndarray:
        """FXP intercepts as stored in the LUT (pre-shift values)."""
        return fxp_round(self.pwl.intercepts, self.frac_bits)

    @property
    def shifted_intercepts(self) -> np.ndarray:
        """Run-time intercepts ``b_i >> log2(S)`` produced by the shifter."""
        return fxp_round(self.stored_intercepts / self.scale, self.frac_bits)

    def segment_index(self, q) -> np.ndarray:
        """Comparer on integer codes against the quantized breakpoints."""
        codes = np.asarray(q, dtype=np.float64)
        return np.searchsorted(self.quantized_breakpoints, codes, side="right")

    def lookup_integer(self, q) -> np.ndarray:
        """Integer-domain pwl output ``k_i * q + (b_i >> shift)``."""
        codes = np.asarray(q, dtype=np.float64)
        idx = self.segment_index(codes)
        return self.stored_slopes[idx] * codes + self.shifted_intercepts[idx]

    def lookup_dequantized(self, q) -> np.ndarray:
        """Real-domain approximation ``S * (k_i q + b_i / S) ~= k_i x + b_i``."""
        return self.scale * self.lookup_integer(q)

    def __call__(self, x) -> np.ndarray:
        """Quantize ``x``, run the integer pipeline, and dequantize.

        This is the end-to-end behaviour of the Fig. 1b unit when fed a real
        value: the surrounding layer would normally supply ``q`` directly.
        """
        qn, qp = quant_bounds(self.spec.bits, self.spec.signed)
        q = np.clip(np.round(np.asarray(x, dtype=np.float64) / self.scale), qn, qp)
        return self.lookup_dequantized(q)

    def storage_bits(self) -> int:
        """Parameter storage in bits for the Fig. 1b pattern.

        Slopes and intercepts are stored in ``frac_bits``-fraction FXP words
        of the input width; breakpoints are stored as input-width integers.
        """
        n = self.num_entries
        word = self.spec.bits
        return (3 * n - 1) * word

    def with_scale(self, scale: float) -> "QuantizedLUT":
        """Re-target the same searched parameters to a new scaling factor."""
        return QuantizedLUT(pwl=self.pwl, scale=scale, spec=self.spec, frac_bits=self.frac_bits)


@dataclasses.dataclass(frozen=True)
class QuantizedLUTBatch:
    """The Fig. 1b pipeline broadcast over a pwl population and a scale sweep.

    Wraps a :class:`PiecewiseLinearBatch` of ``P`` individuals and ``S``
    power-of-two scaling factors; lookups return ``(S, P, C)`` arrays where
    ``C`` is the number of input codes.  Entry ``[s, p]`` is bit-identical to
    the scalar :class:`QuantizedLUT` built from row ``p`` at scale ``s`` —
    this is what lets :class:`repro.core.fitness.QuantizedMSEFitness` score a
    whole GA population across its scale sweep in a handful of array ops.
    """

    pwl: PiecewiseLinearBatch
    scales: np.ndarray
    spec: QuantSpec = QuantSpec(bits=8, signed=True)
    frac_bits: int = 5

    def __post_init__(self) -> None:
        scales = np.atleast_1d(np.asarray(self.scales, dtype=np.float64))
        if scales.ndim != 1 or scales.size == 0:
            raise ValueError("scales must be a non-empty 1-D sequence")
        for scale in scales:
            if scale <= 0 or not is_power_of_two(float(scale)):
                raise ValueError(
                    "QuantizedLUTBatch requires positive power-of-two scales (got %r)"
                    % (scale,)
                )
        object.__setattr__(self, "scales", scales)

    @property
    def num_scales(self) -> int:
        return int(self.scales.size)

    @property
    def population_size(self) -> int:
        return self.pwl.population_size

    @property
    def num_entries(self) -> int:
        return self.pwl.num_entries

    @property
    def quantized_breakpoints(self) -> np.ndarray:
        """Breakpoints quantized per scale (Eq. 3): ``(S, P, N - 1)``."""
        qn, qp = quant_bounds(self.spec.bits, self.spec.signed)
        return np.clip(
            np.round(self.pwl.breakpoints[None, :, :] / self.scales[:, None, None]), qn, qp
        )

    @property
    def stored_slopes(self) -> np.ndarray:
        """FXP slopes as stored in the LUT: ``(P, N)`` (scale independent)."""
        return fxp_round(self.pwl.slopes, self.frac_bits)

    @property
    def stored_intercepts(self) -> np.ndarray:
        """FXP intercepts as stored in the LUT: ``(P, N)``."""
        return fxp_round(self.pwl.intercepts, self.frac_bits)

    @property
    def shifted_intercepts(self) -> np.ndarray:
        """Shifter outputs ``b_i >> log2(S)`` per scale: ``(S, P, N)``."""
        return fxp_round(
            self.stored_intercepts[None, :, :] / self.scales[:, None, None], self.frac_bits
        )

    def segment_index(self, q) -> np.ndarray:
        """Comparer on integer codes: ``(S, P, C)`` segment indices."""
        codes = np.asarray(q, dtype=np.float64).ravel()
        return (self.quantized_breakpoints[:, :, :, None] <= codes[None, None, None, :]).sum(
            axis=2
        )

    def lookup_integer(self, q) -> np.ndarray:
        """Integer-domain outputs ``k_i q + (b_i >> shift)``: ``(S, P, C)``.

        Ascending code vectors (the evaluation-protocol case) take a
        repeat-expansion fast path via :func:`segment_counts`; the selected
        coefficients per code are identical either way.
        """
        codes = np.asarray(q, dtype=np.float64).ravel()
        scale_count, pop, entries = (
            self.num_scales,
            self.population_size,
            self.num_entries,
        )
        if codes.size and entries > 1 and np.all(codes[1:] >= codes[:-1]):
            counts = segment_counts(
                self.quantized_breakpoints.reshape(scale_count * pop, entries - 1), codes
            )
            k_all = np.broadcast_to(
                self.stored_slopes[None, :, :], (scale_count, pop, entries)
            ).ravel()
            k = np.repeat(k_all, counts.ravel()).reshape(scale_count, pop, codes.size)
            b = np.repeat(self.shifted_intercepts.ravel(), counts.ravel()).reshape(
                scale_count, pop, codes.size
            )
            return k * codes[None, None, :] + b
        idx = self.segment_index(codes)
        rows = np.arange(pop)[None, :, None]
        sweep = np.arange(scale_count)[:, None, None]
        k = self.stored_slopes[rows, idx]
        b = self.shifted_intercepts[sweep, rows, idx]
        return k * codes[None, None, :] + b

    def lookup_dequantized(self, q) -> np.ndarray:
        """Real-domain approximations ``S * (k_i q + b_i / S)``: ``(S, P, C)``."""
        return self.scales[:, None, None] * self.lookup_integer(q)

    def at(self, scale_index: int, row: int) -> QuantizedLUT:
        """The scalar :class:`QuantizedLUT` for one (scale, individual) pair."""
        return QuantizedLUT(
            pwl=self.pwl.row(row),
            scale=float(self.scales[scale_index]),
            spec=self.spec,
            frac_bits=self.frac_bits,
        )
