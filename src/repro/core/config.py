"""Per-operator search configurations (Table 1 of the paper).

Table 1 lists, for each non-linear operator, the search range
``[R_n, R_p]``, the RM probability ``theta_r``, the RM grid-exponent ranges
``[m_a, m_b]`` for 8- and 16-entry LUTs, and the evaluation data size.  The
shared defaults are ``N_b = 7``, ``N_p = 50``, ``theta_c = 0.7``,
``theta_m = 0.2``, ``T = 500`` and ``lambda = 5``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.core.genetic import GASettings
from repro.functions.registry import get_function


@dataclasses.dataclass(frozen=True)
class GADefaults:
    """The caption defaults of Table 1."""

    num_breakpoints: int = 7
    population_size: int = 50
    crossover_prob: float = 0.7
    mutation_prob: float = 0.2
    generations: int = 500
    frac_bits: int = 5


GA_DEFAULTS = GADefaults()


@dataclasses.dataclass(frozen=True)
class OperatorSearchConfig:
    """Everything Table 1 specifies for one operator.

    Attributes
    ----------
    name:
        Operator name as registered in :mod:`repro.functions`.
    search_range:
        ``[R_n, R_p]``.
    theta_r:
        RM per-exponent probability (0 disables RM, as for DIV/RSQRT).
    rm_range_8, rm_range_16:
        ``[m_a, m_b]`` grid-exponent ranges for 8- and 16-entry LUTs.
        ``None`` means RM does not apply for that entry count.
    data_size:
        Approximate number of evaluation samples the paper reports using.
    frac_bits:
        Decimal bit-width ``lambda`` for the FXP conversion.
    """

    name: str
    search_range: Tuple[float, float]
    theta_r: float
    rm_range_8: Optional[Tuple[int, int]]
    rm_range_16: Optional[Tuple[int, int]]
    data_size: int
    frac_bits: int = GA_DEFAULTS.frac_bits

    def rm_range(self, num_entries: int) -> Optional[Tuple[int, int]]:
        """RM grid-exponent range for the given LUT entry count."""
        if num_entries <= 8:
            return self.rm_range_8
        return self.rm_range_16

    def ga_settings(
        self,
        num_entries: int = 8,
        generations: Optional[int] = None,
        population_size: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> GASettings:
        """Build :class:`GASettings` for this operator.

        ``num_entries`` sets the breakpoint count to ``num_entries - 1``;
        ``generations`` / ``population_size`` override the Table 1 defaults
        (handy for fast tests).
        """
        return GASettings(
            num_breakpoints=num_entries - 1,
            population_size=population_size or GA_DEFAULTS.population_size,
            crossover_prob=GA_DEFAULTS.crossover_prob,
            mutation_prob=GA_DEFAULTS.mutation_prob,
            generations=generations or GA_DEFAULTS.generations,
            seed=seed,
        )

    def function(self):
        """The registered :class:`NonLinearFunction`, re-ranged to Table 1."""
        return get_function(self.name).with_range(*self.search_range)


# Table 1 of the paper, row by row.
DEFAULT_CONFIGS: Dict[str, OperatorSearchConfig] = {
    "gelu": OperatorSearchConfig(
        name="gelu",
        search_range=(-4.0, 4.0),
        theta_r=0.05,
        rm_range_8=(0, 6),
        rm_range_16=(0, 6),
        data_size=800,
    ),
    "hswish": OperatorSearchConfig(
        name="hswish",
        search_range=(-4.0, 4.0),
        theta_r=0.05,
        rm_range_8=(0, 6),
        rm_range_16=(2, 6),
        data_size=800,
    ),
    "exp": OperatorSearchConfig(
        name="exp",
        search_range=(-8.0, 0.0),
        theta_r=0.05,
        rm_range_8=(2, 6),
        rm_range_16=(0, 6),
        data_size=800,
    ),
    "div": OperatorSearchConfig(
        name="div",
        search_range=(0.5, 4.0),
        theta_r=0.0,
        rm_range_8=None,
        rm_range_16=None,
        data_size=350,
    ),
    "rsqrt": OperatorSearchConfig(
        name="rsqrt",
        search_range=(0.25, 4.0),
        theta_r=0.0,
        rm_range_8=None,
        rm_range_16=None,
        data_size=360,
    ),
}


def default_config(name: str) -> OperatorSearchConfig:
    """Return the Table 1 configuration for ``name``.

    Operators not listed in Table 1 (e.g. sigmoid, tanh) get a generic
    configuration derived from their registered search range, with RM over
    the full ``[0, 6]`` grid range.
    """
    key = name.lower()
    if key in DEFAULT_CONFIGS:
        return DEFAULT_CONFIGS[key]
    fn = get_function(key)
    return OperatorSearchConfig(
        name=key,
        search_range=fn.search_range,
        theta_r=0.05,
        rm_range_8=(0, 6),
        rm_range_16=(0, 6),
        data_size=800,
    )
