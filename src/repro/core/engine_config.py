"""One registry for every engine knob, with layered resolution.

Three engine families grew over the previous PRs, each with its own switch
threaded by hand through constructors and budget dataclasses:

* the genetic search scoring path (``"batch"`` | ``"legacy"``),
* the pwl operator inference engine (``"dense"`` | ``"legacy"``),
* the experiment sweep's worker count and on-disk artifact directory,
* the whole-model inference engine (``"compiled"`` | ``"eager"``): whether
  ``predict`` / no-grad evaluation replays a traced, optimised
  :mod:`repro.graph` plan or rebuilds the dynamic autograd graph per call.

This module collapses them into a single :class:`EngineConfig` resolved per
knob with the precedence **kwarg > context > env > default**:

1. an explicit keyword argument at a call site always wins,
2. otherwise the innermost :func:`use` context-manager override applies,
3. otherwise the environment (``REPRO_GA_ENGINE``, ``REPRO_PWL_ENGINE``,
   ``REPRO_SWEEP_WORKERS``, ``REPRO_ARTIFACT_DIR``,
   ``REPRO_INFER_ENGINE``, ``REPRO_TRAIN_ENGINE``),
4. otherwise the defaults (``batch`` / ``dense`` / ``0`` / no store /
   ``eager``).

Consumers (:class:`~repro.core.genetic.GeneticSearch`,
:class:`~repro.nn.approx.PWLActivation` and friends,
:meth:`~repro.baselines.nn_lut.NNLUT.deploy`,
:class:`~repro.experiments.jobs.SweepEngine`) accept ``engine=None`` /
``workers=None`` and call the ``resolve_*`` helpers here, so experiment
code selects engines once::

    from repro.core import engine_config

    with engine_config.use(ga_engine="legacy", pwl_engine="legacy"):
        run_table3(...)          # every nested search + pwl module follows

Seeded results are bit-identical across every engine choice (the PR 1/2
contracts), so the resolution layer can never change numbers — only speed.

The override stack is process-local (a ``ProcessPoolExecutor`` worker sees
the environment and defaults, not the parent's ``use`` block) and not
thread-safe; scope ``use`` blocks to one thread.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
from typing import Any, Dict, Iterator, List, Optional, Tuple

# Canonical engine inventories.  ``repro.core.genetic`` and
# ``repro.core.lut`` alias these, so the validators can never drift.
GA_ENGINES: Tuple[str, ...] = ("batch", "legacy")
PWL_ENGINES: Tuple[str, ...] = ("dense", "legacy")
INFER_ENGINES: Tuple[str, ...] = ("eager", "compiled")
TRAIN_ENGINES: Tuple[str, ...] = ("eager", "compiled")
DECODE_ENGINES: Tuple[str, ...] = ("eager", "compiled")

# Environment knobs (the env layer of the resolution order).
GA_ENGINE_ENV = "REPRO_GA_ENGINE"
PWL_ENGINE_ENV = "REPRO_PWL_ENGINE"
SWEEP_WORKERS_ENV = "REPRO_SWEEP_WORKERS"
SWEEP_RUN_DIR_ENV = "REPRO_SWEEP_RUN_DIR"
SWEEP_LEASE_S_ENV = "REPRO_SWEEP_LEASE_S"
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"
INFER_ENGINE_ENV = "REPRO_INFER_ENGINE"
TRAIN_ENGINE_ENV = "REPRO_TRAIN_ENGINE"
DECODE_ENGINE_ENV = "REPRO_DECODE_ENGINE"
RETRY_ATTEMPTS_ENV = "REPRO_RETRY_ATTEMPTS"
RETRY_BASE_DELAY_ENV = "REPRO_RETRY_BASE_DELAY"
SERVE_QUEUE_LIMIT_ENV = "REPRO_SERVE_QUEUE_LIMIT"
SERVE_DEADLINE_MS_ENV = "REPRO_SERVE_DEADLINE_MS"
SERVE_REPLICAS_ENV = "REPRO_SERVE_REPLICAS"
SERVE_HEARTBEAT_MS_ENV = "REPRO_SERVE_HEARTBEAT_MS"
SERVE_CRASH_LOOP_THRESHOLD_ENV = "REPRO_SERVE_CRASH_LOOP_THRESHOLD"


@dataclasses.dataclass(frozen=True)
class EngineConfig:
    """A fully resolved snapshot of every engine knob."""

    ga_engine: str = "batch"
    pwl_engine: str = "dense"
    sweep_workers: int = 0
    artifact_dir: Optional[str] = None
    infer_engine: str = "eager"
    # Compiled-training knob (PR 9): whether ``Trainer.fit`` runs the
    # eager autograd step or traces the whole step (forward + backward +
    # optimizer update) once and replays the optimised plan.  Both engines
    # are bit-identical per the PR 9 contract — losses, weights, optimizer
    # buffers and the RNG stream match exactly.
    train_engine: str = "eager"
    # Autoregressive-decode knob (PR 10): whether ``MiniDecoder`` token
    # steps (and the serving tier's ``submit_decode`` drains) replay the
    # per-(batch, cache-bucket) compiled single-token plan or run the
    # eager step.  Greedy token streams are identical either way; the
    # eager-cached and compiled-cached *logits* are bit-identical.
    decode_engine: str = "eager"
    # Durable-sweep knobs (PR 8): ``sweep_run_dir`` makes every
    # ``SweepEngine.run_manifest`` journal its cell state under that
    # directory (crash-safe resume via ``SweepEngine.resume``);
    # ``sweep_lease_s`` is the work-queue lease / visibility timeout — a
    # leased cell whose coordinator dies becomes re-leasable this many
    # seconds after its last heartbeat renewal.
    sweep_run_dir: Optional[str] = None
    sweep_lease_s: float = 30.0
    # Reliability knobs (PR 6): sweep/store retry defaults and the serving
    # tier's admission-control defaults.  ``retry_attempts`` counts total
    # attempts (1 = no retry); ``serve_queue_limit`` 0 means unbounded;
    # ``serve_deadline_ms`` 0 means no default per-request deadline.
    retry_attempts: int = 3
    retry_base_delay: float = 0.05
    serve_queue_limit: int = 0
    serve_deadline_ms: float = 0.0
    # Replicated-serving knobs (PR 7): the supervisor's fleet size, how
    # often each worker heartbeats (staleness past 5x the interval is a
    # hang and the replica is killed), and how many deaths inside the
    # crash-loop window trip the circuit breaker into FAILED.
    serve_replicas: int = 2
    serve_heartbeat_ms: float = 100.0
    serve_crash_loop_threshold: int = 3

    def __post_init__(self) -> None:
        check_ga_engine(self.ga_engine)
        check_pwl_engine(self.pwl_engine)
        check_infer_engine(self.infer_engine)
        check_train_engine(self.train_engine)
        check_decode_engine(self.decode_engine)
        if self.sweep_workers < 0:
            raise ValueError("sweep_workers must be >= 0, got %r" % (self.sweep_workers,))
        if self.sweep_lease_s <= 0:
            raise ValueError(
                "sweep_lease_s must be > 0, got %r" % (self.sweep_lease_s,)
            )
        if self.retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1, got %r" % (self.retry_attempts,))
        if self.retry_base_delay < 0:
            raise ValueError(
                "retry_base_delay must be >= 0, got %r" % (self.retry_base_delay,)
            )
        if self.serve_queue_limit < 0:
            raise ValueError(
                "serve_queue_limit must be >= 0, got %r" % (self.serve_queue_limit,)
            )
        if self.serve_deadline_ms < 0:
            raise ValueError(
                "serve_deadline_ms must be >= 0, got %r" % (self.serve_deadline_ms,)
            )
        if self.serve_replicas < 1:
            raise ValueError(
                "serve_replicas must be >= 1, got %r" % (self.serve_replicas,)
            )
        if self.serve_heartbeat_ms <= 0:
            raise ValueError(
                "serve_heartbeat_ms must be > 0, got %r" % (self.serve_heartbeat_ms,)
            )
        if self.serve_crash_loop_threshold < 1:
            raise ValueError(
                "serve_crash_loop_threshold must be >= 1, got %r"
                % (self.serve_crash_loop_threshold,)
            )


def check_ga_engine(engine: str) -> str:
    """Validate a genetic-search scoring engine name."""
    if engine not in GA_ENGINES:
        raise ValueError(
            "unknown engine %r (expected one of %s)" % (engine, GA_ENGINES)
        )
    return engine


def check_pwl_engine(engine: str) -> str:
    """Validate a pwl operator inference engine name."""
    if engine not in PWL_ENGINES:
        raise ValueError(
            "unknown engine %r; expected one of %s" % (engine, PWL_ENGINES)
        )
    return engine


def check_infer_engine(engine: str) -> str:
    """Validate a model inference engine name."""
    if engine not in INFER_ENGINES:
        raise ValueError(
            "unknown engine %r; expected one of %s" % (engine, INFER_ENGINES)
        )
    return engine


def check_train_engine(engine: str) -> str:
    """Validate a training engine name."""
    if engine not in TRAIN_ENGINES:
        raise ValueError(
            "unknown engine %r; expected one of %s" % (engine, TRAIN_ENGINES)
        )
    return engine


def check_decode_engine(engine: str) -> str:
    """Validate an autoregressive-decode engine name."""
    if engine not in DECODE_ENGINES:
        raise ValueError(
            "unknown engine %r; expected one of %s" % (engine, DECODE_ENGINES)
        )
    return engine


_FIELDS = tuple(field.name for field in dataclasses.fields(EngineConfig))
_OVERRIDES: List[Dict[str, Any]] = []


def _env_layer() -> Dict[str, Any]:
    """Knobs picked up from the environment (resolution layer 3)."""
    layer: Dict[str, Any] = {}
    ga = os.environ.get(GA_ENGINE_ENV)
    if ga:
        layer["ga_engine"] = ga
    pwl = os.environ.get(PWL_ENGINE_ENV)
    if pwl:
        layer["pwl_engine"] = pwl
    raw_workers = os.environ.get(SWEEP_WORKERS_ENV)
    if raw_workers is not None:
        try:
            layer["sweep_workers"] = int(raw_workers.strip() or "0")
        except ValueError:
            raise ValueError(
                "%s must be an integer worker count, got %r"
                % (SWEEP_WORKERS_ENV, raw_workers)
            ) from None
    directory = os.environ.get(ARTIFACT_DIR_ENV)
    if directory:
        layer["artifact_dir"] = directory
    run_dir = os.environ.get(SWEEP_RUN_DIR_ENV)
    if run_dir:
        layer["sweep_run_dir"] = run_dir
    infer = os.environ.get(INFER_ENGINE_ENV)
    if infer:
        layer["infer_engine"] = infer
    train = os.environ.get(TRAIN_ENGINE_ENV)
    if train:
        layer["train_engine"] = train
    decode = os.environ.get(DECODE_ENGINE_ENV)
    if decode:
        layer["decode_engine"] = decode
    for env, field, convert in (
        (SWEEP_LEASE_S_ENV, "sweep_lease_s", float),
        (RETRY_ATTEMPTS_ENV, "retry_attempts", int),
        (RETRY_BASE_DELAY_ENV, "retry_base_delay", float),
        (SERVE_QUEUE_LIMIT_ENV, "serve_queue_limit", int),
        (SERVE_DEADLINE_MS_ENV, "serve_deadline_ms", float),
        (SERVE_REPLICAS_ENV, "serve_replicas", int),
        (SERVE_HEARTBEAT_MS_ENV, "serve_heartbeat_ms", float),
        (SERVE_CRASH_LOOP_THRESHOLD_ENV, "serve_crash_loop_threshold", int),
    ):
        raw = os.environ.get(env)
        if raw:
            try:
                layer[field] = convert(raw.strip())
            except ValueError:
                raise ValueError(
                    "%s must be a %s, got %r" % (env, convert.__name__, raw)
                ) from None
    return layer


def current() -> EngineConfig:
    """The active configuration: defaults, then env, then ``use`` overrides."""
    values: Dict[str, Any] = _env_layer()
    for layer in _OVERRIDES:
        values.update(layer)
    return EngineConfig(**values)


@contextlib.contextmanager
def use(**overrides: Any) -> Iterator[EngineConfig]:
    """Scope engine-knob overrides to a ``with`` block (innermost wins).

    Accepts any :class:`EngineConfig` field::

        with engine_config.use(pwl_engine="legacy", sweep_workers=4):
            ...

    Values are validated on entry, so a typo fails at the ``with`` line.
    """
    unknown = set(overrides) - set(_FIELDS)
    if unknown:
        raise TypeError(
            "unknown engine-config field(s) %s; expected %s"
            % (sorted(unknown), list(_FIELDS))
        )
    layer = dict(overrides)
    _OVERRIDES.append(layer)
    try:
        yield current()  # validates the merged configuration up front
    finally:
        _OVERRIDES.remove(layer)


def resolve_ga_engine(override: Optional[str] = None) -> str:
    """Genetic-search scoring engine: kwarg > context > env > ``"batch"``."""
    if override is not None:
        return check_ga_engine(override)
    return current().ga_engine


def resolve_pwl_engine(override: Optional[str] = None) -> str:
    """pwl inference engine: kwarg > context > env > ``"dense"``."""
    if override is not None:
        return check_pwl_engine(override)
    return current().pwl_engine


def resolve_sweep_workers(override: Optional[int] = None) -> int:
    """Sweep process count: kwarg > context > env > ``0`` (serial)."""
    if override is not None:
        if override < 0:
            raise ValueError("workers must be >= 0, got %r" % (override,))
        return int(override)
    return current().sweep_workers


def resolve_artifact_dir(override: Optional[str] = None) -> Optional[str]:
    """On-disk artifact store directory: kwarg > context > env > none."""
    if override is not None:
        return override
    return current().artifact_dir


def resolve_sweep_run_dir(override: Optional[str] = None) -> Optional[str]:
    """Durable sweep run directory: kwarg > context > env > none.

    ``None`` means sweeps stay process-lifetime objects (no journal); any
    directory makes every ``run_manifest`` crash-safe and resumable.
    """
    if override is not None:
        return override
    return current().sweep_run_dir


def resolve_sweep_lease_s(override: Optional[float] = None) -> float:
    """Work-queue lease timeout (seconds): kwarg > context > env > ``30``."""
    if override is not None:
        if override <= 0:
            raise ValueError("lease timeout must be > 0, got %r" % (override,))
        return float(override)
    return current().sweep_lease_s


def resolve_infer_engine(override: Optional[str] = None) -> str:
    """Model inference engine: kwarg > context > env > ``"eager"``.

    ``"compiled"`` routes whole-model inference (``predict`` / no-grad
    evaluation / LUT deployment) through the traced-graph executor of
    :mod:`repro.graph`; ``"eager"`` rebuilds the dynamic autograd graph per
    call.  Both produce bit-identical outputs — the compiled executor
    replays exactly the ops the eager forward would run.
    """
    if override is not None:
        return check_infer_engine(override)
    return current().infer_engine


def resolve_train_engine(override: Optional[str] = None) -> str:
    """Training engine: kwarg > context > env > ``"eager"``.

    ``"compiled"`` makes ``Trainer.fit`` trace the full fine-tune step
    (forward + backward + optimizer update) once per input signature and
    replay the optimised static plan every subsequent step; ``"eager"``
    rebuilds the dynamic autograd tape per step.  Both engines are
    bit-identical — per-step losses, final weights, optimizer buffers and
    the data-order RNG stream match exactly.
    """
    if override is not None:
        return check_train_engine(override)
    return current().train_engine


def resolve_decode_engine(override: Optional[str] = None) -> str:
    """Autoregressive-decode engine: kwarg > context > env > ``"eager"``.

    ``"compiled"`` routes KV-cached single-token decode steps through
    :class:`repro.graph.executor.CompiledDecodeStep` — one traced plan per
    (batch, cache-capacity) signature, cache tensors carried in-place
    between replays; ``"eager"`` runs the dynamic step per token.  The
    greedy token streams are identical across engines (pinned by the
    decode parity suite), and eager-vs-compiled logits are bit-identical
    for the same cache state.
    """
    if override is not None:
        return check_decode_engine(override)
    return current().decode_engine


def resolve_retry_attempts(override: Optional[int] = None) -> int:
    """Total retry attempts: kwarg > context > env > ``3``."""
    if override is not None:
        if override < 1:
            raise ValueError("retry attempts must be >= 1, got %r" % (override,))
        return int(override)
    return current().retry_attempts


def resolve_retry_base_delay(override: Optional[float] = None) -> float:
    """Retry backoff base (seconds): kwarg > context > env > ``0.05``."""
    if override is not None:
        if override < 0:
            raise ValueError("retry base delay must be >= 0, got %r" % (override,))
        return float(override)
    return current().retry_base_delay


def resolve_serve_queue_limit(override: Optional[int] = None) -> int:
    """Serving admission-queue bound: kwarg > context > env > ``0`` (unbounded)."""
    if override is not None:
        if override < 0:
            raise ValueError("queue limit must be >= 0, got %r" % (override,))
        return int(override)
    return current().serve_queue_limit


def resolve_serve_deadline_ms(override: Optional[float] = None) -> float:
    """Default per-request deadline (ms): kwarg > context > env > ``0`` (none)."""
    if override is not None:
        if override < 0:
            raise ValueError("deadline must be >= 0, got %r" % (override,))
        return float(override)
    return current().serve_deadline_ms


def resolve_serve_replicas(override: Optional[int] = None) -> int:
    """Replicated-serving fleet size: kwarg > context > env > ``2``."""
    if override is not None:
        if override < 1:
            raise ValueError("replicas must be >= 1, got %r" % (override,))
        return int(override)
    return current().serve_replicas


def resolve_serve_heartbeat_ms(override: Optional[float] = None) -> float:
    """Replica heartbeat interval (ms): kwarg > context > env > ``100``."""
    if override is not None:
        if override <= 0:
            raise ValueError("heartbeat interval must be > 0, got %r" % (override,))
        return float(override)
    return current().serve_heartbeat_ms


def resolve_serve_crash_loop_threshold(override: Optional[int] = None) -> int:
    """Deaths-in-window tripping the breaker: kwarg > context > env > ``3``."""
    if override is not None:
        if override < 1:
            raise ValueError("crash-loop threshold must be >= 1, got %r" % (override,))
        return int(override)
    return current().serve_crash_loop_threshold
