"""Piece-wise linear approximation (Eq. 1 of the paper).

An ``N``-entry pwl is defined by ``N - 1`` breakpoints ``p_0 < ... < p_{N-2}``
and per-segment slopes/intercepts ``k_i, b_i``:

    pwl(x) = k_0 x + b_0          if x <  p_0
           = k_i x + b_i          if p_{i-1} <= x < p_i
           = k_{N-1} x + b_{N-1}  if x >= p_{N-2}

:func:`fit_pwl` derives the slopes and intercepts for a given breakpoint set
by interpolating (or least-squares fitting) the target function on each
segment over the search range, which is exactly how GQA-LUT turns a
breakpoint individual into a candidate approximation.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.quant.fxp import fxp_round


@dataclasses.dataclass(frozen=True)
class PiecewiseLinear:
    """An immutable piece-wise linear function.

    Attributes
    ----------
    breakpoints:
        Sorted array of ``N - 1`` segment boundaries.
    slopes, intercepts:
        Arrays of length ``N`` holding ``k_i`` and ``b_i``.
    """

    breakpoints: np.ndarray
    slopes: np.ndarray
    intercepts: np.ndarray

    def __post_init__(self) -> None:
        bp = np.asarray(self.breakpoints, dtype=np.float64).ravel()
        k = np.asarray(self.slopes, dtype=np.float64).ravel()
        b = np.asarray(self.intercepts, dtype=np.float64).ravel()
        if k.shape != b.shape:
            raise ValueError("slopes and intercepts must have the same length")
        if bp.size != k.size - 1:
            raise ValueError(
                "an N-entry pwl needs N-1 breakpoints (got %d breakpoints for %d entries)"
                % (bp.size, k.size)
            )
        if bp.size and np.any(np.diff(bp) < 0):
            raise ValueError("breakpoints must be sorted in ascending order")
        object.__setattr__(self, "breakpoints", bp)
        object.__setattr__(self, "slopes", k)
        object.__setattr__(self, "intercepts", b)

    @property
    def num_entries(self) -> int:
        """Number of LUT entries (segments)."""
        return int(self.slopes.size)

    def segment_index(self, x) -> np.ndarray:
        """Return the segment index selected for each element of ``x``.

        Matches the comparer in Figure 1: index ``i`` is the count of
        breakpoints less than or equal to ``x``.
        """
        arr = np.asarray(x, dtype=np.float64)
        return np.searchsorted(self.breakpoints, arr, side="right")

    def __call__(self, x) -> np.ndarray:
        """Evaluate the pwl at ``x`` (element-wise)."""
        arr = np.asarray(x, dtype=np.float64)
        idx = self.segment_index(arr)
        return self.slopes[idx] * arr + self.intercepts[idx]

    def to_fixed_point(self, frac_bits: int) -> "PiecewiseLinear":
        """Round slopes and intercepts to FXP with ``frac_bits`` decimal bits.

        This is the final step of Algorithm 1 (``lambda`` rounding); the
        breakpoints are left untouched — their quantization depends on the
        runtime scaling factor and is handled by :class:`QuantizedLUT`.
        """
        return PiecewiseLinear(
            breakpoints=self.breakpoints.copy(),
            slopes=fxp_round(self.slopes, frac_bits),
            intercepts=fxp_round(self.intercepts, frac_bits),
        )

    def max_segment_width(self) -> float:
        """Widest interior segment; useful for diagnosing degenerate fits."""
        if self.breakpoints.size < 2:
            return float("inf")
        return float(np.max(np.diff(self.breakpoints)))

    def is_continuous(self, tol: float = 1e-6) -> bool:
        """True when adjacent segments agree at every breakpoint within ``tol``."""
        if self.breakpoints.size == 0:
            return True
        left = self.slopes[:-1] * self.breakpoints + self.intercepts[:-1]
        right = self.slopes[1:] * self.breakpoints + self.intercepts[1:]
        return bool(np.all(np.abs(left - right) <= tol))


def uniform_breakpoints(lo: float, hi: float, num_entries: int) -> np.ndarray:
    """Evenly spaced interior breakpoints for an ``num_entries``-entry pwl."""
    if num_entries < 2:
        raise ValueError("a pwl needs at least 2 entries, got %d" % num_entries)
    if not lo < hi:
        raise ValueError("invalid range [%r, %r]" % (lo, hi))
    return np.linspace(lo, hi, num_entries + 1)[1:-1]


def _clean_breakpoints(
    breakpoints: Sequence[float], lo: float, hi: float, min_gap: float
) -> np.ndarray:
    """Sort, clip to the search range, and enforce a minimal spacing."""
    bp = np.sort(np.asarray(breakpoints, dtype=np.float64).ravel())
    bp = np.clip(bp, lo, hi)
    if bp.size == 0:
        return bp
    cleaned = [float(bp[0])]
    for value in bp[1:]:
        cleaned.append(max(float(value), cleaned[-1] + min_gap))
    return np.minimum(np.asarray(cleaned), hi)


def fit_pwl(
    fn: Callable[[np.ndarray], np.ndarray],
    breakpoints: Sequence[float],
    search_range: Tuple[float, float],
    method: str = "interpolate",
    samples_per_segment: int = 64,
) -> PiecewiseLinear:
    """Derive slopes/intercepts for ``breakpoints`` approximating ``fn``.

    Parameters
    ----------
    fn:
        The target non-linear function.
    breakpoints:
        The ``N - 1`` candidate breakpoints (an individual of the GA
        population).  They are sorted and lightly de-duplicated before use.
    search_range:
        The ``[R_n, R_p]`` interval; the two outermost segments are fitted on
        ``[R_n, p_0]`` and ``[p_{N-2}, R_p]``.
    method:
        ``"interpolate"`` joins the function values at segment endpoints
        (continuous pwl, the construction shown in Fig. 2b);
        ``"lstsq"`` performs an independent least-squares line fit per
        segment (lower MSE but possibly discontinuous).
    samples_per_segment:
        Sample count per segment for the least-squares method.
    """
    lo, hi = float(search_range[0]), float(search_range[1])
    if not lo < hi:
        raise ValueError("invalid search range [%r, %r]" % (lo, hi))
    min_gap = (hi - lo) * 1e-6
    bp = _clean_breakpoints(breakpoints, lo, hi, min_gap)
    edges = np.concatenate(([lo], bp, [hi]))

    if method == "interpolate":
        values = np.asarray(fn(edges), dtype=np.float64)
        x0, x1 = edges[:-1], edges[1:]
        y0, y1 = values[:-1], values[1:]
        width = np.maximum(x1 - x0, min_gap)
        slopes = (y1 - y0) / width
        intercepts = y0 - slopes * x0
    elif method == "lstsq":
        slopes = np.empty(edges.size - 1)
        intercepts = np.empty(edges.size - 1)
        for i in range(edges.size - 1):
            x0, x1 = edges[i], edges[i + 1]
            if x1 - x0 < min_gap:
                x1 = x0 + min_gap
            xs = np.linspace(x0, x1, samples_per_segment)
            ys = np.asarray(fn(xs), dtype=np.float64)
            design = np.stack([xs, np.ones_like(xs)], axis=1)
            coeff, *_ = np.linalg.lstsq(design, ys, rcond=None)
            slopes[i], intercepts[i] = coeff[0], coeff[1]
    else:
        raise ValueError("unknown fit method %r (expected 'interpolate' or 'lstsq')" % method)

    return PiecewiseLinear(breakpoints=bp, slopes=slopes, intercepts=intercepts)
