"""Piece-wise linear approximation (Eq. 1 of the paper).

An ``N``-entry pwl is defined by ``N - 1`` breakpoints ``p_0 < ... < p_{N-2}``
and per-segment slopes/intercepts ``k_i, b_i``:

    pwl(x) = k_0 x + b_0          if x <  p_0
           = k_i x + b_i          if p_{i-1} <= x < p_i
           = k_{N-1} x + b_{N-1}  if x >= p_{N-2}

:func:`fit_pwl` derives the slopes and intercepts for a given breakpoint set
by interpolating (or least-squares fitting) the target function on each
segment over the search range, which is exactly how GQA-LUT turns a
breakpoint individual into a candidate approximation.

:func:`fit_pwl_batch` fits a whole ``(P, N - 1)`` population matrix in one
shot and returns a :class:`PiecewiseLinearBatch`.  Both entry points share
the same vectorized cleaning and segment-fit helpers, so row ``i`` of a
batch fit is bit-identical to the scalar fit of row ``i`` — the property the
genetic search relies on to make its batched and per-individual scoring
paths interchangeable (see DESIGN.md).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence, Tuple

from repro.backend import xp as np

from repro.quant.fxp import fxp_round


@dataclasses.dataclass(frozen=True)
class PiecewiseLinear:
    """An immutable piece-wise linear function.

    Attributes
    ----------
    breakpoints:
        Sorted array of ``N - 1`` segment boundaries.
    slopes, intercepts:
        Arrays of length ``N`` holding ``k_i`` and ``b_i``.
    """

    breakpoints: np.ndarray
    slopes: np.ndarray
    intercepts: np.ndarray

    def __post_init__(self) -> None:
        bp = np.asarray(self.breakpoints, dtype=np.float64).ravel()
        k = np.asarray(self.slopes, dtype=np.float64).ravel()
        b = np.asarray(self.intercepts, dtype=np.float64).ravel()
        if k.shape != b.shape:
            raise ValueError("slopes and intercepts must have the same length")
        if bp.size != k.size - 1:
            raise ValueError(
                "an N-entry pwl needs N-1 breakpoints (got %d breakpoints for %d entries)"
                % (bp.size, k.size)
            )
        if bp.size and np.any(np.diff(bp) < 0):
            raise ValueError("breakpoints must be sorted in ascending order")
        object.__setattr__(self, "breakpoints", bp)
        object.__setattr__(self, "slopes", k)
        object.__setattr__(self, "intercepts", b)

    @property
    def num_entries(self) -> int:
        """Number of LUT entries (segments)."""
        return int(self.slopes.size)

    def segment_index(self, x) -> np.ndarray:
        """Return the segment index selected for each element of ``x``.

        Matches the comparer in Figure 1: index ``i`` is the count of
        breakpoints less than or equal to ``x``.
        """
        arr = np.asarray(x, dtype=np.float64)
        return np.searchsorted(self.breakpoints, arr, side="right")

    def __call__(self, x) -> np.ndarray:
        """Evaluate the pwl at ``x`` (element-wise)."""
        arr = np.asarray(x, dtype=np.float64)
        idx = self.segment_index(arr)
        return self.slopes[idx] * arr + self.intercepts[idx]

    def to_fixed_point(self, frac_bits: int) -> "PiecewiseLinear":
        """Round slopes and intercepts to FXP with ``frac_bits`` decimal bits.

        This is the final step of Algorithm 1 (``lambda`` rounding); the
        breakpoints are left untouched — their quantization depends on the
        runtime scaling factor and is handled by :class:`QuantizedLUT`.
        """
        return PiecewiseLinear(
            breakpoints=self.breakpoints.copy(),
            slopes=fxp_round(self.slopes, frac_bits),
            intercepts=fxp_round(self.intercepts, frac_bits),
        )

    def max_segment_width(self) -> float:
        """Widest interior segment; useful for diagnosing degenerate fits."""
        if self.breakpoints.size < 2:
            return float("inf")
        return float(np.max(np.diff(self.breakpoints)))

    def is_continuous(self, tol: float = 1e-6) -> bool:
        """True when adjacent segments agree at every breakpoint within ``tol``."""
        if self.breakpoints.size == 0:
            return True
        left = self.slopes[:-1] * self.breakpoints + self.intercepts[:-1]
        right = self.slopes[1:] * self.breakpoints + self.intercepts[1:]
        return bool(np.all(np.abs(left - right) <= tol))


def uniform_breakpoints(lo: float, hi: float, num_entries: int) -> np.ndarray:
    """Evenly spaced interior breakpoints for an ``num_entries``-entry pwl."""
    if num_entries < 2:
        raise ValueError("a pwl needs at least 2 entries, got %d" % num_entries)
    if not lo < hi:
        raise ValueError("invalid range [%r, %r]" % (lo, hi))
    return np.linspace(lo, hi, num_entries + 1)[1:-1]


def _clean_breakpoints(breakpoints: np.ndarray, lo: float, hi: float, min_gap: float) -> np.ndarray:
    """Sort, clip to the search range, and enforce a minimal spacing.

    Operates along the last axis, so a ``(P, M)`` population matrix is
    cleaned in one shot.  The spacing recurrence ``c_i = max(b_i, c_{i-1} +
    g)`` is computed as a running maximum of the gap-shifted values
    ``b_i - i g`` (``c_i = i g + max_{j <= i}(b_j - j g)``); breakpoints that
    already satisfy the spacing pass through bitwise untouched.
    """
    bp = np.sort(np.clip(np.asarray(breakpoints, dtype=np.float64), lo, hi), axis=-1)
    if bp.shape[-1] == 0:
        return bp
    offset = min_gap * np.arange(bp.shape[-1], dtype=np.float64)
    shifted = bp - offset
    chain = np.maximum.accumulate(shifted, axis=-1)
    cleaned = np.where(shifted >= chain, bp, chain + offset)
    return np.minimum(cleaned, hi)


def _fit_segments(
    fn: Callable[[np.ndarray], np.ndarray],
    edges: np.ndarray,
    min_gap: float,
    method: str,
    samples_per_segment: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment slopes/intercepts for an ``(..., N + 1)`` edge array.

    Shared by the scalar and batch fit paths: every operation is
    element-wise over the leading axes, so fitting a stacked population
    produces the same bits per row as fitting each row on its own.
    """
    if method == "interpolate":
        values = np.asarray(fn(edges), dtype=np.float64)
        x0, x1 = edges[..., :-1], edges[..., 1:]
        y0, y1 = values[..., :-1], values[..., 1:]
        width = np.maximum(x1 - x0, min_gap)
        slopes = (y1 - y0) / width
        intercepts = y0 - slopes * x0
    elif method == "lstsq":
        x0, x1 = edges[..., :-1], edges[..., 1:]
        x1 = np.where(x1 - x0 < min_gap, x0 + min_gap, x1)
        xs = np.linspace(x0, x1, samples_per_segment, axis=-1)
        ys = np.asarray(fn(xs), dtype=np.float64)
        x_mean = xs.mean(axis=-1, keepdims=True)
        y_mean = ys.mean(axis=-1, keepdims=True)
        x_centered = xs - x_mean
        slopes = (x_centered * (ys - y_mean)).sum(axis=-1) / (x_centered * x_centered).sum(axis=-1)
        intercepts = y_mean[..., 0] - slopes * x_mean[..., 0]
    else:
        raise ValueError("unknown fit method %r (expected 'interpolate' or 'lstsq')" % method)
    return slopes, intercepts


def fit_pwl(
    fn: Callable[[np.ndarray], np.ndarray],
    breakpoints: Sequence[float],
    search_range: Tuple[float, float],
    method: str = "interpolate",
    samples_per_segment: int = 64,
) -> PiecewiseLinear:
    """Derive slopes/intercepts for ``breakpoints`` approximating ``fn``.

    Parameters
    ----------
    fn:
        The target non-linear function.
    breakpoints:
        The ``N - 1`` candidate breakpoints (an individual of the GA
        population).  They are sorted and lightly de-duplicated before use.
    search_range:
        The ``[R_n, R_p]`` interval; the two outermost segments are fitted on
        ``[R_n, p_0]`` and ``[p_{N-2}, R_p]``.
    method:
        ``"interpolate"`` joins the function values at segment endpoints
        (continuous pwl, the construction shown in Fig. 2b);
        ``"lstsq"`` performs an independent least-squares line fit per
        segment (lower MSE but possibly discontinuous).
    samples_per_segment:
        Sample count per segment for the least-squares method.
    """
    lo, hi = float(search_range[0]), float(search_range[1])
    if not lo < hi:
        raise ValueError("invalid search range [%r, %r]" % (lo, hi))
    min_gap = (hi - lo) * 1e-6
    bp = _clean_breakpoints(np.asarray(breakpoints, dtype=np.float64).ravel(), lo, hi, min_gap)
    edges = np.concatenate(([lo], bp, [hi]))
    slopes, intercepts = _fit_segments(fn, edges, min_gap, method, samples_per_segment)
    return PiecewiseLinear(breakpoints=bp, slopes=slopes, intercepts=intercepts)


@dataclasses.dataclass(frozen=True)
class PiecewiseLinearBatch:
    """A population of ``P`` pwl functions stored as dense matrices.

    Attributes
    ----------
    breakpoints:
        ``(P, N - 1)`` matrix, each row sorted ascending.
    slopes, intercepts:
        ``(P, N)`` matrices of per-segment coefficients.

    Evaluating the batch on a grid of ``G`` points is a single ``(P, G)``
    array operation; row ``i`` is bit-identical to ``self.row(i)(x)``.
    """

    breakpoints: np.ndarray
    slopes: np.ndarray
    intercepts: np.ndarray

    def __post_init__(self) -> None:
        bp = np.asarray(self.breakpoints, dtype=np.float64)
        k = np.asarray(self.slopes, dtype=np.float64)
        b = np.asarray(self.intercepts, dtype=np.float64)
        if bp.ndim != 2 or k.ndim != 2 or b.ndim != 2:
            raise ValueError("batch pwl parameters must be 2-D (population, entries)")
        if k.shape != b.shape:
            raise ValueError("slopes and intercepts must have the same shape")
        if bp.shape[0] != k.shape[0] or bp.shape[1] != k.shape[1] - 1:
            raise ValueError(
                "an N-entry pwl batch needs (P, N-1) breakpoints (got %r for %r slopes)"
                % (bp.shape, k.shape)
            )
        if bp.shape[1] and np.any(np.diff(bp, axis=1) < 0):
            raise ValueError("each breakpoint row must be sorted in ascending order")
        object.__setattr__(self, "breakpoints", bp)
        object.__setattr__(self, "slopes", k)
        object.__setattr__(self, "intercepts", b)

    @property
    def population_size(self) -> int:
        return int(self.slopes.shape[0])

    @property
    def num_entries(self) -> int:
        return int(self.slopes.shape[1])

    def row(self, i: int) -> PiecewiseLinear:
        """The ``i``-th individual as a scalar :class:`PiecewiseLinear`."""
        return PiecewiseLinear(
            breakpoints=self.breakpoints[i].copy(),
            slopes=self.slopes[i].copy(),
            intercepts=self.intercepts[i].copy(),
        )

    @classmethod
    def from_rows(cls, pwls: Sequence[PiecewiseLinear]) -> "PiecewiseLinearBatch":
        """Stack scalar pwls (all with the same entry count) into a batch."""
        if not pwls:
            raise ValueError("need at least one pwl to build a batch")
        return cls(
            breakpoints=np.stack([p.breakpoints for p in pwls]),
            slopes=np.stack([p.slopes for p in pwls]),
            intercepts=np.stack([p.intercepts for p in pwls]),
        )

    def _broadcast_input(self, x) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        if arr.ndim == 0:
            arr = arr.reshape(1)
        if arr.ndim == 1:
            return arr[None, :]
        if arr.ndim == 2 and arr.shape[0] in (1, self.population_size):
            return arr
        raise ValueError(
            "batch input must be a shared 1-D grid or a (P, G) matrix, got shape %r"
            % (arr.shape,)
        )

    def segment_index(self, x) -> np.ndarray:
        """Comparer output per individual: a ``(P, G)`` integer matrix.

        ``x`` is either a shared 1-D grid or a per-individual ``(P, G)``
        matrix.  Matches ``searchsorted(side="right")`` row by row.
        """
        arr = self._broadcast_input(x)
        return (self.breakpoints[:, :, None] <= arr[:, None, :]).sum(axis=1)

    def __call__(self, x) -> np.ndarray:
        """Evaluate all ``P`` pwls; returns a ``(P, G)`` matrix.

        A shared ascending grid (the GA fitness case) takes a fast path:
        each row's breakpoints are located in the grid with one
        ``searchsorted`` and the per-segment coefficients are expanded with
        ``np.repeat`` — the selected ``k``/``b`` per point are the same as
        the comparer's, so the outputs are bit-identical to the scalar pwl.
        """
        arr = np.asarray(x, dtype=np.float64)
        if (
            arr.ndim == 1
            and arr.size
            and self.breakpoints.shape[1]
            and np.all(arr[1:] >= arr[:-1])
        ):
            counts = segment_counts(self.breakpoints, arr)
            k = np.repeat(self.slopes.ravel(), counts.ravel()).reshape(-1, arr.size)
            b = np.repeat(self.intercepts.ravel(), counts.ravel()).reshape(-1, arr.size)
            return k * arr[None, :] + b
        arr = self._broadcast_input(arr)
        idx = self.segment_index(arr)
        k = np.take_along_axis(self.slopes, idx, axis=1)
        b = np.take_along_axis(self.intercepts, idx, axis=1)
        return k * arr + b

    def to_fixed_point(self, frac_bits: int) -> "PiecewiseLinearBatch":
        """FXP-round every individual's slopes/intercepts (Algorithm 1)."""
        return PiecewiseLinearBatch(
            breakpoints=self.breakpoints.copy(),
            slopes=fxp_round(self.slopes, frac_bits),
            intercepts=fxp_round(self.intercepts, frac_bits),
        )


def segment_counts(breakpoints: np.ndarray, sorted_grid: np.ndarray) -> np.ndarray:
    """Points-per-segment for each row of an ``(R, M)`` breakpoint matrix.

    ``sorted_grid`` must be ascending.  Row ``r``, segment ``s`` counts the
    grid points whose comparer index (``#{bp <= x}``) equals ``s``; each row
    sums to ``sorted_grid.size``.  This is the inverse of the comparer: it
    lets batched lookups expand per-segment coefficients with ``np.repeat``
    instead of gathering per point.
    """
    rows, m = breakpoints.shape
    pos = np.searchsorted(sorted_grid, breakpoints.ravel(), side="left").reshape(rows, m)
    edges = np.empty((rows, m + 2), dtype=np.int64)
    edges[:, 0] = 0
    edges[:, -1] = sorted_grid.size
    edges[:, 1:-1] = pos
    return np.diff(edges, axis=1)


def fit_pwl_batch(
    fn: Callable[[np.ndarray], np.ndarray],
    population: np.ndarray,
    search_range: Tuple[float, float],
    method: str = "interpolate",
    samples_per_segment: int = 64,
) -> PiecewiseLinearBatch:
    """Fit every row of a ``(P, N - 1)`` breakpoint matrix in one shot.

    The cleaning, target-function sampling and per-segment fits all run as
    single array operations over the whole population; row ``i`` of the
    result is bit-identical to ``fit_pwl(fn, population[i], ...)``.
    """
    pop = np.asarray(population, dtype=np.float64)
    if pop.ndim != 2:
        raise ValueError("population must be a (P, N-1) matrix, got shape %r" % (pop.shape,))
    lo, hi = float(search_range[0]), float(search_range[1])
    if not lo < hi:
        raise ValueError("invalid search range [%r, %r]" % (lo, hi))
    min_gap = (hi - lo) * 1e-6
    bp = _clean_breakpoints(pop, lo, hi, min_gap)
    count = pop.shape[0]
    edges = np.concatenate(
        [np.full((count, 1), lo), bp, np.full((count, 1), hi)], axis=1
    )
    slopes, intercepts = _fit_segments(fn, edges, min_gap, method, samples_per_segment)
    return PiecewiseLinearBatch(breakpoints=bp, slopes=slopes, intercepts=intercepts)
