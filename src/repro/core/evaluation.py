"""Operator-level accuracy evaluation (Section 4.1 protocol).

The paper evaluates LUT approximations "with quantization awareness": input
data is sampled from the *dequantized* range ``[Q_n S, Q_p S]`` with step
``S`` — i.e. exactly the values an INT8 activation can take — rather than
from an arbitrary floating-point interval.  The pwl is executed through the
quantization-aware pipeline of Fig. 1b (quantized breakpoints, FXP
slopes/intercepts, shifter-rescaled intercepts) and scored by MSE against
the exact function.

For the scale-dependent operators (GELU, HSWISH, EXP) the sweep covers
``S in {2^0, 2^-1, ..., 2^-6}`` as in Figs. 2(a) and 3.  The wide-range
operators (DIV, RSQRT) are evaluated with multi-range input scaling
(Table 2) via :mod:`repro.scaling`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

from repro.backend import xp as np

from repro.core.lut import QuantizedLUT, QuantizedLUTBatch
from repro.core.pwl import PiecewiseLinear, PiecewiseLinearBatch
from repro.functions.nonlinear import NonLinearFunction
from repro.quant.quantizer import QuantSpec, quant_bounds

# The scaling-factor sweep of Fig. 2(a) / Fig. 3: 2^0 down to 2^-6.
DEFAULT_SCALES: Tuple[float, ...] = tuple(2.0 ** (-e) for e in range(0, 7))


def _evaluation_domain(function: NonLinearFunction) -> Optional[Tuple[float, float]]:
    """Domain restriction applied to the dequantized grid.

    The dequantized grid ``[Q_n S, Q_p S]`` is intersected with the
    operator's approximation range ``[R_n, R_p]``.  Two reasons:

    * the operators only ever see that range in the network (EXP inputs are
      max-shifted to ``<= 0``, GELU/HSWISH inputs are clamped by the LSQ
      activation quantizer whose scale tracks the observed range), and
    * it keeps the metric focused on what the methods actually differ in —
      breakpoint placement and its quantization robustness — rather than on
      far-tail extrapolation behaviour outside the searched interval, which
      would swamp the MSE at the largest scaling factors.

    The resulting MSE magnitudes land in the same decade as the paper's
    Table 3, which is consistent with this interpretation of the protocol.
    """
    return function.search_range


@dataclasses.dataclass
class QuantizedPWLEvaluator:
    """Scores a pwl through the Fig. 1b integer pipeline for one operator."""

    function: NonLinearFunction
    spec: QuantSpec = QuantSpec(bits=8, signed=True)
    frac_bits: int = 5
    eval_domain: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if self.eval_domain is None:
            self.eval_domain = _evaluation_domain(self.function)

    def grid_for_scale(self, scale: float) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(codes q, dequantized x)`` for one scaling factor."""
        qn, qp = quant_bounds(self.spec.bits, self.spec.signed)
        codes = np.arange(qn, qp + 1, dtype=np.float64)
        x = codes * scale
        if self.eval_domain is not None:
            lo, hi = self.eval_domain
            mask = (x >= lo) & (x <= hi)
            codes, x = codes[mask], x[mask]
        return codes, x

    def mse_at_scale(self, pwl: PiecewiseLinear, scale: float) -> float:
        """MSE of the quantized pipeline at a single scaling factor."""
        lut = QuantizedLUT(pwl=pwl, scale=scale, spec=self.spec, frac_bits=self.frac_bits)
        codes, x = self.grid_for_scale(scale)
        if x.size == 0:
            raise ValueError("evaluation grid is empty for scale %r" % (scale,))
        approx = lut.lookup_dequantized(codes)
        reference = np.asarray(self.function(x), dtype=np.float64)
        return float(np.mean((approx - reference) ** 2))

    def sweep(
        self, pwl: PiecewiseLinear, scales: Sequence[float] = DEFAULT_SCALES
    ) -> Dict[float, float]:
        """MSE for each scaling factor in ``scales``."""
        return {float(s): self.mse_at_scale(pwl, s) for s in scales}

    def average_mse(
        self, pwl: PiecewiseLinear, scales: Sequence[float] = DEFAULT_SCALES
    ) -> float:
        """Average MSE over the scale sweep (the Table 3 statistic)."""
        values = self.sweep(pwl, scales)
        return float(np.mean(list(values.values())))

    def mse_matrix(
        self, pwls: PiecewiseLinearBatch, scales: Sequence[float] = DEFAULT_SCALES
    ) -> np.ndarray:
        """Quantized-pipeline MSE for a pwl population: an ``(S, P)`` matrix.

        Entry ``[s, p]`` equals ``mse_at_scale(pwls.row(p), scales[s])``; the
        lookup for each scale runs as one ``(P, C)`` broadcast through
        :class:`QuantizedLUTBatch`, so comparing many candidate pwls (e.g. a
        final GA population, or one operator across entry counts) costs a
        handful of array ops instead of ``S x P`` scalar sweeps.
        """
        scale_list = [float(s) for s in scales]
        out = np.empty((len(scale_list), pwls.population_size), dtype=np.float64)
        for s_idx, scale in enumerate(scale_list):
            codes, x = self.grid_for_scale(scale)
            if x.size == 0:
                raise ValueError("evaluation grid is empty for scale %r" % (scale,))
            lut = QuantizedLUTBatch(
                pwl=pwls, scales=np.array([scale]), spec=self.spec, frac_bits=self.frac_bits
            )
            approx = lut.lookup_dequantized(codes)[0]
            reference = np.asarray(self.function(x), dtype=np.float64)
            out[s_idx] = np.mean((approx - reference[None, :]) ** 2, axis=1)
        return out

    def average_mse_batch(
        self, pwls: PiecewiseLinearBatch, scales: Sequence[float] = DEFAULT_SCALES
    ) -> np.ndarray:
        """Per-individual average MSE over the scale sweep: a ``(P,)`` vector."""
        return self.mse_matrix(pwls, scales).mean(axis=0)


def evaluate_operator_mse(
    function: NonLinearFunction,
    pwl: PiecewiseLinear,
    scale: float,
    spec: QuantSpec = QuantSpec(bits=8, signed=True),
    frac_bits: int = 5,
) -> float:
    """Convenience wrapper: quantized-pipeline MSE at one scaling factor."""
    return QuantizedPWLEvaluator(function, spec=spec, frac_bits=frac_bits).mse_at_scale(
        pwl, scale
    )


def sweep_scaling_factors(
    function: NonLinearFunction,
    pwl: PiecewiseLinear,
    scales: Sequence[float] = DEFAULT_SCALES,
    spec: QuantSpec = QuantSpec(bits=8, signed=True),
    frac_bits: int = 5,
) -> Dict[float, float]:
    """Convenience wrapper: quantized-pipeline MSE across a scale sweep."""
    return QuantizedPWLEvaluator(function, spec=spec, frac_bits=frac_bits).sweep(pwl, scales)
