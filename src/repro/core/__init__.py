"""Core GQA-LUT machinery: piece-wise linear approximation + genetic search.

Public entry points:

* :class:`repro.core.pwl.PiecewiseLinear` — a pwl function (Eq. 1).
* :func:`repro.core.pwl.fit_pwl` — derive slopes/intercepts from breakpoints.
* :class:`repro.core.lut.LUT` — hardware-style parameter storage.
* :class:`repro.core.genetic.GeneticSearch` — Algorithm 1.
* :class:`repro.core.mutation.RoundingMutation` — Algorithm 2.
* :class:`repro.core.search.GQALUT` — the high-level "search an operator"
  API combining all of the above with the Table 1 presets.
* :mod:`repro.core.engine_config` — the unified engine-knob registry
  (kwarg > context > env > default resolution for every engine switch).
"""

from repro.core import engine_config
from repro.core.engine_config import EngineConfig
from repro.core.pwl import (
    PiecewiseLinear,
    PiecewiseLinearBatch,
    fit_pwl,
    fit_pwl_batch,
    uniform_breakpoints,
)
from repro.core.lut import LUT, LUTEntry, QuantizedLUT, QuantizedLUTBatch
from repro.core.fitness import (
    GridMSEFitness,
    QuantizedMSEFitness,
    FitnessFunction,
)
from repro.core.mutation import (
    MutationFunction,
    NormalMutation,
    RoundingMutation,
)
from repro.core.genetic import GeneticSearch, GASettings, GAResult
from repro.core.config import (
    OperatorSearchConfig,
    default_config,
    DEFAULT_CONFIGS,
    GA_DEFAULTS,
)
from repro.core.search import GQALUT, SearchOutcome
from repro.core.evaluation import (
    QuantizedPWLEvaluator,
    evaluate_operator_mse,
    sweep_scaling_factors,
    DEFAULT_SCALES,
)

__all__ = [
    "engine_config",
    "EngineConfig",
    "PiecewiseLinear",
    "PiecewiseLinearBatch",
    "fit_pwl",
    "fit_pwl_batch",
    "uniform_breakpoints",
    "LUT",
    "LUTEntry",
    "QuantizedLUT",
    "QuantizedLUTBatch",
    "GridMSEFitness",
    "QuantizedMSEFitness",
    "FitnessFunction",
    "MutationFunction",
    "NormalMutation",
    "RoundingMutation",
    "GeneticSearch",
    "GASettings",
    "GAResult",
    "OperatorSearchConfig",
    "default_config",
    "DEFAULT_CONFIGS",
    "GA_DEFAULTS",
    "GQALUT",
    "SearchOutcome",
    "QuantizedPWLEvaluator",
    "evaluate_operator_mse",
    "sweep_scaling_factors",
    "DEFAULT_SCALES",
]
