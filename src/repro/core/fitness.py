"""Fitness functions for the genetic breakpoint search.

Algorithm 1 scores an individual (a breakpoint set) by the mean squared
error of its pwl against the target function on a dense grid over the search
range.  :class:`GridMSEFitness` implements exactly that.  As an extension we
also provide :class:`QuantizedMSEFitness`, which scores the fully quantized
pipeline averaged over a set of scaling factors — useful for ablations on
how much the RM strategy buys over direct quantization-in-the-loop search.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence, Tuple

from repro.backend import xp as np

from repro.core.lut import QuantizedLUT, QuantizedLUTBatch
from repro.core.pwl import PiecewiseLinearBatch, fit_pwl, fit_pwl_batch
from repro.functions.nonlinear import NonLinearFunction
from repro.quant.quantizer import QuantSpec, quant_bounds


class FitnessFunction:
    """Interface: maps a breakpoint vector to a scalar error (lower = fitter)."""

    def __call__(self, breakpoints: np.ndarray) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def batch_call(self, population: np.ndarray) -> np.ndarray:
        """Score a ``(P, N - 1)`` population matrix; returns ``(P,)`` scores.

        The default falls back to one scalar ``__call__`` per row, so custom
        fitness functions work with the batched genetic engine unchanged;
        subclasses override this with a true vectorized implementation.
        Entry ``i`` must equal ``self(population[i])`` bit-for-bit — the
        batched and per-individual engines of
        :class:`repro.core.genetic.GeneticSearch` rely on it.
        """
        pop = np.asarray(population, dtype=np.float64)
        return np.array([float(self(row)) for row in pop], dtype=np.float64)


@dataclasses.dataclass
class GridMSEFitness(FitnessFunction):
    """MSE of the fitted pwl on a dense grid (Algorithm 1, lines 4-8).

    Parameters
    ----------
    function:
        The target operator (provides the callable and the search range).
    grid_step:
        Sampling step over ``[R_n, R_p]``; the paper uses 0.01.
    fit_method:
        Passed through to :func:`fit_pwl`.
    frac_bits:
        When set, slopes/intercepts are FXP-rounded *before* scoring so the
        fitness reflects the storage precision.  ``None`` scores the FP pwl
        (the paper's formulation; FXP conversion happens after the search).
    """

    function: NonLinearFunction
    grid_step: float = 0.01
    fit_method: str = "interpolate"
    frac_bits: Optional[int] = None

    def __post_init__(self) -> None:
        self._grid = self.function.sample_grid(self.grid_step)
        self._reference = np.asarray(self.function(self._grid), dtype=np.float64)

    @property
    def grid(self) -> np.ndarray:
        return self._grid

    def build(self, breakpoints: np.ndarray):
        """Fit the pwl for a breakpoint individual (shared with callers)."""
        pwl = fit_pwl(
            self.function.fn,
            breakpoints,
            self.function.search_range,
            method=self.fit_method,
        )
        if self.frac_bits is not None:
            pwl = pwl.to_fixed_point(self.frac_bits)
        return pwl

    def __call__(self, breakpoints: np.ndarray) -> float:
        pwl = self.build(breakpoints)
        approx = pwl(self._grid)
        return float(np.mean((approx - self._reference) ** 2))

    def build_batch(self, population: np.ndarray) -> PiecewiseLinearBatch:
        """Fit the whole population in one shot (row ``i`` == ``build(row_i)``)."""
        pwls = fit_pwl_batch(
            self.function.fn,
            population,
            self.function.search_range,
            method=self.fit_method,
        )
        if self.frac_bits is not None:
            pwls = pwls.to_fixed_point(self.frac_bits)
        return pwls

    def batch_call(self, population: np.ndarray) -> np.ndarray:
        """Grid MSE of every individual as one ``(P, G)`` array op."""
        pwls = self.build_batch(np.asarray(population, dtype=np.float64))
        approx = pwls(self._grid)
        return np.mean((approx - self._reference[None, :]) ** 2, axis=1)


@dataclasses.dataclass
class QuantizedMSEFitness(FitnessFunction):
    """MSE of the fully quantized Fig. 1b pipeline, averaged over scales.

    For each scaling factor the input grid is the dequantized range
    ``[Q_n S, Q_p S]`` intersected with the evaluation domain, sampled with
    step ``S`` — the paper's operator-level evaluation protocol — and the
    pwl is evaluated through :class:`QuantizedLUT` (quantized breakpoints,
    FXP slopes/intercepts, shifter-rescaled intercepts).
    """

    function: NonLinearFunction
    scales: Sequence[float] = (1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625)
    spec: QuantSpec = QuantSpec(bits=8, signed=True)
    frac_bits: int = 5
    fit_method: str = "interpolate"
    eval_domain: Optional[Tuple[float, float]] = None

    def build(self, breakpoints: np.ndarray):
        return fit_pwl(
            self.function.fn,
            breakpoints,
            self.function.search_range,
            method=self.fit_method,
        ).to_fixed_point(self.frac_bits)

    def __call__(self, breakpoints: np.ndarray) -> float:
        pwl = self.build(breakpoints)
        qn, qp = quant_bounds(self.spec.bits, self.spec.signed)
        total = 0.0
        for scale in self.scales:
            lut = QuantizedLUT(pwl=pwl, scale=scale, spec=self.spec, frac_bits=self.frac_bits)
            codes = np.arange(qn, qp + 1, dtype=np.float64)
            x = codes * scale
            if self.eval_domain is not None:
                mask = (x >= self.eval_domain[0]) & (x <= self.eval_domain[1])
                codes, x = codes[mask], x[mask]
            if x.size == 0:
                continue
            approx = lut.lookup_dequantized(codes)
            reference = np.asarray(self.function(x), dtype=np.float64)
            total += float(np.mean((approx - reference) ** 2))
        return total / max(len(self.scales), 1)

    def build_batch(self, population: np.ndarray) -> PiecewiseLinearBatch:
        """Fit + FXP-round the whole population in one shot."""
        return fit_pwl_batch(
            self.function.fn,
            population,
            self.function.search_range,
            method=self.fit_method,
        ).to_fixed_point(self.frac_bits)

    def batch_call(self, population: np.ndarray) -> np.ndarray:
        """Quantized-pipeline MSE for all individuals and scales at once.

        The lookup for every (scale, individual, code) triple is a single
        broadcast through :class:`QuantizedLUTBatch`; only the per-scale
        domain masking and reference evaluation remain a (length ``S``)
        Python loop, accumulated in the same order as the scalar path so the
        scores agree bit-for-bit.
        """
        pwls = self.build_batch(np.asarray(population, dtype=np.float64))
        qn, qp = quant_bounds(self.spec.bits, self.spec.signed)
        codes = np.arange(qn, qp + 1, dtype=np.float64)
        lut = QuantizedLUTBatch(
            pwl=pwls,
            scales=np.asarray(self.scales, dtype=np.float64),
            spec=self.spec,
            frac_bits=self.frac_bits,
        )
        approx_all = lut.lookup_dequantized(codes)
        total = np.zeros(pwls.population_size, dtype=np.float64)
        for s_idx, scale in enumerate(lut.scales):
            x = codes * scale
            approx = approx_all[s_idx]
            if self.eval_domain is not None:
                mask = (x >= self.eval_domain[0]) & (x <= self.eval_domain[1])
                # ascontiguousarray keeps the row reduction on the same
                # contiguous summation path as the scalar code (bit parity).
                x, approx = x[mask], np.ascontiguousarray(approx[:, mask])
            if x.size == 0:
                continue
            reference = np.asarray(self.function(x), dtype=np.float64)
            total += np.mean((approx - reference[None, :]) ** 2, axis=1)
        return total / max(len(self.scales), 1)
