"""Mutation operators for the genetic breakpoint search.

Two operators are provided:

* :class:`NormalMutation` — the conventional mutation used by GQA-LUT
  *without* RM: each breakpoint is perturbed by normally distributed noise
  with some per-element probability.
* :class:`RoundingMutation` — Algorithm 2: the Rounding Mutation (RM)
  strategy.  Each breakpoint is, with probability ``theta_r`` per grid
  exponent ``i`` in ``[m_a, m_b]``, rounded onto the fixed-point grid
  ``2^-i``.  This "images" the FXP/quantization rounding the breakpoint will
  suffer at deployment as a stochastic mutation during evolution, so the
  survivors are breakpoints that remain good after quantization.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np


class MutationFunction:
    """Interface: mutate a breakpoint vector in place-free fashion."""

    def __call__(
        self, breakpoints: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class NormalMutation(MutationFunction):
    """Additive Gaussian-noise mutation (the non-RM default).

    Parameters
    ----------
    sigma_fraction:
        Noise standard deviation as a fraction of the search-range width.
    per_element_prob:
        Probability that each individual breakpoint is perturbed.
    search_range:
        ``[R_n, R_p]``; mutated breakpoints are clipped back into it.
    """

    search_range: Tuple[float, float]
    sigma_fraction: float = 0.05
    per_element_prob: float = 0.5

    def __call__(self, breakpoints: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        lo, hi = self.search_range
        width = hi - lo
        bp = np.asarray(breakpoints, dtype=np.float64).copy()
        mask = rng.random(bp.shape) < self.per_element_prob
        noise = rng.normal(0.0, self.sigma_fraction * width, size=bp.shape)
        bp = np.where(mask, bp + noise, bp)
        return np.sort(np.clip(bp, lo, hi))


@dataclasses.dataclass(frozen=True)
class RoundingMutation(MutationFunction):
    """Rounding Mutation (Algorithm 2).

    For each breakpoint ``p`` draw ``rand_p ~ U[0, 1]`` and scan the grid
    exponents ``i = m_a .. m_b``; the first ``i`` whose probability slot
    ``[i * theta_r, (i + 1) * theta_r)`` contains ``rand_p`` triggers the
    rounding ``p' = round(p * 2^i) / 2^i`` (a single mutation per
    breakpoint).  With ``theta_r = 0`` the operator is the identity, which
    matches the DIV/RSQRT rows of Table 1.

    The mutated set is re-sorted, as required by the comparer semantics.
    """

    mutate_range: Tuple[int, int] = (0, 6)
    theta_r: float = 0.05
    search_range: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        ma, mb = self.mutate_range
        if ma < 0 or mb < ma:
            raise ValueError("mutate_range must satisfy 0 <= m_a <= m_b, got %r" % (self.mutate_range,))
        if self.theta_r < 0:
            raise ValueError("theta_r must be non-negative, got %r" % (self.theta_r,))

    def mutate_scalar(self, p: float, rand_p: float) -> float:
        """Apply Algorithm 2's inner loop to a single breakpoint."""
        ma, mb = self.mutate_range
        if self.theta_r <= 0:
            return p
        for i in range(ma, mb + 1):
            if i * self.theta_r <= rand_p < (i + 1) * self.theta_r:
                return float(np.round(p * (2.0 ** i)) / (2.0 ** i))
        return p

    def __call__(self, breakpoints: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        bp = np.asarray(breakpoints, dtype=np.float64).copy()
        mutated = np.empty_like(bp)
        for idx, p in enumerate(bp):
            rand_p = float(rng.random())
            mutated[idx] = self.mutate_scalar(float(p), rand_p)
        if self.search_range is not None:
            mutated = np.clip(mutated, self.search_range[0], self.search_range[1])
        return np.sort(mutated)
