"""Mutation operators for the genetic breakpoint search.

Two operators are provided:

* :class:`NormalMutation` — the conventional mutation used by GQA-LUT
  *without* RM: each breakpoint is perturbed by normally distributed noise
  with some per-element probability.
* :class:`RoundingMutation` — Algorithm 2: the Rounding Mutation (RM)
  strategy.  Each breakpoint is, with probability ``theta_r`` per grid
  exponent ``i`` in ``[m_a, m_b]``, rounded onto the fixed-point grid
  ``2^-i``.  This "images" the FXP/quantization rounding the breakpoint will
  suffer at deployment as a stochastic mutation during evolution, so the
  survivors are breakpoints that remain good after quantization.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.backend import xp as np


class MutationFunction:
    """Interface: mutate a breakpoint vector in place-free fashion."""

    def __call__(
        self, breakpoints: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def mutate_batch(self, rows: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Mutate a ``(K, N_b)`` matrix of individuals; returns the same shape.

        The default applies ``__call__`` row by row, so custom operators work
        with the batched genetic engine unchanged; the built-in operators
        override it with a single-draw vectorized implementation (one RNG
        call per noise source for the whole matrix).
        """
        matrix = np.asarray(rows, dtype=np.float64)
        return np.stack([self(row, rng) for row in matrix])


@dataclasses.dataclass(frozen=True)
class NormalMutation(MutationFunction):
    """Additive Gaussian-noise mutation (the non-RM default).

    Parameters
    ----------
    sigma_fraction:
        Noise standard deviation as a fraction of the search-range width.
    per_element_prob:
        Probability that each individual breakpoint is perturbed.
    search_range:
        ``[R_n, R_p]``; mutated breakpoints are clipped back into it.
    """

    search_range: Tuple[float, float]
    sigma_fraction: float = 0.05
    per_element_prob: float = 0.5

    def __call__(self, breakpoints: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        # One-row batch: rng.random((1, N)) consumes the same doubles as
        # rng.random(N), so this is stream-identical to a scalar version.
        return self.mutate_batch(np.asarray(breakpoints, dtype=np.float64)[None, :], rng)[0]

    def mutate_batch(self, rows: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Perturb all ``K`` individuals with two draws (mask + noise)."""
        lo, hi = self.search_range
        width = hi - lo
        bp = np.asarray(rows, dtype=np.float64).copy()
        mask = rng.random(bp.shape) < self.per_element_prob
        noise = rng.normal(0.0, self.sigma_fraction * width, size=bp.shape)
        bp = np.where(mask, bp + noise, bp)
        return np.sort(np.clip(bp, lo, hi), axis=-1)


@dataclasses.dataclass(frozen=True)
class RoundingMutation(MutationFunction):
    """Rounding Mutation (Algorithm 2).

    For each breakpoint ``p`` draw ``rand_p ~ U[0, 1]`` and scan the grid
    exponents ``i = m_a .. m_b``; the first ``i`` whose probability slot
    ``[i * theta_r, (i + 1) * theta_r)`` contains ``rand_p`` triggers the
    rounding ``p' = round(p * 2^i) / 2^i`` (a single mutation per
    breakpoint).  With ``theta_r = 0`` the operator is the identity, which
    matches the DIV/RSQRT rows of Table 1.

    The mutated set is re-sorted, as required by the comparer semantics.
    """

    mutate_range: Tuple[int, int] = (0, 6)
    theta_r: float = 0.05
    search_range: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        ma, mb = self.mutate_range
        if ma < 0 or mb < ma:
            raise ValueError("mutate_range must satisfy 0 <= m_a <= m_b, got %r" % (self.mutate_range,))
        if self.theta_r < 0:
            raise ValueError("theta_r must be non-negative, got %r" % (self.theta_r,))

    def mutate_scalar(self, p: float, rand_p: float) -> float:
        """Apply Algorithm 2's inner loop to a single breakpoint."""
        ma, mb = self.mutate_range
        if self.theta_r <= 0:
            return p
        for i in range(ma, mb + 1):
            if i * self.theta_r <= rand_p < (i + 1) * self.theta_r:
                return float(np.round(p * (2.0 ** i)) / (2.0 ** i))
        return p

    def _apply_rands(self, bp: np.ndarray, rands: np.ndarray) -> np.ndarray:
        """Vectorized Algorithm 2 inner loop: one slot test per exponent.

        The probability slots are disjoint (adjacent conditions share the
        same ``(i + 1) * theta_r`` float), so at most one exponent fires per
        breakpoint — exactly the scalar :meth:`mutate_scalar` semantics.
        """
        if self.theta_r <= 0:
            return bp
        ma, mb = self.mutate_range
        out = bp.copy()
        for i in range(ma, mb + 1):
            hit = (i * self.theta_r <= rands) & (rands < (i + 1) * self.theta_r)
            if np.any(hit):
                factor = 2.0 ** i
                out = np.where(hit, np.round(bp * factor) / factor, out)
        return out

    def __call__(self, breakpoints: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        # One-row batch; stream-identical to a scalar implementation (see
        # NormalMutation.__call__).
        return self.mutate_batch(np.asarray(breakpoints, dtype=np.float64)[None, :], rng)[0]

    def mutate_batch(self, rows: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Round all ``K`` individuals with a single ``(K, N_b)`` draw."""
        bp = np.asarray(rows, dtype=np.float64).copy()
        mutated = self._apply_rands(bp, rng.random(bp.shape))
        if self.search_range is not None:
            mutated = np.clip(mutated, self.search_range[0], self.search_range[1])
        return np.sort(mutated, axis=-1)
