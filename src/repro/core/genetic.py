"""Genetic breakpoint search (Algorithm 1 of the paper).

The search maintains a population of breakpoint sets.  Each generation:

1. every individual is scored by the fitness function (grid MSE),
2. with probability ``theta_c`` an individual exchanges a random contiguous
   segment of its breakpoint vector with another randomly chosen individual
   (crossover),
3. with probability ``theta_m`` the mutation function is applied
   (Gaussian noise, or Rounding Mutation when the RM strategy is enabled),
4. the next generation is formed by 3-way tournament selection.

The search returns the fittest individual of the *final* generation, as in
Algorithm 1 (line 20).  This matters for the Rounding Mutation strategy:
after many generations of RM the surviving population is biased toward
breakpoints that sit on coarse power-of-two grids, and picking from that
final population is what makes the deployed breakpoints robust to
quantization.  Optional elitism (off by default, as in the paper) can be
enabled to stabilise the plain-Gaussian variant.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.fitness import FitnessFunction
from repro.core.mutation import MutationFunction, NormalMutation


@dataclasses.dataclass(frozen=True)
class GASettings:
    """Hyper-parameters of Algorithm 1.

    Defaults follow the caption of Table 1: ``N_b = 7`` breakpoints
    (8-entry pwl), population 50, crossover probability 0.7, mutation
    probability 0.2, 500 generations.
    """

    num_breakpoints: int = 7
    population_size: int = 50
    crossover_prob: float = 0.7
    mutation_prob: float = 0.2
    generations: int = 500
    tournament_size: int = 3
    elitism: bool = False
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_breakpoints < 1:
            raise ValueError("need at least one breakpoint")
        if self.population_size < 2:
            raise ValueError("population must hold at least two individuals")
        if not 0.0 <= self.crossover_prob <= 1.0:
            raise ValueError("crossover_prob must lie in [0, 1]")
        if not 0.0 <= self.mutation_prob <= 1.0:
            raise ValueError("mutation_prob must lie in [0, 1]")
        if self.generations < 1:
            raise ValueError("need at least one generation")
        if self.tournament_size < 1:
            raise ValueError("tournament size must be positive")


@dataclasses.dataclass
class GAResult:
    """Outcome of a genetic search.

    ``best_breakpoints`` / ``best_fitness`` describe the fittest individual
    of the final generation (the paper's selection rule);
    ``best_ever_breakpoints`` / ``best_ever_fitness`` track the fittest
    individual seen at any point of the run, which is useful for diagnosing
    how much the mutation pressure trades raw FP fitness for robustness.
    """

    best_breakpoints: np.ndarray
    best_fitness: float
    best_ever_breakpoints: np.ndarray
    best_ever_fitness: float
    history: List[float]
    generations_run: int
    evaluations: int

    @property
    def converged_early(self) -> bool:
        return self.generations_run < len(self.history)


class GeneticSearch:
    """Runs Algorithm 1 for a given fitness and mutation operator."""

    def __init__(
        self,
        fitness: FitnessFunction,
        search_range: Tuple[float, float],
        settings: GASettings = GASettings(),
        mutation: Optional[MutationFunction] = None,
    ) -> None:
        lo, hi = search_range
        if not lo < hi:
            raise ValueError("invalid search range [%r, %r]" % (lo, hi))
        self.fitness = fitness
        self.search_range = (float(lo), float(hi))
        self.settings = settings
        self.mutation = mutation or NormalMutation(search_range=self.search_range)
        self._rng = np.random.default_rng(settings.seed)

    # -- population handling -------------------------------------------------

    def _initial_population(self) -> List[np.ndarray]:
        lo, hi = self.search_range
        population = []
        for _ in range(self.settings.population_size):
            individual = np.sort(
                self._rng.uniform(lo, hi, size=self.settings.num_breakpoints)
            )
            population.append(individual)
        return population

    def _crossover(self, a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Swap a random contiguous segment between two individuals."""
        n = a.size
        if n < 2:
            return a.copy(), b.copy()
        start = int(self._rng.integers(0, n - 1))
        stop = int(self._rng.integers(start + 1, n + 1))
        child_a, child_b = a.copy(), b.copy()
        child_a[start:stop], child_b[start:stop] = b[start:stop].copy(), a[start:stop].copy()
        return np.sort(child_a), np.sort(child_b)

    def _tournament(self, population: List[np.ndarray], scores: np.ndarray) -> List[np.ndarray]:
        """3-way tournament selection (lower score wins)."""
        size = self.settings.tournament_size
        selected: List[np.ndarray] = []
        for _ in range(len(population)):
            contenders = self._rng.integers(0, len(population), size=size)
            winner = contenders[int(np.argmin(scores[contenders]))]
            selected.append(population[winner].copy())
        return selected

    # -- main loop -----------------------------------------------------------

    def run(
        self,
        callback: Optional[Callable[[int, float, np.ndarray], None]] = None,
        patience: Optional[int] = None,
        tol: float = 0.0,
    ) -> GAResult:
        """Execute the evolutionary loop.

        Parameters
        ----------
        callback:
            Optional ``callback(generation, best_fitness, best_individual)``
            invoked once per generation.
        patience:
            Stop early when the best fitness has not improved by more than
            ``tol`` for ``patience`` consecutive generations.
        """
        settings = self.settings
        population = self._initial_population()
        best_ever_bp: Optional[np.ndarray] = None
        best_ever_fit = float("inf")
        history: List[float] = []
        evaluations = 0
        stale = 0
        generations_run = 0

        for generation in range(settings.generations):
            generations_run = generation + 1
            scores = np.array([self.fitness(ind) for ind in population])
            evaluations += len(population)

            gen_best_idx = int(np.argmin(scores))
            improved = scores[gen_best_idx] < best_ever_fit - tol
            if scores[gen_best_idx] < best_ever_fit:
                best_ever_fit = float(scores[gen_best_idx])
                best_ever_bp = population[gen_best_idx].copy()
            history.append(best_ever_fit)
            if callback is not None:
                callback(generation, best_ever_fit, best_ever_bp)

            stale = 0 if improved else stale + 1
            if patience is not None and stale >= patience:
                break

            # Selection.
            next_population = self._tournament(population, scores)

            # Crossover.
            for i in range(len(next_population)):
                if self._rng.random() < settings.crossover_prob:
                    j = int(self._rng.integers(0, len(next_population)))
                    if j == i:
                        j = (j + 1) % len(next_population)
                    next_population[i], next_population[j] = self._crossover(
                        next_population[i], next_population[j]
                    )

            # Mutation.
            for i in range(len(next_population)):
                if self._rng.random() < settings.mutation_prob:
                    next_population[i] = self.mutation(next_population[i], self._rng)

            # Optional elitism: keep the best-so-far individual alive.
            if settings.elitism and best_ever_bp is not None:
                next_population[0] = best_ever_bp.copy()

            population = next_population

        if best_ever_bp is None:  # pragma: no cover - defensive; generations >= 1
            raise RuntimeError("genetic search produced no individuals")

        # Algorithm 1 line 20: the answer is the fittest individual of the
        # final generation (which, under RM, carries the quantization-robust
        # grid-aligned breakpoints).
        final_scores = np.array([self.fitness(ind) for ind in population])
        evaluations += len(population)
        final_best_idx = int(np.argmin(final_scores))

        return GAResult(
            best_breakpoints=population[final_best_idx].copy(),
            best_fitness=float(final_scores[final_best_idx]),
            best_ever_breakpoints=best_ever_bp,
            best_ever_fitness=best_ever_fit,
            history=history,
            generations_run=generations_run,
            evaluations=evaluations,
        )
