"""Genetic breakpoint search (Algorithm 1 of the paper).

The search maintains a population of breakpoint sets.  Each generation:

1. every individual is scored by the fitness function (grid MSE),
2. with probability ``theta_c`` an individual exchanges a random contiguous
   segment of its breakpoint vector with another randomly chosen individual
   (crossover),
3. with probability ``theta_m`` the mutation function is applied
   (Gaussian noise, or Rounding Mutation when the RM strategy is enabled),
4. the next generation is formed by 3-way tournament selection.

The search returns the fittest individual of the *final* generation, as in
Algorithm 1 (line 20).  This matters for the Rounding Mutation strategy:
after many generations of RM the surviving population is biased toward
breakpoints that sit on coarse power-of-two grids, and picking from that
final population is what makes the deployed breakpoints robust to
quantization.  Optional elitism (off by default, as in the paper) can be
enabled to stabilise the plain-Gaussian variant.

The population lives in a single ``(P, N_b)`` float64 matrix.  Two scoring
engines are available (see DESIGN.md for the full contract):

* ``engine="batch"`` (default) — the population is de-duplicated, filtered
  through a cross-generation score cache, and the remaining rows are scored
  by one :meth:`FitnessFunction.batch_call`;
* ``engine="legacy"`` — one scalar fitness call per individual, kept as the
  reference path for equivalence tests and throughput benchmarks.

Both engines consume the random stream identically and the batched fitness
implementations are bit-identical to their scalar counterparts, so a seeded
run returns the same :class:`GAResult` under either engine.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.backend import xp as np

from repro.core.engine_config import GA_ENGINES as ENGINES
from repro.core.engine_config import resolve_ga_engine
from repro.core.fitness import FitnessFunction
from repro.core.mutation import MutationFunction, NormalMutation

# Upper bound on cached (breakpoints -> score) entries; oldest entries are
# evicted first.  At the Table 1 budget a full run touches well under 2^15
# distinct individuals, so the default never evicts in practice.
DEFAULT_CACHE_SIZE = 1 << 16


@dataclasses.dataclass(frozen=True)
class GASettings:
    """Hyper-parameters of Algorithm 1.

    Defaults follow the caption of Table 1: ``N_b = 7`` breakpoints
    (8-entry pwl), population 50, crossover probability 0.7, mutation
    probability 0.2, 500 generations.
    """

    num_breakpoints: int = 7
    population_size: int = 50
    crossover_prob: float = 0.7
    mutation_prob: float = 0.2
    generations: int = 500
    tournament_size: int = 3
    elitism: bool = False
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_breakpoints < 1:
            raise ValueError("need at least one breakpoint")
        if self.population_size < 2:
            raise ValueError("population must hold at least two individuals")
        if not 0.0 <= self.crossover_prob <= 1.0:
            raise ValueError("crossover_prob must lie in [0, 1]")
        if not 0.0 <= self.mutation_prob <= 1.0:
            raise ValueError("mutation_prob must lie in [0, 1]")
        if self.generations < 1:
            raise ValueError("need at least one generation")
        if self.tournament_size < 1:
            raise ValueError("tournament size must be positive")


@dataclasses.dataclass
class GAResult:
    """Outcome of a genetic search.

    ``best_breakpoints`` / ``best_fitness`` describe the fittest individual
    of the final generation (the paper's selection rule);
    ``best_ever_breakpoints`` / ``best_ever_fitness`` track the fittest
    individual seen at any point of the run, which is useful for diagnosing
    how much the mutation pressure trades raw FP fitness for robustness.

    ``evaluations`` counts logical fitness evaluations (population size per
    scored generation, as Algorithm 1 accounts them); ``fitness_calls`` is
    how many individuals were actually pushed through the fitness function
    after de-duplication and score caching, and ``cache_hits`` is the number
    of logical evaluations answered without any fitness work.  Under the
    legacy engine ``fitness_calls == evaluations`` and ``cache_hits == 0``.
    """

    best_breakpoints: np.ndarray
    best_fitness: float
    best_ever_breakpoints: np.ndarray
    best_ever_fitness: float
    history: List[float]
    generations_run: int
    evaluations: int
    fitness_calls: int = 0
    cache_hits: int = 0

    @property
    def converged_early(self) -> bool:
        return self.generations_run < len(self.history)


class GeneticSearch:
    """Runs Algorithm 1 for a given fitness and mutation operator.

    Parameters
    ----------
    fitness, search_range, settings, mutation:
        As in Algorithm 1 (see the module docstring).
    engine:
        ``"batch"`` scores each generation through
        :meth:`FitnessFunction.batch_call` after de-duplicating rows and
        consulting a cross-generation score cache; ``"legacy"`` scores one
        individual at a time.  Seeded results are identical either way.
        ``None`` (the default) resolves through
        :mod:`repro.core.engine_config` (context > env > ``"batch"``).
    cache_size:
        Maximum number of cached (breakpoints -> score) entries for the
        batch engine; oldest entries are evicted first.
    """

    def __init__(
        self,
        fitness: FitnessFunction,
        search_range: Tuple[float, float],
        settings: GASettings = GASettings(),
        mutation: Optional[MutationFunction] = None,
        engine: Optional[str] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        lo, hi = search_range
        if not lo < hi:
            raise ValueError("invalid search range [%r, %r]" % (lo, hi))
        engine = resolve_ga_engine(engine)
        self.fitness = fitness
        self.search_range = (float(lo), float(hi))
        self.settings = settings
        self.mutation = mutation or NormalMutation(search_range=self.search_range)
        self.engine = engine
        self._rng = np.random.default_rng(settings.seed)
        self._cache: Dict[bytes, float] = {}
        self._cache_size = int(cache_size)
        self._fitness_calls = 0
        self._cache_hits = 0

    # -- population handling -------------------------------------------------

    def _initial_population(self) -> np.ndarray:
        """Random sorted individuals as a single ``(P, N_b)`` matrix."""
        lo, hi = self.search_range
        population = self._rng.uniform(
            lo, hi, size=(self.settings.population_size, self.settings.num_breakpoints)
        )
        return np.sort(population, axis=1)

    @staticmethod
    def _apply_swap(a: np.ndarray, b: np.ndarray, start: int, stop: int) -> None:
        """Exchange ``[start, stop)`` between two rows in place, then re-sort."""
        segment = a[start:stop].copy()
        a[start:stop] = b[start:stop]
        b[start:stop] = segment
        a.sort()
        b.sort()

    def _crossover(self, a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Swap a random contiguous segment between two individuals.

        The swap window is ``[start, stop)`` with ``start`` drawn uniformly
        over *all* indices — including the last one, so the top breakpoint
        participates in exchange as often as any other.
        """
        n = a.size
        if n < 2:
            return a.copy(), b.copy()
        start = int(self._rng.integers(0, n))
        stop = int(self._rng.integers(start + 1, n + 1))
        child_a, child_b = a.copy(), b.copy()
        self._apply_swap(child_a, child_b, start, stop)
        return child_a, child_b

    def _tournament(self, population: np.ndarray, scores: np.ndarray) -> np.ndarray:
        """3-way tournament selection (lower score wins), fully vectorized.

        One ``(P, T)`` contender draw replaces the per-individual loop; the
        draw consumes the random stream exactly like ``P`` separate size-``T``
        draws, so seeded trajectories are unchanged.
        """
        count = population.shape[0]
        contenders = self._rng.integers(
            0, count, size=(count, self.settings.tournament_size)
        )
        winners = contenders[np.arange(count), np.argmin(scores[contenders], axis=1)]
        return population[winners]

    def _crossover_population(self, population: np.ndarray) -> None:
        """Apply probabilistic segment-swap crossover to the matrix in place.

        All randomness is drawn up front in four vectorized calls (gate
        mask, partners, window starts, window stops — the documented draw
        order); only the swaps themselves run sequentially, because an
        individual touched by one exchange may be a partner in the next.
        """
        count, n = population.shape
        gates = self._rng.random(count) < self.settings.crossover_prob
        (triggered,) = np.nonzero(gates)
        if triggered.size == 0:
            return
        partners = self._rng.integers(0, count, size=triggered.size)
        if n < 2:
            return
        starts = self._rng.integers(0, n, size=triggered.size)
        stops = self._rng.integers(starts + 1, n + 1)
        for k in range(triggered.size):
            i = int(triggered[k])
            j = int(partners[k])
            if j == i:
                j = (j + 1) % count
            self._apply_swap(population[i], population[j], int(starts[k]), int(stops[k]))

    def _mutate_population(self, population: np.ndarray) -> None:
        """Mutate gated rows through one batched operator application."""
        gates = self._rng.random(population.shape[0]) < self.settings.mutation_prob
        (triggered,) = np.nonzero(gates)
        if triggered.size == 0:
            return
        population[triggered] = self.mutation.mutate_batch(
            population[triggered], self._rng
        )

    # -- scoring -------------------------------------------------------------

    def _score_population(self, population: np.ndarray) -> np.ndarray:
        if self.engine == "legacy":
            self._fitness_calls += population.shape[0]
            return np.array(
                [float(self.fitness(row)) for row in population], dtype=np.float64
            )
        return self._score_batch(population)

    def _score_batch(self, population: np.ndarray) -> np.ndarray:
        """Dedup + cache-filter the population, then one batched fitness call.

        Tournament selection copies winners, crossover/mutation fire
        probabilistically and RM rounds breakpoints onto coarse grids, so a
        generation routinely repeats rows — within itself and across
        generations.  Each distinct row is scored once; everything else is
        answered from the cache.
        """
        scores = np.empty(population.shape[0], dtype=np.float64)
        pending: Dict[bytes, List[int]] = {}
        pending_order: List[bytes] = []
        for i in range(population.shape[0]):
            key = population[i].tobytes()
            cached = self._cache.get(key)
            if cached is not None:
                scores[i] = cached
                self._cache_hits += 1
            elif key in pending:
                pending[key].append(i)
                self._cache_hits += 1
            else:
                pending[key] = [i]
                pending_order.append(key)
        if pending_order:
            rows = np.stack([population[pending[key][0]] for key in pending_order])
            values = np.asarray(self.fitness.batch_call(rows), dtype=np.float64)
            if values.shape != (len(pending_order),):
                raise ValueError(
                    "batch_call returned shape %r for %d individuals"
                    % (values.shape, len(pending_order))
                )
            self._fitness_calls += len(pending_order)
            for key, value in zip(pending_order, values):
                value = float(value)
                for position in pending[key]:
                    scores[position] = value
                self._cache[key] = value
            while len(self._cache) > self._cache_size:
                self._cache.pop(next(iter(self._cache)))
        return scores

    # -- main loop -----------------------------------------------------------

    def run(
        self,
        callback: Optional[Callable[[int, float, np.ndarray], None]] = None,
        patience: Optional[int] = None,
        tol: float = 0.0,
    ) -> GAResult:
        """Execute the evolutionary loop.

        Parameters
        ----------
        callback:
            Optional ``callback(generation, best_fitness, best_individual)``
            invoked once per generation.
        patience:
            Stop early when the best fitness has not improved by more than
            ``tol`` for ``patience`` consecutive generations.
        """
        settings = self.settings
        # Per-run work counters; the score cache itself is kept warm across
        # runs (cached scores are exact, so trajectories are unaffected).
        self._fitness_calls = 0
        self._cache_hits = 0
        population = self._initial_population()
        best_ever_bp: Optional[np.ndarray] = None
        best_ever_fit = float("inf")
        history: List[float] = []
        evaluations = 0
        stale = 0
        generations_run = 0

        for generation in range(settings.generations):
            generations_run = generation + 1
            scores = self._score_population(population)
            evaluations += population.shape[0]

            gen_best_idx = int(np.argmin(scores))
            improved = scores[gen_best_idx] < best_ever_fit - tol
            if scores[gen_best_idx] < best_ever_fit:
                best_ever_fit = float(scores[gen_best_idx])
                best_ever_bp = population[gen_best_idx].copy()
            history.append(best_ever_fit)
            if callback is not None:
                callback(generation, best_ever_fit, best_ever_bp)

            stale = 0 if improved else stale + 1
            if patience is not None and stale >= patience:
                break

            # Selection, then in-place crossover and mutation on the matrix.
            next_population = self._tournament(population, scores)
            self._crossover_population(next_population)
            self._mutate_population(next_population)

            # Optional elitism: keep the best-so-far individual alive.
            if settings.elitism and best_ever_bp is not None:
                next_population[0] = best_ever_bp

            population = next_population

        if best_ever_bp is None:  # pragma: no cover - defensive; generations >= 1
            raise RuntimeError("genetic search produced no individuals")

        # Algorithm 1 line 20: the answer is the fittest individual of the
        # final generation (which, under RM, carries the quantization-robust
        # grid-aligned breakpoints).
        final_scores = self._score_population(population)
        evaluations += population.shape[0]
        final_best_idx = int(np.argmin(final_scores))

        return GAResult(
            best_breakpoints=population[final_best_idx].copy(),
            best_fitness=float(final_scores[final_best_idx]),
            best_ever_breakpoints=best_ever_bp,
            best_ever_fitness=best_ever_fit,
            history=history,
            generations_run=generations_run,
            evaluations=evaluations,
            fitness_calls=self._fitness_calls,
            cache_hits=self._cache_hits,
        )
