"""High-level GQA-LUT search API.

:class:`GQALUT` wires together the Table 1 configuration, the fitness
function, the mutation operator (Gaussian or Rounding Mutation) and the
genetic loop, and returns a :class:`SearchOutcome` holding the searched pwl
in both FP and FXP form plus the search diagnostics.

Typical usage::

    from repro import GQALUT

    outcome = GQALUT.for_operator("gelu", num_entries=8, use_rm=True).search(seed=0)
    lut = outcome.quantized_lut(scale=0.25)
    y = lut(x)                      # quantization-aware approximation
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

from repro.backend import xp as np

from repro.core.config import GA_DEFAULTS, OperatorSearchConfig, default_config
from repro.core.evaluation import DEFAULT_SCALES, QuantizedPWLEvaluator
from repro.core.fitness import GridMSEFitness
from repro.core.genetic import GAResult, GASettings, GeneticSearch
from repro.core.lut import QuantizedLUT
from repro.core.mutation import MutationFunction, NormalMutation, RoundingMutation
from repro.core.pwl import PiecewiseLinear, fit_pwl
from repro.functions.nonlinear import NonLinearFunction
from repro.quant.quantizer import QuantSpec


@dataclasses.dataclass
class SearchOutcome:
    """Result of a GQA-LUT search for one operator."""

    function: NonLinearFunction
    config: OperatorSearchConfig
    num_entries: int
    use_rm: bool
    pwl_fp: PiecewiseLinear
    pwl_fxp: PiecewiseLinear
    ga_result: GAResult
    spec: QuantSpec

    @property
    def breakpoints(self) -> np.ndarray:
        return self.pwl_fp.breakpoints

    @property
    def frac_bits(self) -> int:
        return self.config.frac_bits

    def quantized_lut(self, scale: float) -> QuantizedLUT:
        """Deploy the searched parameters at a given power-of-two scale."""
        return QuantizedLUT(
            pwl=self.pwl_fxp, scale=scale, spec=self.spec, frac_bits=self.frac_bits
        )

    def evaluate(self, scales: Sequence[float] = DEFAULT_SCALES) -> dict:
        """Quantized-pipeline MSE per scaling factor (Section 4.1 protocol)."""
        evaluator = QuantizedPWLEvaluator(
            self.function, spec=self.spec, frac_bits=self.frac_bits
        )
        return evaluator.sweep(self.pwl_fxp, scales)

    def average_mse(self, scales: Sequence[float] = DEFAULT_SCALES) -> float:
        """Average quantized-pipeline MSE over the scale sweep."""
        evaluator = QuantizedPWLEvaluator(
            self.function, spec=self.spec, frac_bits=self.frac_bits
        )
        return evaluator.average_mse(self.pwl_fxp, scales)

    def float_mse(self, grid_step: float = 0.01) -> float:
        """MSE of the FP pwl on the dense search-range grid."""
        grid = self.function.sample_grid(grid_step)
        ref = np.asarray(self.function(grid), dtype=np.float64)
        approx = self.pwl_fp(grid)
        return float(np.mean((approx - ref) ** 2))


class GQALUT:
    """Genetic Quantization-Aware LUT-Approximation searcher.

    Parameters
    ----------
    function:
        Target operator.
    config:
        Per-operator configuration (Table 1); defaults to
        :func:`repro.core.config.default_config`.
    num_entries:
        LUT entry count ``N``; the search uses ``N - 1`` breakpoints.
    use_rm:
        Enable the Rounding Mutation strategy (Algorithm 2).  When false the
        conventional Gaussian mutation is used — the paper's
        "GQA-LUT w/o RM" variant.
    spec:
        Integer format of the deployment input (INT8 by default).
    fit_method:
        Slope/intercept derivation method (see :func:`fit_pwl`).
    fxp_aware_fitness:
        When true (default) the GA fitness scores candidates *after* the
        ``lambda``-bit FXP rounding of slopes and intercepts, so breakpoints
        are selected knowing the storage precision they will be deployed at.
        Algorithm 1 as printed scores the FP pwl and converts afterwards;
        set this to ``False`` for that literal behaviour (ablated in the
        benchmarks).
    """

    def __init__(
        self,
        function: NonLinearFunction,
        config: Optional[OperatorSearchConfig] = None,
        num_entries: int = 8,
        use_rm: bool = True,
        spec: QuantSpec = QuantSpec(bits=8, signed=True),
        fit_method: str = "interpolate",
        grid_step: float = 0.01,
        fxp_aware_fitness: bool = True,
    ) -> None:
        if num_entries < 2:
            raise ValueError("num_entries must be at least 2, got %d" % num_entries)
        self.config = config or default_config(function.name)
        self.function = function.with_range(*self.config.search_range)
        self.num_entries = num_entries
        self.use_rm = use_rm
        self.spec = spec
        self.fit_method = fit_method
        self.grid_step = grid_step
        self.fxp_aware_fitness = fxp_aware_fitness

    @classmethod
    def for_operator(
        cls,
        name: str,
        num_entries: int = 8,
        use_rm: bool = True,
        spec: QuantSpec = QuantSpec(bits=8, signed=True),
        **kwargs,
    ) -> "GQALUT":
        """Build a searcher for a registered operator name."""
        config = default_config(name)
        return cls(
            config.function(),
            config=config,
            num_entries=num_entries,
            use_rm=use_rm,
            spec=spec,
            **kwargs,
        )

    def _mutation(self) -> MutationFunction:
        if self.use_rm and self.config.theta_r > 0:
            rm_range = self.config.rm_range(self.num_entries) or (0, 6)
            return RoundingMutation(
                mutate_range=rm_range,
                theta_r=self.config.theta_r,
                search_range=self.function.search_range,
            )
        return NormalMutation(search_range=self.function.search_range)

    def search(
        self,
        generations: Optional[int] = None,
        population_size: Optional[int] = None,
        seed: Optional[int] = None,
        patience: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> SearchOutcome:
        """Run Algorithm 1 and return the searched approximation.

        ``generations`` and ``population_size`` default to the Table 1
        values (500 / 50); smaller values are convenient for tests and quick
        experiments.  ``engine`` selects the population scoring path of
        :class:`GeneticSearch` (``"batch"`` or ``"legacy"``); seeded results
        are identical for both, and ``None`` defers to
        :mod:`repro.core.engine_config`.
        """
        settings = self.config.ga_settings(
            num_entries=self.num_entries,
            generations=generations,
            population_size=population_size,
            seed=seed,
        )
        fitness = GridMSEFitness(
            self.function,
            grid_step=self.grid_step,
            fit_method=self.fit_method,
            frac_bits=self.config.frac_bits if self.fxp_aware_fitness else None,
        )
        ga = GeneticSearch(
            fitness=fitness,
            search_range=self.function.search_range,
            settings=settings,
            mutation=self._mutation(),
            engine=engine,
        )
        result = ga.run(patience=patience)
        pwl_fp = fit_pwl(
            self.function.fn,
            result.best_breakpoints,
            self.function.search_range,
            method=self.fit_method,
        )
        pwl_fxp = pwl_fp.to_fixed_point(self.config.frac_bits)
        return SearchOutcome(
            function=self.function,
            config=self.config,
            num_entries=self.num_entries,
            use_rm=self.use_rm,
            pwl_fp=pwl_fp,
            pwl_fxp=pwl_fxp,
            ga_result=result,
            spec=self.spec,
        )
