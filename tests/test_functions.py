"""Tests for the non-linear operator library."""

import math

import numpy as np
import pytest

from repro.functions import (
    DEFAULT_REGISTRY,
    FunctionRegistry,
    NonLinearFunction,
    get_function,
    list_functions,
)
from repro.functions import nonlinear as nl


class TestOperatorValues:
    def test_gelu_known_values(self):
        assert nl.gelu(0.0) == pytest.approx(0.0, abs=1e-9)
        assert nl.gelu(10.0) == pytest.approx(10.0, abs=1e-4)
        assert nl.gelu(-10.0) == pytest.approx(0.0, abs=1e-4)
        # GELU(1) = 0.5 * (1 + erf(1/sqrt(2))) = 0.8413...
        assert nl.gelu(1.0) == pytest.approx(0.841345, abs=1e-4)

    def test_gelu_matches_tanh_variant_loosely(self):
        x = np.linspace(-4, 4, 101)
        assert np.max(np.abs(nl.gelu(x) - nl.gelu_tanh(x))) < 5e-3

    def test_hswish_piecewise_regions(self):
        assert nl.hswish(-4.0) == pytest.approx(0.0)
        assert nl.hswish(4.0) == pytest.approx(4.0)
        assert nl.hswish(0.0) == pytest.approx(0.0)
        assert nl.hswish(-1.5) == pytest.approx(-1.5 * 1.5 / 6.0)

    def test_hsigmoid_bounds(self):
        x = np.linspace(-10, 10, 201)
        y = nl.hsigmoid(x)
        assert np.all(y >= 0.0) and np.all(y <= 1.0)

    def test_exp_matches_numpy(self):
        x = np.linspace(-8, 0, 50)
        np.testing.assert_allclose(nl.exp(x), np.exp(x))

    def test_div_reciprocal(self):
        x = np.array([0.5, 1.0, 2.0, 4.0])
        np.testing.assert_allclose(nl.div(x), 1.0 / x)

    def test_div_zero_maps_to_inf(self):
        assert np.isinf(nl.div(0.0))

    def test_rsqrt_values(self):
        x = np.array([0.25, 1.0, 4.0, 16.0])
        np.testing.assert_allclose(nl.rsqrt(x), 1.0 / np.sqrt(x))

    def test_rsqrt_nonpositive_maps_to_inf(self):
        assert np.isinf(nl.rsqrt(0.0))

    def test_sigmoid_stable_for_large_inputs(self):
        assert nl.sigmoid(1000.0) == pytest.approx(1.0)
        assert nl.sigmoid(-1000.0) == pytest.approx(0.0)

    def test_silu_is_x_times_sigmoid(self):
        x = np.linspace(-5, 5, 41)
        np.testing.assert_allclose(nl.silu(x), x * nl.sigmoid(x))

    def test_softplus_positive_and_asymptotic(self):
        x = np.linspace(-20, 20, 81)
        y = nl.softplus(x)
        assert np.all(y > 0)
        assert y[-1] == pytest.approx(20.0, abs=1e-6)

    def test_erf_matches_math_erf(self):
        xs = np.linspace(-3, 3, 61)
        expected = np.array([math.erf(v) for v in xs])
        np.testing.assert_allclose(nl.erf(xs), expected, atol=2e-7)

    def test_scalar_and_array_inputs_consistent(self):
        for fn in (nl.gelu, nl.hswish, nl.exp, nl.sigmoid, nl.tanh):
            scalar = float(fn(0.7))
            array = fn(np.array([0.7]))[0]
            assert scalar == pytest.approx(array)


class TestNonLinearFunctionRecord:
    def test_sample_grid_step_and_endpoints(self):
        fn = get_function("gelu")
        grid = fn.sample_grid(0.01)
        assert grid[0] == pytest.approx(-4.0)
        assert grid[-1] == pytest.approx(4.0)
        assert len(grid) == 801

    def test_sample_grid_rejects_bad_step(self):
        with pytest.raises(ValueError):
            get_function("gelu").sample_grid(0.0)

    def test_with_range_returns_new_instance(self):
        fn = get_function("gelu")
        narrowed = fn.with_range(-2, 2)
        assert narrowed.search_range == (-2.0, 2.0)
        assert fn.search_range == (-4.0, 4.0)

    def test_with_range_rejects_inverted(self):
        with pytest.raises(ValueError):
            get_function("gelu").with_range(3, -3)

    def test_callable_dispatches_to_fn(self):
        fn = get_function("exp")
        assert fn(0.0) == pytest.approx(1.0)

    def test_table1_ranges(self):
        assert get_function("gelu").search_range == (-4.0, 4.0)
        assert get_function("hswish").search_range == (-4.0, 4.0)
        assert get_function("exp").search_range == (-8.0, 0.0)
        assert get_function("div").search_range == (0.5, 4.0)
        assert get_function("rsqrt").search_range == (0.25, 4.0)

    def test_scale_dependence_flags(self):
        assert get_function("gelu").scale_dependent
        assert get_function("exp").scale_dependent
        assert not get_function("div").scale_dependent
        assert not get_function("rsqrt").scale_dependent

    def test_rescale_power(self):
        assert get_function("div").rescale_power == 1.0
        assert get_function("rsqrt").rescale_power == 0.5


class TestRegistry:
    def test_default_registry_contains_paper_operators(self):
        for name in ("gelu", "hswish", "exp", "div", "rsqrt"):
            assert name in DEFAULT_REGISTRY

    def test_lookup_is_case_insensitive(self):
        assert get_function("GELU").name == "gelu"

    def test_unknown_function_raises_keyerror(self):
        with pytest.raises(KeyError):
            get_function("does-not-exist")

    def test_list_functions_sorted(self):
        names = list_functions()
        assert names == sorted(names)

    def test_register_duplicate_raises(self):
        registry = FunctionRegistry([get_function("gelu")])
        with pytest.raises(ValueError):
            registry.register(get_function("gelu"))

    def test_register_overwrite_allowed(self):
        registry = FunctionRegistry([get_function("gelu")])
        replacement = get_function("gelu").with_range(-2, 2)
        registry.register(replacement, overwrite=True)
        assert registry.get("gelu").search_range == (-2.0, 2.0)

    def test_custom_function_registration(self):
        registry = FunctionRegistry()
        custom = NonLinearFunction("square", lambda x: np.asarray(x) ** 2, (-1.0, 1.0))
        registry.register(custom)
        assert registry.get("square")(3.0) == pytest.approx(9.0)
        assert len(registry) == 1
