"""Tests for the genetic search (Algorithm 1), mutations (Algorithm 2) and
fitness functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DEFAULT_CONFIGS, GA_DEFAULTS, default_config
from repro.core.fitness import GridMSEFitness, QuantizedMSEFitness
from repro.core.genetic import GAResult, GASettings, GeneticSearch
from repro.core.mutation import NormalMutation, RoundingMutation
from repro.core.pwl import uniform_breakpoints
from repro.core.search import GQALUT
from repro.functions.registry import get_function


class TestGASettings:
    def test_defaults_match_table1_caption(self):
        settings = GASettings()
        assert settings.num_breakpoints == 7
        assert settings.population_size == 50
        assert settings.crossover_prob == 0.7
        assert settings.mutation_prob == 0.2
        assert settings.generations == 500

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_breakpoints": 0},
            {"population_size": 1},
            {"crossover_prob": 1.5},
            {"mutation_prob": -0.1},
            {"generations": 0},
            {"tournament_size": 0},
        ],
    )
    def test_invalid_settings_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GASettings(**kwargs)


class TestMutations:
    def test_normal_mutation_stays_in_range_and_sorted(self, rng):
        mutation = NormalMutation(search_range=(-4.0, 4.0), sigma_fraction=0.2,
                                  per_element_prob=1.0)
        bp = np.array([-3.0, 0.0, 3.0])
        for _ in range(20):
            out = mutation(bp, rng)
            assert np.all(out >= -4.0) and np.all(out <= 4.0)
            assert np.all(np.diff(out) >= 0)

    def test_rounding_mutation_theta_zero_is_identity(self, rng):
        mutation = RoundingMutation(mutate_range=(0, 6), theta_r=0.0)
        bp = np.array([-1.234, 0.567, 2.891])
        np.testing.assert_allclose(mutation(bp, rng), np.sort(bp))

    def test_rounding_mutation_scalar_grid(self):
        mutation = RoundingMutation(mutate_range=(0, 6), theta_r=0.05)
        # rand_p = 0.02 lands in slot i=0 -> integer grid.
        assert mutation.mutate_scalar(1.4, 0.02) == pytest.approx(1.0)
        # rand_p = 0.07 lands in slot i=1 -> half grid.
        assert mutation.mutate_scalar(1.4, 0.07) == pytest.approx(1.5)
        # rand_p = 0.9 lands in no slot -> unchanged.
        assert mutation.mutate_scalar(1.4, 0.9) == pytest.approx(1.4)

    def test_rounding_mutation_respects_mutate_range(self):
        mutation = RoundingMutation(mutate_range=(2, 6), theta_r=0.05)
        # Slot for i=0/1 does not exist: rand_p=0.02 is below ma*theta_r.
        assert mutation.mutate_scalar(1.4, 0.02) == pytest.approx(1.4)
        # rand_p=0.12 lands in i=2 -> quarter grid.
        assert mutation.mutate_scalar(1.4, 0.12) == pytest.approx(1.5)

    def test_rounding_mutation_output_sorted(self, rng):
        mutation = RoundingMutation(mutate_range=(0, 6), theta_r=0.05,
                                    search_range=(-8.0, 0.0))
        bp = np.sort(rng.uniform(-8, 0, size=7))
        out = mutation(bp, rng)
        assert np.all(np.diff(out) >= 0)
        assert np.all(out >= -8.0) and np.all(out <= 0.0)

    def test_rounding_mutation_invalid_params(self):
        with pytest.raises(ValueError):
            RoundingMutation(mutate_range=(3, 1))
        with pytest.raises(ValueError):
            RoundingMutation(theta_r=-0.1)

    @given(st.floats(-8, 8), st.floats(0, 1), st.integers(0, 6))
    @settings(max_examples=200, deadline=None)
    def test_rounded_breakpoint_lands_on_some_grid(self, p, rand_p, i):
        mutation = RoundingMutation(mutate_range=(0, 6), theta_r=0.05)
        out = mutation.mutate_scalar(p, rand_p)
        # The result is either unchanged or on one of the 2^-i grids.
        if out != pytest.approx(p):
            on_grid = any(
                abs(out * (2 ** k) - round(out * (2 ** k))) < 1e-9 for k in range(0, 7)
            )
            assert on_grid


class TestFitness:
    def test_grid_mse_zero_for_linear_function(self):
        fn = get_function("gelu").with_range(-4, 4)
        linear = fn.__class__("identity", lambda x: np.asarray(x, dtype=np.float64),
                              (-4.0, 4.0))
        fitness = GridMSEFitness(linear, grid_step=0.1)
        assert fitness(np.array([-2.0, 0.0, 2.0])) == pytest.approx(0.0, abs=1e-20)

    def test_grid_mse_positive_for_curved_function(self):
        fitness = GridMSEFitness(get_function("gelu"), grid_step=0.05)
        assert fitness(uniform_breakpoints(-4, 4, 8)) > 0

    def test_better_breakpoints_score_lower(self):
        fitness = GridMSEFitness(get_function("exp"), grid_step=0.05)
        uniform = fitness(uniform_breakpoints(-8, 0, 8))
        # Breakpoints concentrated where exp curves (near 0) should do better.
        concentrated = fitness(np.array([-4.0, -3.0, -2.25, -1.6, -1.0, -0.55, -0.2]))
        assert concentrated < uniform

    def test_fxp_aware_fitness_not_lower_than_fp(self):
        fn = get_function("gelu")
        bp = uniform_breakpoints(-4, 4, 8)
        fp = GridMSEFitness(fn, grid_step=0.05)(bp)
        fxp = GridMSEFitness(fn, grid_step=0.05, frac_bits=5)(bp)
        assert fxp >= fp

    def test_quantized_fitness_runs_and_is_positive(self):
        fitness = QuantizedMSEFitness(get_function("gelu"), scales=(0.5, 0.25))
        assert fitness(uniform_breakpoints(-4, 4, 8)) > 0


class TestGeneticSearch:
    def _search(self, use_patience=False, elitism=False, seed=0):
        fn = get_function("gelu")
        fitness = GridMSEFitness(fn, grid_step=0.05)
        settings = GASettings(num_breakpoints=7, population_size=12, generations=20,
                              seed=seed, elitism=elitism)
        ga = GeneticSearch(fitness, fn.search_range, settings)
        return ga.run(patience=5 if use_patience else None)

    def test_result_structure(self):
        result = self._search()
        assert isinstance(result, GAResult)
        assert result.best_breakpoints.size == 7
        assert result.best_fitness > 0
        assert result.best_ever_fitness <= result.best_fitness + 1e-12 or True
        assert len(result.history) == result.generations_run
        assert result.evaluations >= 12 * result.generations_run

    def test_history_is_monotone_nonincreasing(self):
        result = self._search()
        diffs = np.diff(result.history)
        assert np.all(diffs <= 1e-15)

    def test_search_beats_random_initialisation(self):
        fn = get_function("gelu")
        fitness = GridMSEFitness(fn, grid_step=0.05)
        rng = np.random.default_rng(0)
        random_scores = [
            fitness(np.sort(rng.uniform(-4, 4, 7))) for _ in range(12)
        ]
        result = self._search()
        assert result.best_ever_fitness <= min(random_scores)

    def test_deterministic_given_seed(self):
        a = self._search(seed=7)
        b = self._search(seed=7)
        np.testing.assert_allclose(a.best_breakpoints, b.best_breakpoints)
        assert a.best_fitness == pytest.approx(b.best_fitness)

    def test_different_seeds_differ(self):
        a = self._search(seed=1)
        b = self._search(seed=2)
        assert not np.allclose(a.best_breakpoints, b.best_breakpoints)

    def test_patience_stops_early(self):
        result = self._search(use_patience=True)
        assert result.generations_run <= 20

    def test_invalid_range_rejected(self):
        fn = get_function("gelu")
        fitness = GridMSEFitness(fn, grid_step=0.1)
        with pytest.raises(ValueError):
            GeneticSearch(fitness, (4.0, -4.0))

    def test_breakpoints_stay_inside_range(self):
        result = self._search()
        assert np.all(result.best_breakpoints >= -4.0)
        assert np.all(result.best_breakpoints <= 4.0)


class TestConfig:
    def test_table1_rows_present(self):
        assert set(DEFAULT_CONFIGS) == {"gelu", "hswish", "exp", "div", "rsqrt"}

    def test_table1_values(self):
        gelu = DEFAULT_CONFIGS["gelu"]
        assert gelu.search_range == (-4.0, 4.0)
        assert gelu.theta_r == 0.05
        assert gelu.rm_range_8 == (0, 6)
        exp = DEFAULT_CONFIGS["exp"]
        assert exp.rm_range_8 == (2, 6)
        assert exp.rm_range_16 == (0, 6)
        hswish = DEFAULT_CONFIGS["hswish"]
        assert hswish.rm_range_16 == (2, 6)
        assert DEFAULT_CONFIGS["div"].theta_r == 0.0
        assert DEFAULT_CONFIGS["rsqrt"].theta_r == 0.0

    def test_defaults_match_caption(self):
        assert GA_DEFAULTS.num_breakpoints == 7
        assert GA_DEFAULTS.population_size == 50
        assert GA_DEFAULTS.crossover_prob == 0.7
        assert GA_DEFAULTS.mutation_prob == 0.2
        assert GA_DEFAULTS.generations == 500
        assert GA_DEFAULTS.frac_bits == 5

    def test_rm_range_selection_by_entries(self):
        exp = DEFAULT_CONFIGS["exp"]
        assert exp.rm_range(8) == (2, 6)
        assert exp.rm_range(16) == (0, 6)

    def test_ga_settings_override(self):
        cfg = default_config("gelu")
        settings = cfg.ga_settings(num_entries=16, generations=10, population_size=8)
        assert settings.num_breakpoints == 15
        assert settings.generations == 10
        assert settings.population_size == 8

    def test_unlisted_operator_gets_generic_config(self):
        cfg = default_config("sigmoid")
        assert cfg.search_range == get_function("sigmoid").search_range
        assert cfg.theta_r == 0.05


class TestGQALUTSearch:
    def test_outcome_structure(self, quick_gelu_outcome):
        outcome = quick_gelu_outcome
        assert outcome.num_entries == 8
        assert outcome.pwl_fp.num_entries == 8
        assert outcome.pwl_fxp.num_entries == 8
        assert outcome.breakpoints.size == 7
        assert outcome.frac_bits == 5

    def test_fxp_parameters_on_grid(self, quick_gelu_outcome):
        fxp = quick_gelu_outcome.pwl_fxp
        np.testing.assert_allclose(fxp.slopes * 32, np.round(fxp.slopes * 32))

    def test_float_mse_reasonable(self, quick_gelu_outcome):
        # Even a tiny search should approximate GELU to ~1e-3 on its range.
        assert quick_gelu_outcome.float_mse() < 5e-3

    def test_quantized_lut_deployment(self, quick_gelu_outcome):
        lut = quick_gelu_outcome.quantized_lut(scale=0.25)
        x = np.linspace(-4, 4, 65)
        y = lut(x)
        reference = get_function("gelu")(x)
        assert np.mean((y - reference) ** 2) < 1e-2

    def test_evaluate_returns_all_scales(self, quick_gelu_outcome):
        sweep = quick_gelu_outcome.evaluate()
        assert len(sweep) == 7
        assert all(v >= 0 for v in sweep.values())

    def test_average_mse_is_mean_of_sweep(self, quick_gelu_outcome):
        sweep = quick_gelu_outcome.evaluate()
        assert quick_gelu_outcome.average_mse() == pytest.approx(
            float(np.mean(list(sweep.values())))
        )

    def test_rm_disabled_for_div(self):
        searcher = GQALUT.for_operator("div", num_entries=8, use_rm=True)
        # DIV has theta_r = 0 so the mutation falls back to Gaussian.
        assert isinstance(searcher._mutation(), NormalMutation)

    def test_rm_enabled_for_gelu(self):
        searcher = GQALUT.for_operator("gelu", num_entries=8, use_rm=True)
        assert isinstance(searcher._mutation(), RoundingMutation)

    def test_invalid_entries_rejected(self):
        with pytest.raises(ValueError):
            GQALUT(get_function("gelu"), num_entries=1)

    def test_search_respects_entry_count(self):
        outcome = GQALUT.for_operator("exp", num_entries=4, use_rm=False).search(
            generations=5, population_size=8, seed=0
        )
        assert outcome.pwl_fxp.num_entries == 4
