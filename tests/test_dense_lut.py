"""Dense-table inference engine: equivalence, caching and fused autograd.

The engine contract mirrors PR 1's batch-fitness contract: the dense path
must be *bit-identical* to the legacy Fig. 1b pipeline, pinned here with
exact comparisons over every representable input code.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lut import (
    DenseLUT,
    QuantizedLUT,
    dense_lut_cache_clear,
    dense_lut_for,
)
from repro.core.pwl import fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function, list_functions
from repro.nn.quantization import LSQQuantizer, PowerOfTwoQuantizer
from repro.nn.tensor import Tensor
from repro.quant.quantizer import QuantSpec
from repro.scaling.multi_range import MultiRangePWL, default_multi_range

SCALES = (2.0 ** -6, 2.0 ** -3, 2.0 ** 0, 2.0 ** 2)


def _pwl_for(name: str, num_entries: int = 8):
    fn = get_function(name)
    breakpoints = uniform_breakpoints(*fn.search_range, num_entries)
    return fit_pwl(fn.fn, breakpoints, fn.search_range)


class TestAllCodesEquivalence:
    """Dense tables replicate the pipeline over every representable code."""

    @pytest.mark.parametrize("name", list_functions())
    @pytest.mark.parametrize("scale", SCALES)
    def test_outputs_and_slopes_bit_identical(self, name, scale):
        pwl = _pwl_for(name)
        legacy = QuantizedLUT(pwl=pwl, scale=scale)
        dense = DenseLUT.from_quantized(legacy)
        codes = np.arange(legacy.spec.qmin, legacy.spec.qmax + 1, dtype=np.float64)
        np.testing.assert_array_equal(
            dense.lookup_codes(codes), legacy.lookup_dequantized(codes)
        )
        np.testing.assert_array_equal(
            dense.slope_codes(codes), legacy.stored_slopes[legacy.segment_index(codes)]
        )

    @pytest.mark.parametrize("frac_bits", [3, 5, 7])
    def test_frac_bits_sweep(self, frac_bits):
        pwl = _pwl_for("gelu")
        for scale in SCALES:
            legacy = QuantizedLUT(pwl=pwl, scale=scale, frac_bits=frac_bits)
            dense = DenseLUT.from_quantized(legacy)
            codes = np.arange(legacy.spec.qmin, legacy.spec.qmax + 1, dtype=np.float64)
            np.testing.assert_array_equal(
                dense.lookup_codes(codes), legacy.lookup_dequantized(codes)
            )

    @pytest.mark.parametrize("bits", [4, 8])
    def test_real_domain_lookup_matches_call(self, bits):
        pwl = _pwl_for("gelu")
        spec = QuantSpec(bits=bits, signed=True)
        legacy = QuantizedLUT(pwl=pwl, scale=2.0 ** -3, spec=spec)
        dense = DenseLUT.from_quantized(legacy)
        assert dense.num_codes == 2 ** bits
        x = np.random.default_rng(7).normal(scale=3.0, size=(5, 33))
        np.testing.assert_array_equal(dense(x), legacy(x))
        out, slope = dense.lookup_with_slope(x)
        np.testing.assert_array_equal(out, legacy(x))

    def test_fused_lookup_slope_matches_separate_path(self):
        pwl = _pwl_for("exp")
        legacy = QuantizedLUT(pwl=pwl, scale=2.0 ** -4)
        dense = DenseLUT.from_quantized(legacy)
        x = np.random.default_rng(3).normal(size=200)
        q = np.clip(np.round(x / legacy.scale), legacy.spec.qmin, legacy.spec.qmax)
        _, slope = dense.lookup_with_slope(x)
        np.testing.assert_array_equal(
            slope, legacy.stored_slopes[legacy.segment_index(q)]
        )

    def test_nan_inputs_propagate_like_legacy(self):
        legacy = QuantizedLUT(pwl=_pwl_for("gelu"), scale=0.25)
        dense = DenseLUT.from_quantized(legacy)
        x = np.array([0.5, np.nan, -1.25])
        with np.errstate(invalid="raise"):  # the dense path must not warn
            got, slope = dense.lookup_with_slope(x)
        expected = legacy(x)
        assert np.isnan(expected[1]) and np.isnan(got[1])
        np.testing.assert_array_equal(got[[0, 2]], expected[[0, 2]])
        # The legacy comparer sends NaN to the last segment, whose slope is
        # finite — the stashed backward slope must match it.
        legacy_slope = legacy.stored_slopes[legacy.segment_index(np.array([np.nan]))]
        np.testing.assert_array_equal(slope[1], legacy_slope[0])

    def test_out_of_range_codes_saturate(self):
        legacy = QuantizedLUT(pwl=_pwl_for("gelu"), scale=0.25)
        dense = DenseLUT.from_quantized(legacy)
        np.testing.assert_array_equal(
            dense.lookup_codes([-1000, 1000]), dense.lookup_codes([-128, 127])
        )
        np.testing.assert_array_equal(
            dense.slope_codes([-1000, 1000]), dense.slope_codes([-128, 127])
        )

    def test_to_dense_round_trip(self):
        legacy = QuantizedLUT(pwl=_pwl_for("tanh"), scale=0.5)
        dense = legacy.to_dense()
        codes = np.arange(-128, 128, dtype=np.float64)
        np.testing.assert_array_equal(dense.lookup_codes(codes), legacy.lookup_dequantized(codes))

    def test_rejects_wrong_table_length(self):
        with pytest.raises(ValueError):
            DenseLUT(
                pwl=_pwl_for("gelu"),
                scale=0.5,
                outputs=np.zeros(7),
                segment_slopes=np.zeros(7),
            )


class TestQuantizedLUTMemoization:
    def test_derived_arrays_cached_and_stable(self):
        lut = QuantizedLUT(pwl=_pwl_for("gelu"), scale=2.0 ** -2)
        first = lut.quantized_breakpoints
        assert lut.quantized_breakpoints is first
        assert lut.stored_slopes is lut.stored_slopes
        assert lut.stored_intercepts is lut.stored_intercepts
        assert lut.shifted_intercepts is lut.shifted_intercepts

    def test_memoized_values_match_fresh_instance(self):
        pwl = _pwl_for("gelu")
        lut = QuantizedLUT(pwl=pwl, scale=2.0 ** -2)
        _ = lut.stored_slopes, lut.shifted_intercepts  # populate caches
        fresh = QuantizedLUT(pwl=pwl, scale=2.0 ** -2)
        np.testing.assert_array_equal(lut.quantized_breakpoints, fresh.quantized_breakpoints)
        np.testing.assert_array_equal(lut.stored_slopes, fresh.stored_slopes)
        np.testing.assert_array_equal(lut.shifted_intercepts, fresh.shifted_intercepts)


class TestDenseLUTCache:
    def setup_method(self):
        dense_lut_cache_clear()

    def test_same_key_returns_same_object(self):
        pwl = _pwl_for("gelu")
        first = dense_lut_for(pwl, 0.25)
        assert dense_lut_for(pwl, 0.25) is first

    def test_new_scale_builds_new_table(self):
        pwl = _pwl_for("gelu")
        quarter = dense_lut_for(pwl, 0.25)
        half = dense_lut_for(pwl, 0.5)
        assert half is not quarter
        assert dense_lut_for(pwl, 0.25) is quarter  # old scale still cached

    def test_different_pwl_objects_do_not_collide(self):
        first = dense_lut_for(_pwl_for("gelu"), 0.25)
        second = dense_lut_for(_pwl_for("exp"), 0.25)
        assert first is not second

    def test_cache_is_bounded(self):
        from repro.core import lut as lut_module

        pwl = _pwl_for("gelu")
        for exponent in range(lut_module._DENSE_LUT_CACHE_SIZE + 10):
            dense_lut_for(pwl, 2.0 ** (exponent - 60))
        assert len(lut_module._DENSE_LUT_CACHE) == lut_module._DENSE_LUT_CACHE_SIZE


class TestScaleVersioning:
    def test_version_bumps_only_on_scale_change(self):
        quantizer = PowerOfTwoQuantizer(bits=8, signed=True)
        quantizer.initialise_from(np.linspace(-1, 1, 100))
        version = quantizer.scale_version()
        assert quantizer.scale_version() == version  # stable while scale holds
        quantizer.scale.data = quantizer.scale.data * 2.0
        assert quantizer.scale_version() == version + 1

    def test_power_of_two_version_ignores_sub_exponent_drift(self):
        quantizer = PowerOfTwoQuantizer(bits=8, signed=True)
        quantizer.initialise_from(np.linspace(-1, 1, 100))
        version = quantizer.scale_version()
        # A tiny nudge of alpha keeps the snapped 2^e deployed scale.
        quantizer.scale.data = quantizer.scale.data * 1.01
        assert quantizer.scale_version() == version

    def test_initialised_property(self):
        quantizer = LSQQuantizer()
        assert not quantizer.initialised
        quantizer.initialise_from(np.ones(10))
        assert quantizer.initialised


class TestFusedElementwise:
    def test_fused_matches_separate_forward_backward(self):
        data = np.random.default_rng(0).normal(size=(4, 9))
        x_sep = Tensor(data, requires_grad=True)
        y_sep = x_sep.apply_elementwise(lambda d: d * 3.0, lambda d: np.full_like(d, 3.0))
        y_sep.backward(np.ones_like(data))
        x_fused = Tensor(data, requires_grad=True)
        y_fused = x_fused.apply_elementwise_fused(lambda d: (d * 3.0, np.full_like(d, 3.0)))
        y_fused.backward(np.ones_like(data))
        np.testing.assert_array_equal(y_sep.data, y_fused.data)
        np.testing.assert_array_equal(x_sep.grad, x_fused.grad)

    def test_fused_rejects_shape_changes(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        with pytest.raises(ValueError):
            x.apply_elementwise_fused(lambda d: (d.ravel(), d))
        with pytest.raises(ValueError):
            x.apply_elementwise_fused(lambda d: (d, d.ravel()))


class TestMultiRangeFusedLookup:
    @pytest.mark.parametrize("operator", ["div", "rsqrt"])
    def test_fused_matches_call_and_separate_slope(self, operator):
        pwl = _pwl_for(operator)
        wrapped = MultiRangePWL(pwl=pwl, scaling=default_multi_range(operator))
        # Cover I_R, every Table 2 sub-range, the unbounded tail and the
        # below-range region.
        x = np.concatenate([
            np.linspace(0.01, 4.0, 57),
            np.linspace(4.0, 2000.0, 91),
            np.array([0.25, 0.5, 4.0, 32.0, 64.0, 256.0, 1024.0, 5000.0]),
        ])
        outputs, slopes = wrapped.lookup_with_slope(x)
        np.testing.assert_array_equal(outputs, wrapped(x))

        scaled, factor = wrapped.scaling.rescale_input(x)
        idx = wrapped.fxp_pwl.segment_index(scaled)
        input_scale = np.ones_like(x)
        classified = wrapped.scaling.classify(x)
        for i, sub in enumerate(wrapped.scaling.sub_ranges):
            input_scale = np.where(classified == i, sub.scale, input_scale)
        np.testing.assert_array_equal(
            slopes, factor * wrapped.fxp_pwl.slopes[idx] * input_scale
        )

    @pytest.mark.parametrize("operator", ["div", "rsqrt"])
    def test_forward_only_lookup_matches_call(self, operator):
        pwl = _pwl_for(operator)
        wrapped = MultiRangePWL(pwl=pwl, scaling=default_multi_range(operator))
        x = np.random.default_rng(5).uniform(0.0, 3000.0, size=511)
        np.testing.assert_array_equal(wrapped.lookup(x), wrapped(x))

    def test_slot_tables_match_generic_mask_loop(self):
        pwl = _pwl_for("div")
        wrapped = MultiRangePWL(pwl=pwl, scaling=default_multi_range("div"))
        assert wrapped._slot_edges is not None
        x = np.random.default_rng(11).uniform(0.0, 3000.0, size=257)
        fast = wrapped.lookup_with_slope(x)
        wrapped._slot_edges = None  # force the generic fallback
        slow = wrapped.lookup_with_slope(x)
        np.testing.assert_array_equal(fast[0], slow[0])
        np.testing.assert_array_equal(fast[1], slow[1])
