"""Tests for the replicated serving supervisor (no injected faults here).

Contract: replicated serving is observably the *same server* as the
single-process tier — every response bit-identical to a direct eager
predict regardless of which replica answers — plus the supervisor
surface: per-replica health, graceful drain, and the canary-verified
rolling hot-swap.  Crash/chaos behaviour lives in
``test_chaos_replicated.py``.
"""

import json
import time

import numpy as np
import pytest

from repro.core import engine_config
from repro.core.pwl import fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function
from repro.nn.approx import PWLActivation, PWLSuite, swap_lut_tables
from repro.nn.models import MiniSegformer, ModelConfig
from repro.nn.training import prepare_quantized_model
from repro.serve import ReplicatedServer

OPERATORS = ("exp", "gelu", "div", "rsqrt")


def build_model():
    suite = PWLSuite(
        approximations={
            op: fit_pwl(
                get_function(op).fn,
                uniform_breakpoints(*get_function(op).search_range, 8),
                get_function(op).search_range,
            ).to_fixed_point(5)
            for op in OPERATORS
        },
        replace=set(OPERATORS),
        engine="dense",
    )
    model = MiniSegformer(ModelConfig(image_size=16, embed_dim=16, depth=1), suite=suite)
    prepare_quantized_model(model)
    model.eval()
    return model


@pytest.fixture(scope="module")
def served_model():
    model = build_model()
    # Initialise the LSQ quantizers before any fork: every replica then
    # shares identical frozen scales, which is what makes responses
    # bit-identical regardless of the serving replica.
    model.predict(np.random.default_rng(0).normal(size=(1, 16, 16, 3)), engine="eager")
    return model


def make_images(count, seed=1):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(16, 16, 3)) for _ in range(count)]


def perturbed_head_state(model, scale=7.0):
    """A valid new state dict whose predictions visibly differ."""
    state = dict(model.state_dict())
    key = next(name for name in state if "head" in name and name.endswith("bias"))
    state[key] = state[key] + np.arange(state[key].size, dtype=np.float64) * scale
    return state


class TestReplicatedServer:
    @pytest.mark.parametrize("engine", ["compiled", "eager"])
    def test_responses_match_direct_predict(self, served_model, engine):
        images = make_images(8)
        reference = [served_model.predict(im[None], engine="eager")[0] for im in images]
        with ReplicatedServer(
            served_model, replicas=2, max_batch=4, max_wait_ms=2.0, engine=engine
        ) as server:
            results = server.predict_many(images, timeout=120)
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got, want)

    def test_requests_are_fused_and_counted(self, served_model):
        images = make_images(12)
        with ReplicatedServer(
            served_model, replicas=2, max_batch=4, max_wait_ms=20.0
        ) as server:
            server.predict_many(images, timeout=120)
            stats = server.stats()
        assert stats.requests == 12
        assert stats.completed == 12
        assert stats.failed == 0
        assert stats.batches < 12  # fusion still happens behind the supervisor

    def test_health_report_shape_and_json(self, served_model):
        with ReplicatedServer(served_model, replicas=2, max_wait_ms=1.0) as server:
            server.predict_many(make_images(4), timeout=120)
            report = server.health()
            assert report["status"] == "ok"
            assert report["replica_count"] == 2
            assert report["model_generation"] == 0
            assert len(report["replicas"]) == 2
            states = {entry["state"] for entry in report["replicas"]}
            assert states <= {"starting", "healthy"}
            for entry in report["replicas"]:
                assert entry["pid"] is not None
                assert entry["generation"] == 1
                assert entry["restarts"] == 0
            for counter in (
                "replica_deaths",
                "restarts",
                "heartbeat_kills",
                "batch_timeouts",
                "stale_kills",
                "redispatches",
                "swaps",
                "rollbacks",
            ):
                assert report["supervisor"][counter] == 0
            json.dumps(report)  # endpoint-shaped: fully serialisable

    def test_drain_waits_out_outstanding_requests(self, served_model):
        images = make_images(6)
        with ReplicatedServer(served_model, replicas=2, max_wait_ms=1.0) as server:
            futures = [server.submit(image) for image in images]
            assert server.drain(timeout=120)
            # After a successful drain every future is already resolved.
            assert all(future.done() for future in futures)

    def test_close_is_idempotent_and_final(self, served_model):
        server = ReplicatedServer(served_model, replicas=2, max_wait_ms=1.0)
        server.predict(make_images(1)[0], timeout=120)
        server.close()
        server.close()
        assert server.health()["status"] == "closed"
        with pytest.raises(RuntimeError):
            server.submit(make_images(1)[0])

    def test_replica_count_resolves_through_engine_config(self, served_model):
        with engine_config.use(serve_replicas=1):
            with ReplicatedServer(served_model, max_wait_ms=1.0) as server:
                assert server.health()["replica_count"] == 1
                server.predict(make_images(1)[0], timeout=120)

    def test_invalid_knobs_rejected(self, served_model):
        with pytest.raises(ValueError):
            ReplicatedServer(served_model, replicas=0)
        with pytest.raises(ValueError):
            ReplicatedServer(served_model, crash_loop_window_s=0.0)
        with pytest.raises(ValueError):
            ReplicatedServer(served_model, max_redispatch=0)
        with pytest.raises(ValueError):
            ReplicatedServer(served_model, batch_timeout_s=0.0)


class TestHotSwap:
    def test_rolling_swap_promotes_every_replica(self, served_model):
        images = make_images(6)
        old_state = served_model.state_dict()  # restored afterwards
        old_reference = [
            served_model.predict(im[None], engine="eager")[0] for im in images
        ]
        new_state = perturbed_head_state(served_model)
        canary = images[0]
        try:
            with ReplicatedServer(
                served_model, replicas=2, max_wait_ms=1.0, canary=canary
            ) as server:
                before = server.predict_many(images, timeout=120)
                for got, want in zip(before, old_reference):
                    np.testing.assert_array_equal(got, want)
                report = server.swap_state(new_state)
                assert report["rolled_back"] is False
                assert report["swapped"] == 2
                assert report["model_generation"] == 1
                # The reference model is now the new one; the fleet agrees.
                new_reference = [
                    served_model.predict(im[None], engine="eager")[0] for im in images
                ]
                changed = sum(
                    not np.array_equal(old, new)
                    for old, new in zip(old_reference, new_reference)
                )
                assert changed > 0  # the perturbation actually changed answers
                after = server.predict_many(images, timeout=120)
                for got, want in zip(after, new_reference):
                    np.testing.assert_array_equal(got, want)
                health = server.health()
                assert health["supervisor"]["swaps"] == 1
                assert health["model_generation"] == 1
                assert all(
                    entry["model_generation"] == 1 for entry in health["replicas"]
                )
        finally:
            # The fixture is module-scoped: put the old weights back.
            served_model.load_state_dict(old_state, strict=True)

    def test_swap_requires_a_canary(self, served_model):
        with ReplicatedServer(served_model, replicas=1, max_wait_ms=1.0) as server:
            with pytest.raises(ValueError, match="canary"):
                server.swap_state(dict(served_model.state_dict()))

    def test_failed_validation_restores_the_reference_model(self, served_model):
        """A state with matching keys but one bad shape aborts the strict
        load *mid-loop*, after earlier params were already overwritten.
        The reference model must come back bit-exact — a half-loaded
        reference would fork diverged restarts while the replicas still
        serve the old model."""
        images = make_images(4)
        reference = [served_model.predict(im[None], engine="eager")[0] for im in images]
        bad_state = {
            name: np.asarray(value) + 1.0
            for name, value in served_model.state_dict().items()
        }
        last = list(bad_state)[-1]  # loaded last: everything before it mutates
        bad_state[last] = np.zeros(np.asarray(bad_state[last]).shape + (2,))
        with ReplicatedServer(
            served_model, replicas=1, max_wait_ms=1.0, canary=images[0]
        ) as server:
            with pytest.raises(ValueError, match="shape mismatch"):
                server.swap_state(bad_state)
            restored = [
                served_model.predict(im[None], engine="eager")[0] for im in images
            ]
            for got, want in zip(restored, reference):
                np.testing.assert_array_equal(got, want)
            # Unknown LUT names are rejected the same way: the state load
            # that preceded the table check is rolled back too.
            with pytest.raises(KeyError, match="nope"):
                server.swap_state(
                    dict(served_model.state_dict()), lut_tables={"nope": None}
                )
            restored = [
                served_model.predict(im[None], engine="eager")[0] for im in images
            ]
            for got, want in zip(restored, reference):
                np.testing.assert_array_equal(got, want)
            health = server.health()
            assert health["supervisor"]["swaps"] == 0
            assert health["model_generation"] == 0

    def test_stale_generation_replica_is_retired_not_promoted(self, served_model):
        """A replica left behind by a swap (its slot still runs the
        pre-swap fork once the fleet's generation moves on) must be
        respawned from the promoted reference, never allowed to serve
        stale weights next to the new fleet."""
        images = make_images(4)
        reference = [served_model.predict(im[None], engine="eager")[0] for im in images]
        with ReplicatedServer(
            served_model, replicas=2, max_wait_ms=1.0, canary=images[0]
        ) as server:
            server.predict_many(images, timeout=120)  # both replicas up
            # Simulate a completed swap that slot 0 missed: the fleet
            # generation advanced while slot 0 stayed on generation 0.
            # (The reference model is unchanged, so the respawned fork
            # must keep answering bit-identically.)
            server._model_generation += 1
            server._slots[1].model_generation += 1

            def retired_and_respawned():
                entry = server.health()["replicas"][0]
                return (
                    entry["state"] == "healthy"
                    and entry["model_generation"] == server._model_generation
                )

            deadline = time.monotonic() + 30.0
            while not retired_and_respawned():
                assert time.monotonic() < deadline, (
                    "stale replica was never retired: %r" % server.health()
                )
                time.sleep(0.02)
            health = server.health()
            assert health["supervisor"]["stale_kills"] >= 1
            # Not a crash: the breaker was never consulted.
            assert health["supervisor"]["replica_deaths"] == 0
            assert health["replicas"][0]["crashes_in_window"] == 0
            results = server.predict_many(images, timeout=120)
            for got, want in zip(results, reference):
                np.testing.assert_array_equal(got, want)

    def test_bad_state_dict_fails_before_touching_the_fleet(self, served_model):
        images = make_images(4)
        reference = [served_model.predict(im[None], engine="eager")[0] for im in images]
        bad_state = dict(served_model.state_dict())
        bad_state.pop(sorted(bad_state)[0])  # strict load must refuse this
        with ReplicatedServer(
            served_model, replicas=2, max_wait_ms=1.0, canary=images[0]
        ) as server:
            with pytest.raises(KeyError):
                server.swap_state(bad_state)
            health = server.health()
            assert health["supervisor"]["swaps"] == 0
            assert health["supervisor"]["rollbacks"] == 0
            assert health["model_generation"] == 0
            results = server.predict_many(images, timeout=120)
            for got, want in zip(results, reference):
                np.testing.assert_array_equal(got, want)


class TestSwapLutTables:
    def _named_pwl_module(self, entries=8):
        fn = get_function("gelu")
        pwl = fit_pwl(
            fn.fn, uniform_breakpoints(*fn.search_range, entries), fn.search_range
        ).to_fixed_point(5)
        return PWLActivation("gelu", pwl), pwl

    def _forward(self, module, x):
        from repro.nn.tensor import Tensor, no_grad

        with no_grad():
            return module(Tensor(x)).data

    def test_swap_replaces_tables_and_returns_previous(self):
        module, old_pwl = self._named_pwl_module(entries=8)
        _, new_pwl = self._named_pwl_module(entries=16)
        x = np.linspace(-3.0, 3.0, 64)
        before = self._forward(module, x)
        previous = swap_lut_tables(module, {"gelu": new_pwl})
        assert previous["gelu"] is old_pwl
        after = self._forward(module, x)
        assert not np.array_equal(before, after)  # the new table is live
        # Swapping the old table back restores the output bit-exactly —
        # the rollback direction of the supervisor's hot-swap.
        swap_lut_tables(module, previous)
        np.testing.assert_array_equal(self._forward(module, x), before)

    def test_unknown_operator_name_is_rejected(self):
        module, pwl = self._named_pwl_module()
        with pytest.raises(KeyError, match="softmax"):
            swap_lut_tables(module, {"softmax": pwl})

    def test_rejected_swap_touches_nothing(self):
        """One known and one unknown name: the whole swap is refused
        atomically — the known module keeps its old table, so a rejected
        rolling swap never needs a table rollback."""
        module, _ = self._named_pwl_module(entries=8)
        _, new_pwl = self._named_pwl_module(entries=16)
        x = np.linspace(-3.0, 3.0, 64)
        before = self._forward(module, x)
        with pytest.raises(KeyError, match="softmax"):
            swap_lut_tables(module, {"gelu": new_pwl, "softmax": new_pwl})
        np.testing.assert_array_equal(self._forward(module, x), before)
