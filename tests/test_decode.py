"""KV-cached autoregressive decode: parity, bucketing, serving (PR 10).

The decode stack's contract, pinned here:

* greedy token streams are **identical** across eager/compiled ×
  cached/uncached × float/pwl-dense/pwl-legacy, at several prompt lengths;
* eager-cached vs compiled-cached *logits* are **bit-identical** (the
  compiled plan replays the same ops on the same arrays);
* cache capacity grows in power-of-two buckets, crossings preserve the
  written prefix bit-exactly, and the compiled step specialises once per
  (batch, capacity) — logarithmic in sequence length;
* the serving tier's bucket-grouped decode answers concurrent sessions
  with the same streams direct decode produces, actually batches them,
  and reports decode latency under non-aliasing bucket keys.
"""

import threading

import numpy as np
import pytest

from repro.core import engine_config
from repro.core.pwl import PiecewiseLinear, fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function
from repro.graph import CompiledGraph, optimize, trace
from repro.graph.executor import CompiledDecodeStep
from repro.nn import functional as F
from repro.nn.approx import FloatSuite, PWLSuite
from repro.nn.tensor import Tensor
from repro.nn.training import prepare_quantized_model
from repro.nn.transformer import (
    DecoderConfig,
    KVCache,
    MiniDecoder,
    bucket_capacity,
    greedy_generate,
    step_inputs,
)
from repro.serve import BatchingServer


def build_approximation(operator: str, num_entries: int = 8) -> PiecewiseLinear:
    fn = get_function(operator)
    pwl = fit_pwl(fn.fn, uniform_breakpoints(*fn.search_range, num_entries), fn.search_range)
    return pwl.to_fixed_point(5)


def build_suite(kind: str):
    """A fresh operator suite: ``float`` or a full pwl suite per engine."""
    if kind == "float":
        return FloatSuite()
    approximations = {op: build_approximation(op)
                      for op in ("exp", "gelu", "div", "rsqrt")}
    return PWLSuite(
        approximations, replace={"exp", "gelu", "div", "rsqrt"}, engine=kind
    )


SMALL = DecoderConfig(
    vocab_size=16, max_seq=32, embed_dim=16, depth=2, num_heads=2, seed=3
)

#: Three prompt lengths (satellite requirement), all decoding 8 new tokens.
PROMPTS = ([7], [1, 5, 3], [2, 4, 6, 1, 0, 3])


def make_model(kind: str, config: DecoderConfig = SMALL) -> MiniDecoder:
    """A fresh, deterministically initialised decoder on suite ``kind``."""
    model = MiniDecoder(config, suite=build_suite(kind))
    if kind != "float":
        prepare_quantized_model(model)
    model.eval()
    return model


class TestBucketCapacity:
    def test_powers_of_two_capped_at_max_seq(self):
        assert [bucket_capacity(n, 64) for n in (1, 2, 3, 4, 5, 8, 9, 33)] == [
            1, 2, 4, 4, 8, 8, 16, 64,
        ]
        assert bucket_capacity(100, 128) == 128
        with pytest.raises(ValueError):
            bucket_capacity(65, 64)

    def test_specialization_count_is_logarithmic(self):
        lengths = range(1, 1001)
        buckets = {bucket_capacity(n, 1024) for n in lengths}
        assert len(buckets) == 11  # 1, 2, 4, ..., 1024 — ~10 for 1000 tokens


class TestKVCache:
    def test_growth_preserves_prefix_bits_and_zero_tail(self):
        cache = KVCache(num_layers=2, batch=1, num_heads=2, head_dim=4, max_seq=32)
        rng = np.random.default_rng(0)
        arrays = [rng.normal(size=(1, 2, 1, 4)) for _ in range(4)]
        cache.update(arrays)
        assert cache.capacity == 1 and cache.length == 1
        before = [k.copy() for k in cache.keys]
        assert cache.ensure(2) == 2
        for grown, old in zip(cache.keys, before):
            np.testing.assert_array_equal(grown[:, :, :1, :], old)
            assert not grown[:, :, 1:, :].any()
        # A no-op ensure never reallocates.
        identity = cache.keys[0]
        assert cache.ensure(2) == 2
        assert cache.keys[0] is identity

    def test_row_split_round_trips(self):
        cache = KVCache(num_layers=1, batch=3, num_heads=2, head_dim=4,
                        max_seq=16, capacity=4)
        cache.keys[0] = np.random.default_rng(1).normal(size=(3, 2, 4, 4))
        row = cache.rows(1, 2)
        assert row.batch == 1 and row.capacity == 4
        np.testing.assert_array_equal(row.keys[0][0], cache.keys[0][1])


class TestDecodeStreamParity:
    """Greedy streams identical across every engine combination."""

    @pytest.mark.parametrize("kind", ["float", "dense", "legacy"])
    @pytest.mark.parametrize("prompt", PROMPTS, ids=lambda p: "len%d" % len(p))
    def test_streams_identical(self, kind, prompt):
        streams = {}
        for cache in (False, True):
            for engine in ("eager", "compiled"):
                model = make_model(kind)
                streams[(cache, engine)] = greedy_generate(
                    model, prompt, 8, cache=cache, engine=engine
                )
        reference = streams[(False, "eager")]
        assert len(reference) == 8
        assert all(stream == reference for stream in streams.values()), streams

    @pytest.mark.parametrize("kind", ["float", "dense"])
    def test_cached_logits_bitwise_eager_vs_compiled(self, kind):
        """Per-step logits and cache arrays are bit-identical across the
        eager and compiled cached paths (not just the argmax stream)."""
        prompt = [1, 5, 3]
        eager = make_model(kind)
        compiled = make_model(kind)
        eager.calibrate(prompt)
        compiled.calibrate(prompt)
        step = compiled.compiled_step()
        kv_eager = eager.new_cache(batch=1)
        kv_compiled = compiled.new_cache(batch=1)
        tokens = list(prompt)
        for position in range(12):
            capacity = kv_eager.ensure(position + 1)
            kv_compiled.ensure(position + 1)
            inputs = step_inputs(eager, [tokens[position]], [position], capacity)
            logits_e, new_e = eager.eager_step(*inputs, kv_eager.arrays())
            logits_c, new_c = step.step(*inputs, kv_compiled.arrays())
            np.testing.assert_array_equal(logits_e, logits_c)
            for array_e, array_c in zip(new_e, new_c):
                np.testing.assert_array_equal(array_e, array_c)
            kv_eager.update(new_e)
            kv_compiled.update(new_c)
            if position + 1 == len(tokens):
                tokens.append(int(np.argmax(logits_e[0])))


class TestBucketBoundary:
    def test_crossing_2k_to_2k_plus_1_keeps_the_stream(self):
        """Decode straight across the 4->8 and 8->16 capacity crossings and
        match the uncached stream token for token."""
        prompt = [1, 5, 3]
        uncached = greedy_generate(make_model("dense"), prompt, 16, cache=False)
        cached = greedy_generate(make_model("dense"), prompt, 16, cache=True,
                                 engine="compiled")
        assert cached == uncached

    def test_capacity_transitions_at_exact_boundaries(self):
        model = make_model("float")
        model.calibrate([1])
        kv = model.new_cache(batch=1)
        tokens = [1]
        seen = []
        for position in range(17):
            capacity = kv.ensure(position + 1)
            seen.append(capacity)
            inputs = step_inputs(model, [tokens[position]], [position], capacity)
            logits, new = model.eager_step(*inputs, kv.arrays())
            kv.update(new)
            tokens.append(int(np.argmax(logits[0])))
        # Capacity at step p (writing position p, 0-based) is bucket(p+1):
        # it doubles exactly when length crosses 2^k.
        assert seen == [bucket_capacity(p + 1, SMALL.max_seq) for p in range(17)]
        assert seen[:2] == [1, 2] and seen[4] == 8 and seen[8] == 16


class TestCompiledDecodeStep:
    def test_one_specialization_per_bucket(self):
        model = make_model("float")
        prompt = [1, 5, 3]
        greedy_generate(model, prompt, 27, cache=True, engine="compiled")
        step = model.compiled_step()
        steps_run = len(prompt) + 27 - 1
        expected = {bucket_capacity(p + 1, SMALL.max_seq) for p in range(steps_run)}
        assert step.specializations == len(expected)
        assert step.compile_count == len(expected)
        assert step.replay_count == steps_run
        stats = step.stats()
        assert set(stats["signatures"]) == {
            "batch=1,capacity=%d" % c for c in sorted(expected)
        }

    def test_external_rebind_invalidates(self):
        model = make_model("float")
        greedy_generate(model, [1, 5], 4, cache=True, engine="compiled")
        step = model.compiled_step()
        before = step.compile_count
        model.load_state_dict(model.state_dict())  # rebinds every array
        greedy_generate(model, [1, 5], 4, cache=True, engine="compiled")
        assert step.compile_count > before

    def test_requires_a_step_method(self):
        from repro.nn.layers import Linear

        with pytest.raises(TypeError, match="step"):
            CompiledDecodeStep(Linear(4, 4))


class TestDecodeEngineConfig:
    def test_env_and_context_resolution(self, monkeypatch):
        assert engine_config.resolve_decode_engine(None) == "eager"
        monkeypatch.setenv("REPRO_DECODE_ENGINE", "compiled")
        assert engine_config.resolve_decode_engine(None) == "compiled"
        with engine_config.use(decode_engine="eager"):
            assert engine_config.resolve_decode_engine(None) == "eager"
            assert engine_config.resolve_decode_engine("compiled") == "compiled"
        with pytest.raises(ValueError):
            engine_config.resolve_decode_engine("jit")

    def test_env_engine_drives_greedy_generate(self, monkeypatch):
        monkeypatch.setenv("REPRO_DECODE_ENGINE", "compiled")
        model = make_model("float")
        stream = greedy_generate(model, [1, 5, 3], 6, cache=True)
        assert model.compiled_step().replay_count > 0
        baseline = greedy_generate(make_model("float"), [1, 5, 3], 6,
                                   cache=True, engine="eager")
        assert stream == baseline


class TestMaskedSoftmax:
    """Satellite: numerically-stable traced softmax at extreme logits."""

    def _scores(self):
        rng = np.random.default_rng(9)
        scores = rng.normal(size=(2, 2, 6, 6))
        # Saturate half the valid slots at ±30 — the magnitude the
        # stability contract pins (naive exp(30) overflows float32-ish
        # pipelines; exp(-30) underflows a shifted-but-unstable form).
        scores[0, 0] = 30.0
        scores[1, 1] = -30.0
        scores[0, 1, :, 0] = 30.0
        scores[0, 1, :, 1] = -30.0
        return scores

    def test_eager_vs_compiled_bitwise_at_extreme_logits(self):
        mask = F.causal_mask(6)

        def fn(scores):
            return F.masked_softmax(scores, mask)

        scores = self._scores()
        eager = fn(Tensor(scores)).data
        graph = trace(fn, scores)
        compiled = CompiledGraph(optimize(graph))
        np.testing.assert_array_equal(compiled.run(scores)[0], eager)
        assert np.isfinite(eager).all()

    def test_mask_subtree_constant_folds_and_max_stays(self):
        mask = F.causal_mask(6)

        def fn(scores):
            return F.masked_softmax(scores, mask)

        graph = trace(fn, self._scores())
        optimized = optimize(graph)
        # The (1 - mask) * MASK_OFFSET subtree is constant arithmetic; the
        # fold pass pre-evaluates it, so the optimized graph is strictly
        # smaller...
        assert len(optimized.nodes) < len(graph.nodes)
        # ...while the data-dependent row-max subtraction must survive as
        # live nodes (it cannot fold — scores are an input).
        ops = [node.op for node in optimized.nodes]
        assert "max" in ops

    def test_masked_probabilities_exactly_zero(self):
        mask = F.causal_mask(5)
        out = F.masked_softmax(Tensor(self._scores()[:, :, :5, :5]), mask).data
        upper = np.triu_indices(5, k=1)
        assert (out[:, :, upper[0], upper[1]] == 0.0).all()
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-12)


class TestServedDecode:
    def _reference_streams(self, prompts, num_new):
        model = make_model("float")
        model.calibrate(prompts[0])
        return [greedy_generate(model, prompt, num_new, cache=True)
                for prompt in prompts]

    def test_concurrent_sessions_match_direct_decode(self):
        prompts = [[1, 5, 3], [2, 4], [1, 5, 3, 7, 2], [9, 9, 1, 0]]
        num_new = 8
        reference = self._reference_streams(prompts, num_new)
        model = make_model("float")
        model.calibrate(prompts[0])
        with BatchingServer(model, max_batch=8, max_wait_ms=2.0,
                            decode_engine="compiled") as server:
            results = [None] * len(prompts)

            def run(index):
                results[index] = server.generate(prompts[index], num_new,
                                                 timeout=60)

            threads = [threading.Thread(target=run, args=(i,))
                       for i in range(len(prompts))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = server.stats()
            health = server.health()
        assert results == reference
        # Bucket-grouped drains actually shared steps across sessions.
        assert stats.decode_steps > stats.decode_batches
        decode_keys = [key for key in health["bucket_latency_ms"]
                       if key.startswith("decode/")]
        assert decode_keys, health["bucket_latency_ms"]
        assert all("cap" in key for key in decode_keys)

    def test_double_submit_in_flight_rejected(self):
        model = make_model("float")
        with BatchingServer(model, max_batch=4, decode_engine="eager") as server:
            session = server.open_session([1, 5, 3])
            future = server.submit_decode(session)
            with pytest.raises(RuntimeError, match="in flight"):
                server.submit_decode(session)
            future.result(30)
            server.submit_decode(session).result(30)  # fine once resolved

    def test_session_validation(self):
        model = make_model("float")
        with BatchingServer(model, decode_engine="eager") as server:
            with pytest.raises(ValueError, match="at least one"):
                server.open_session([])
            with pytest.raises(ValueError, match="no room"):
                server.open_session(list(range(SMALL.max_seq)) * 2)
            session = server.open_session([1, 2])
            for _ in range(SMALL.max_seq - 3):
                server.submit_decode(session).result(30)
            with pytest.raises(ValueError, match="max_seq"):
                for _ in range(SMALL.max_seq):
                    server.submit_decode(session).result(30)

    def test_non_decoder_model_rejected(self):
        from repro.nn.models import MiniSegformer, ModelConfig

        vision = MiniSegformer(
            ModelConfig(image_size=8, patch_size=4, embed_dim=8, depth=1,
                        num_heads=2, num_classes=3),
            suite=FloatSuite(),
        )
        with BatchingServer(vision) as server:
            with pytest.raises(TypeError, match="decoder"):
                server.open_session([1, 2])

    def test_mixed_bucket_keys_keep_health_serialisable(self):
        model = make_model("float")
        with BatchingServer(model, decode_engine="eager") as server:
            session = server.open_session([1, 5])
            server.submit_decode(session).result(30)
            # A prefill-style int bucket alongside the decode string keys —
            # health() must render and sort both without aliasing.
            server._record_latency(1, 0.001)
            health = server.health()
        keys = list(health["bucket_latency_ms"])
        assert "1" in keys
        assert any(key.startswith("decode/") for key in keys)
        assert len(keys) == len(set(keys))
