"""Unit tests for the durable, journaled sweep work-queue.

:class:`~repro.experiments.queue.DurableQueue` is the crash-safety
substrate of PR 8: these tests pin the journal format (append-only JSONL,
fsync'd, torn tail tolerated), the lease state machine (pending → leased
with expiry + renewal → done/failed/quarantined), replay equivalence
(a reopened queue reconstructs exactly the state a live one held), and
the fault seams the chaos suite drives.
"""

import json

import pytest

from repro.experiments.queue import (
    DONE,
    JOURNAL_FORMAT_VERSION,
    LEASED,
    PENDING,
    QUARANTINED,
    DurableQueue,
)
from repro.reliability import FaultPlan, FaultSpec, InjectedFault, inject
from repro.reliability.errors import JournalCorruptError

KEY = "a" * 64
OTHER = "b" * 64
PAYLOAD = {"operator": "gelu", "method": "nn-lut", "num_entries": 8}


class FakeClock:
    """Deterministic wall clock for lease-expiry tests."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_queue(tmp_path, lease_s=30.0, clock=None):
    return DurableQueue(tmp_path / "run", lease_s=lease_s,
                        clock=clock or FakeClock())


class TestLifecycle:
    def test_enqueue_lease_complete(self, tmp_path):
        with make_queue(tmp_path) as queue:
            assert queue.enqueue(KEY, PAYLOAD) is True
            assert queue.state(KEY) == PENDING
            expires = queue.lease(KEY, worker="w0")
            assert queue.state(KEY) == LEASED
            assert expires == queue.clock() + queue.lease_s
            queue.complete(KEY)
            assert queue.state(KEY) == DONE
            assert queue.done_keys() == [KEY]
            assert queue.pending_keys() == []

    def test_enqueue_is_idempotent(self, tmp_path):
        with make_queue(tmp_path) as queue:
            assert queue.enqueue(KEY, PAYLOAD) is True
            assert queue.enqueue(KEY, {"different": "payload"}) is False
            # First payload wins; the duplicate did not journal.
            assert queue.jobs()[KEY] == PAYLOAD

    def test_complete_is_idempotent(self, tmp_path):
        with make_queue(tmp_path) as queue:
            queue.enqueue(KEY, PAYLOAD)
            queue.lease(KEY)
            queue.complete(KEY)
            before = (tmp_path / "run" / "journal.jsonl").read_text()
            queue.complete(KEY)  # no-op, no duplicate record
            assert (tmp_path / "run" / "journal.jsonl").read_text() == before

    def test_unknown_key_raises(self, tmp_path):
        with make_queue(tmp_path) as queue:
            with pytest.raises(KeyError):
                queue.lease(KEY)
            with pytest.raises(KeyError):
                queue.complete(KEY)

    def test_state_of_unknown_key_is_none(self, tmp_path):
        with make_queue(tmp_path) as queue:
            assert queue.state(KEY) is None


class TestLeases:
    def test_expired_lease_reports_pending(self, tmp_path):
        clock = FakeClock()
        with make_queue(tmp_path, lease_s=10.0, clock=clock) as queue:
            queue.enqueue(KEY, PAYLOAD)
            queue.lease(KEY, worker="w0")
            assert queue.state(KEY) == LEASED
            assert queue.pending_keys() == []
            clock.advance(10.0)
            assert queue.state(KEY) == PENDING
            assert queue.pending_keys() == [KEY]
            assert queue.counts()[PENDING] == 1

    def test_renew_extends_the_lease(self, tmp_path):
        clock = FakeClock()
        with make_queue(tmp_path, lease_s=10.0, clock=clock) as queue:
            queue.enqueue(KEY, PAYLOAD)
            queue.lease(KEY)
            clock.advance(8.0)
            queue.renew(KEY)
            clock.advance(8.0)  # 16s after lease, 8s after renew
            assert queue.state(KEY) == LEASED

    def test_renew_of_unleased_cell_is_a_noop(self, tmp_path):
        with make_queue(tmp_path) as queue:
            queue.enqueue(KEY, PAYLOAD)
            before = (tmp_path / "run" / "journal.jsonl").read_text()
            queue.renew(KEY)
            assert (tmp_path / "run" / "journal.jsonl").read_text() == before

    def test_lease_takeover_supersedes(self, tmp_path):
        clock = FakeClock()
        with make_queue(tmp_path, lease_s=10.0, clock=clock) as queue:
            queue.enqueue(KEY, PAYLOAD)
            queue.lease(KEY, worker="w0")
            clock.advance(10.0)  # w0's lease lapses
            queue.lease(KEY, worker="w1")
            assert queue.state(KEY) == LEASED
            assert queue.cells[KEY].lease_worker == "w1"

    def test_failure_returns_cell_to_pending(self, tmp_path):
        with make_queue(tmp_path) as queue:
            queue.enqueue(KEY, PAYLOAD)
            queue.lease(KEY)
            queue.record_failure(KEY, ValueError("boom"), attempts=1)
            assert queue.state(KEY) == PENDING
            assert queue.cells[KEY].attempts == 1
            assert queue.cells[KEY].error_type == "ValueError"


class TestQuarantine:
    def test_quarantined_cell_cannot_be_leased(self, tmp_path):
        with make_queue(tmp_path) as queue:
            queue.enqueue(KEY, PAYLOAD)
            queue.quarantine(KEY, RuntimeError("poison"), attempts=3)
            assert queue.state(KEY) == QUARANTINED
            assert KEY in queue.quarantined()
            with pytest.raises(ValueError):
                queue.lease(KEY)

    def test_clear_quarantine_persists_across_reopen(self, tmp_path):
        with make_queue(tmp_path) as queue:
            queue.enqueue(KEY, PAYLOAD)
            queue.quarantine(KEY, RuntimeError("poison"), attempts=3)
            queue.clear_quarantine()
            assert queue.state(KEY) == PENDING
        with make_queue(tmp_path) as reopened:
            assert reopened.state(KEY) == PENDING
            assert reopened.quarantined() == {}

    def test_reopen_only_from_done(self, tmp_path):
        with make_queue(tmp_path) as queue:
            queue.enqueue(KEY, PAYLOAD)
            queue.reopen(KEY)  # pending: no-op
            assert queue.state(KEY) == PENDING
            queue.lease(KEY)
            queue.complete(KEY)
            queue.reopen(KEY)
            assert queue.state(KEY) == PENDING


class TestReplay:
    def test_reopened_queue_reconstructs_exact_state(self, tmp_path):
        clock = FakeClock()
        with make_queue(tmp_path, lease_s=10.0, clock=clock) as queue:
            queue.enqueue(KEY, PAYLOAD)
            queue.enqueue(OTHER, PAYLOAD)
            queue.lease(KEY, worker="w0")
            queue.complete(KEY)
            queue.lease(OTHER, worker="w1")
            live = {k: (c.state, c.attempts, c.lease_expires)
                    for k, c in queue.cells.items()}
        with make_queue(tmp_path, lease_s=10.0, clock=clock) as reopened:
            replayed = {k: (c.state, c.attempts, c.lease_expires)
                        for k, c in reopened.cells.items()}
            assert replayed == live
            assert reopened.jobs() == {KEY: PAYLOAD, OTHER: PAYLOAD}
            assert not reopened.torn_tail

    def test_torn_tail_is_tolerated(self, tmp_path):
        with make_queue(tmp_path) as queue:
            queue.enqueue(KEY, PAYLOAD)
            queue.lease(KEY)
            queue.complete(KEY)
        journal = tmp_path / "run" / "journal.jsonl"
        # Simulate a crash mid-append: the final record is cut short.
        raw = journal.read_bytes()
        journal.write_bytes(raw + b'{"type":"enqueue","key":"' + b"c" * 30)
        with make_queue(tmp_path) as reopened:
            assert reopened.torn_tail
            assert reopened.state(KEY) == DONE  # everything before the tear
        # Replay truncated the torn bytes, so later appends start a fresh
        # line and the journal stays replayable.
        with make_queue(tmp_path) as again:
            assert not again.torn_tail
            again.enqueue(OTHER, PAYLOAD)
        with make_queue(tmp_path) as final:
            assert final.state(KEY) == DONE
            assert final.state(OTHER) == PENDING

    def test_mid_journal_corruption_raises(self, tmp_path):
        with make_queue(tmp_path) as queue:
            queue.enqueue(KEY, PAYLOAD)
        journal = tmp_path / "run" / "journal.jsonl"
        lines = journal.read_bytes().splitlines(keepends=True)
        lines[0] = b"garbage that is not json\n"
        journal.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorruptError):
            DurableQueue(tmp_path / "run")

    def test_newer_journal_format_is_refused(self, tmp_path):
        run = tmp_path / "run"
        run.mkdir()
        (run / "journal.jsonl").write_text(
            json.dumps({"type": "meta", "format": JOURNAL_FORMAT_VERSION + 1}) + "\n"
        )
        with pytest.raises(JournalCorruptError):
            DurableQueue(run)

    def test_unknown_record_types_are_ignored(self, tmp_path):
        # Forward compatibility: an older build must replay a journal
        # containing record types it does not know.
        with make_queue(tmp_path) as queue:
            queue.enqueue(KEY, PAYLOAD)
        journal = tmp_path / "run" / "journal.jsonl"
        with open(journal, "a") as handle:
            handle.write(json.dumps({"type": "future_extension", "x": 1}) + "\n")
        with make_queue(tmp_path) as reopened:
            assert reopened.state(KEY) == PENDING


class TestFaultSeams:
    def test_append_seam_fires(self, tmp_path):
        plan = FaultPlan(specs=(FaultSpec(site="queue.append", fail_calls=(2,)),))
        with make_queue(tmp_path) as queue:
            with inject(plan):
                queue.enqueue(KEY, PAYLOAD)  # call 1 (meta was pre-plan)
                with pytest.raises(InjectedFault):
                    queue.enqueue(OTHER, PAYLOAD)  # call 2 fails
            # The failed append journaled nothing: a reopened queue does
            # not know the cell.
        with make_queue(tmp_path) as reopened:
            assert reopened.state(KEY) == PENDING
            assert reopened.state(OTHER) is None

    def test_lease_seam_fires(self, tmp_path):
        plan = FaultPlan(specs=(FaultSpec(site="queue.lease", fail_always=True),))
        with make_queue(tmp_path) as queue:
            queue.enqueue(KEY, PAYLOAD)
            with inject(plan):
                with pytest.raises(InjectedFault):
                    queue.lease(KEY)
            assert queue.state(KEY) == PENDING
