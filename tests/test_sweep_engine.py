"""Tests for the parallel sweep engine and the artifact cache.

The engine's contract: (1) jobs are content-addressed — any field change
(budget, seed, entries, ...) changes the key; (2) serial (``workers=0``) and
process-pool (``workers=2``) execution are bit-identical to each other and
to the legacy sequential ``compute_approximation`` loops; (3) the on-disk
artifact tier round-trips losslessly, invalidates on key changes and falls
back to recomputation on corrupted files.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import engine_config
from repro.experiments import (
    ApproximationBudget,
    ApproximationJob,
    ArtifactCache,
    ArtifactStore,
    SweepEngine,
    build_approximation,
    compute_approximation,
    run_fig2,
    run_fig3,
    run_table3,
)
from repro.experiments.protocol import average_mse, scale_sweep_mse

QUICK = ApproximationBudget.quick()


def fresh_engine(tmp_path=None, workers: int = 0) -> SweepEngine:
    store = ArtifactStore(tmp_path) if tmp_path is not None else None
    return SweepEngine(cache=ArtifactCache(store=store), workers=workers)


def assert_pwl_equal(a, b):
    np.testing.assert_array_equal(a.breakpoints, b.breakpoints)
    np.testing.assert_array_equal(a.slopes, b.slopes)
    np.testing.assert_array_equal(a.intercepts, b.intercepts)


class TestJobKeys:
    def test_key_is_stable_and_hex(self):
        job = ApproximationJob("gelu", "gqa-rm", 8, QUICK)
        assert job.key == ApproximationJob("gelu", "gqa-rm", 8, QUICK).key
        assert len(job.key) == 64
        int(job.key, 16)  # raises if not hex

    @pytest.mark.parametrize(
        "other",
        [
            ApproximationJob("exp", "gqa-rm", 8, QUICK),
            ApproximationJob("gelu", "gqa-wo-rm", 8, QUICK),
            ApproximationJob("gelu", "gqa-rm", 16, QUICK),
            ApproximationJob("gelu", "gqa-rm", 8, dataclasses.replace(QUICK, seed=1)),
            ApproximationJob("gelu", "gqa-rm", 8, dataclasses.replace(QUICK, generations=26)),
            ApproximationJob("gelu", "gqa-rm", 8, dataclasses.replace(QUICK, nn_lut_samples=3001)),
        ],
    )
    def test_any_field_change_changes_key(self, other):
        assert ApproximationJob("gelu", "gqa-rm", 8, QUICK).key != other.key

    def test_ga_engine_choice_does_not_change_key(self):
        """batch/legacy scoring is bit-identical, so it must share artifacts.

        The GA engine resolves through the central engine config and is
        deliberately excluded from the content key: the same cell built
        under either scoring path is the same artifact.
        """
        job = ApproximationJob("gelu", "gqa-rm", 8, QUICK)
        with engine_config.use(ga_engine="legacy"):
            assert ApproximationJob("gelu", "gqa-rm", 8, QUICK).key == job.key


class TestEngineExecution:
    def test_engine_build_matches_direct_compute(self):
        engine = fresh_engine()
        built = engine.build(ApproximationJob("gelu", "gqa-rm", 8, QUICK))
        direct = compute_approximation("gelu", "gqa-rm", 8, QUICK)
        assert_pwl_equal(built, direct)

    def test_duplicates_collapse_within_a_batch(self):
        engine = fresh_engine()
        job = ApproximationJob("exp", "gqa-wo-rm", 8, QUICK)
        results = engine.run([job, job, job])
        assert len(results) == 1
        assert engine.stats.builds == 1
        assert engine.stats.deduped == 2

    def test_memory_cache_answers_second_run(self):
        engine = fresh_engine()
        job = ApproximationJob("div", "gqa-wo-rm", 8, QUICK)
        first = engine.build(job)
        second = engine.build(job)
        assert first is second
        assert engine.stats.builds == 1
        assert engine.stats.memory_hits == 1

    def test_parallel_pool_matches_serial(self):
        jobs = [
            ApproximationJob("gelu", "gqa-rm", 8, QUICK),
            ApproximationJob("gelu", "nn-lut", 8, QUICK),
            ApproximationJob("div", "gqa-wo-rm", 8, QUICK),
        ]
        serial = fresh_engine().run(jobs, workers=0)
        parallel = fresh_engine().run(jobs, workers=2)
        assert set(serial) == set(parallel)
        for key in serial:
            assert_pwl_equal(serial[key], parallel[key])

    def test_build_approximation_uses_given_engine(self):
        engine = fresh_engine()
        pwl = build_approximation("gelu", "gqa-rm", budget=QUICK, engine=engine)
        again = build_approximation("gelu", "gqa-rm", budget=QUICK, engine=engine)
        assert pwl is again
        assert engine.stats.builds == 1


class TestExperimentEquivalence:
    OPERATORS = ("gelu", "div")
    METHODS = ("nn-lut", "gqa-rm")

    def test_table3_parallel_matches_serial(self):
        serial = run_table3(operators=self.OPERATORS, methods=self.METHODS,
                            entries=(8,), budget=QUICK,
                            engine=fresh_engine(), workers=0)
        parallel = run_table3(operators=self.OPERATORS, methods=self.METHODS,
                              entries=(8,), budget=QUICK,
                              engine=fresh_engine(), workers=2)
        assert serial.mse == parallel.mse

    def test_table3_engine_matches_legacy_sequential_path(self):
        result = run_table3(operators=self.OPERATORS, methods=self.METHODS,
                            entries=(8,), budget=QUICK, engine=fresh_engine())
        for method in self.METHODS:
            for operator in self.OPERATORS:
                pwl = compute_approximation(operator, method, 8, QUICK)
                assert result.value(method, 8, operator) == average_mse(operator, pwl)

    def test_fig3_parallel_matches_serial_and_legacy(self):
        kwargs = dict(operators=("gelu",), methods=self.METHODS,
                      entries=(8,), budget=QUICK)
        serial = run_fig3(engine=fresh_engine(), workers=0, **kwargs)
        parallel = run_fig3(engine=fresh_engine(), workers=2, **kwargs)
        assert len(serial.series) == len(parallel.series) == 2
        for s, p in zip(serial.series, parallel.series):
            assert (s.operator, s.method, s.num_entries) == (p.operator, p.method, p.num_entries)
            assert s.sweep == p.sweep
            legacy = scale_sweep_mse(
                s.operator, compute_approximation(s.operator, s.method, s.num_entries, QUICK)
            )
            assert s.sweep == legacy

    def test_fig2_shared_cell_is_not_rebuilt(self):
        """The in-run duplicate: fig2b's gqa-wo-rm cell reuses fig2a's."""
        engine = fresh_engine()
        run_fig2(budget=QUICK, engine=engine, fig2a_operator="gelu",
                 fig2b_operator="gelu")
        # Three method cells built once; the fig2b pull and the panel
        # re-pulls are all cache hits.
        assert engine.stats.builds == 3
        assert engine.stats.deduped + engine.stats.memory_hits >= 1


class TestManifestSurface:
    """run_manifest on the healthy path: all cells, empty failure set."""

    def test_healthy_manifest(self):
        engine = fresh_engine()
        jobs = [
            ApproximationJob("gelu", "gqa-rm", 8, QUICK),
            ApproximationJob("div", "gqa-wo-rm", 8, QUICK),
        ]
        manifest = engine.run_manifest(jobs, workers=0)
        assert manifest.ok
        assert manifest.failures == {}
        assert set(manifest.results) == {job.key for job in jobs}
        assert manifest.stats.retries == 0
        assert manifest.stats.redispatches == 0
        assert manifest.stats.failures == 0
        assert manifest.require() is manifest.results


class TestDefaultEngine:
    """default_engine() honours the engine-config artifact directory."""

    def setup_method(self):
        from repro.experiments import set_default_engine

        set_default_engine(None)

    teardown_method = setup_method

    def test_rebuilds_when_artifact_dir_changes(self, tmp_path):
        from repro.experiments import default_engine

        first = default_engine()
        assert first.cache.store is None
        assert default_engine() is first
        # A later context override must not be silently ignored just
        # because the engine was already created.
        with engine_config.use(artifact_dir=str(tmp_path)):
            scoped = default_engine()
            assert scoped is not first
            assert scoped.cache.store is not None
            assert scoped.cache.store.directory == tmp_path
            assert default_engine() is scoped
        assert default_engine().cache.store is None

    def test_explicitly_installed_engine_is_pinned(self, tmp_path):
        from repro.experiments import default_engine, set_default_engine

        engine = fresh_engine()
        set_default_engine(engine)
        with engine_config.use(artifact_dir=str(tmp_path)):
            assert default_engine() is engine


class TestArtifactStore:
    JOB = ApproximationJob("gelu", "gqa-rm", 8, QUICK)

    def test_round_trip_through_disk(self, tmp_path):
        first = fresh_engine(tmp_path)
        built = first.build(self.JOB)
        assert first.stats.builds == 1

        warm = fresh_engine(tmp_path)
        loaded = warm.build(self.JOB)
        assert warm.stats.builds == 0
        assert warm.stats.disk_hits == 1
        assert_pwl_equal(built, loaded)

    def test_key_invalidation_on_budget_change(self, tmp_path):
        fresh_engine(tmp_path).build(self.JOB)
        other = fresh_engine(tmp_path)
        other.build(ApproximationJob("gelu", "gqa-rm", 8,
                                     dataclasses.replace(QUICK, seed=3)))
        assert other.stats.builds == 1
        assert other.stats.disk_hits == 0

    def test_corrupted_artifact_falls_back_to_recompute(self, tmp_path):
        fresh_engine(tmp_path).build(self.JOB)
        store = ArtifactStore(tmp_path)
        store.path_for(self.JOB.key).write_bytes(b"not an npz file")

        recovered = fresh_engine(tmp_path)
        pwl = recovered.build(self.JOB)
        assert recovered.stats.builds == 1
        assert_pwl_equal(pwl, compute_approximation("gelu", "gqa-rm", 8, QUICK))
        # The artifact was rewritten and is valid again.
        rewritten = ArtifactStore(tmp_path).load(self.JOB.key)
        assert rewritten is not None
        assert_pwl_equal(rewritten, pwl)

    def test_missing_key_loads_none(self, tmp_path):
        assert ArtifactStore(tmp_path).load("0" * 64) is None

    def test_checksumless_legacy_artifact_still_loads(self, tmp_path):
        # Artifacts written before the checksum field must stay readable
        # (validation is opportunistic: no checksum, no verdict) — and
        # they live in the pre-sharding flat layout.
        built = fresh_engine().build(self.JOB)
        store = ArtifactStore(tmp_path)
        np.savez(
            store.legacy_path_for(self.JOB.key),
            breakpoints=built.breakpoints,
            slopes=built.slopes,
            intercepts=built.intercepts,
        )
        loaded = store.load(self.JOB.key)
        assert loaded is not None
        assert_pwl_equal(loaded, built)
        assert store.corrupt_reads == 0

    def test_store_keys_listing(self, tmp_path):
        engine = fresh_engine(tmp_path)
        engine.build(self.JOB)
        assert ArtifactStore(tmp_path).keys() == [self.JOB.key]


class TestShardedLayout:
    JOB = ApproximationJob("gelu", "gqa-rm", 8, QUICK)

    def test_save_writes_into_key_prefix_shard(self, tmp_path):
        engine = fresh_engine(tmp_path)
        built = engine.build(self.JOB)
        key = self.JOB.key
        sharded = tmp_path / key[:2] / ("%s.npz" % key)
        assert sharded.exists()
        assert not (tmp_path / ("%s.npz" % key)).exists()
        loaded = ArtifactStore(tmp_path).load(key)
        assert_pwl_equal(loaded, built)

    def test_flat_legacy_artifact_is_still_resolved(self, tmp_path):
        built = fresh_engine().build(self.JOB)
        store = ArtifactStore(tmp_path)
        np.savez(
            store.legacy_path_for(self.JOB.key),
            breakpoints=built.breakpoints,
            slopes=built.slopes,
            intercepts=built.intercepts,
        )
        assert store.keys() == [self.JOB.key]
        assert_pwl_equal(store.load(self.JOB.key), built)

    def test_rebuild_manifest_migrates_flat_store_in_place(self, tmp_path):
        # A pre-sharding store: one checksummed artifact, one
        # checksum-less artifact, both in the flat layout.
        checksummed = self.JOB
        checksumless = ApproximationJob("exp", "nn-lut", 8, QUICK)
        originals = {
            checksummed.key: fresh_engine().build(checksummed),
            checksumless.key: fresh_engine().build(checksumless),
        }
        store = ArtifactStore(tmp_path)
        store.save(checksummed.key, originals[checksummed.key])
        sharded_path = store.path_for(checksummed.key)
        sharded_path.replace(store.legacy_path_for(checksummed.key))
        sharded_path.parent.rmdir()
        np.savez(
            store.legacy_path_for(checksumless.key),
            breakpoints=originals[checksumless.key].breakpoints,
            slopes=originals[checksumless.key].slopes,
            intercepts=originals[checksumless.key].intercepts,
        )

        report = store.rebuild_manifest()
        assert report["migrated"] == 2
        assert report["entries"] == 2
        assert report["unreadable"] == 0

        migrated = ArtifactStore(tmp_path)
        for key, original in originals.items():
            assert migrated.path_for(key).exists()
            assert not migrated.legacy_path_for(key).exists()
            assert_pwl_equal(migrated.load(key), original)
        # The migration backfilled checksums: a scrub now verifies both.
        scrubbed = migrated.scrub()
        assert scrubbed.scanned == 2
        assert scrubbed.ok == 2
        assert scrubbed.missing_checksum == 0

    def test_rebuild_manifest_writes_per_shard_manifests(self, tmp_path):
        store = ArtifactStore(tmp_path)
        engine = SweepEngine(cache=ArtifactCache(store=store))
        built = engine.build(self.JOB)
        store.rebuild_manifest()
        shard = self.JOB.key[:2]
        manifest = store.read_manifest(shard)
        assert manifest is not None
        assert manifest["shard"] == shard
        assert manifest["count"] == 1
        checksum = manifest["entries"][self.JOB.key]
        assert len(checksum) == 64
        assert_pwl_equal(store.load(self.JOB.key), built)


class TestDurableRunDir:
    def test_run_dir_journals_every_cell(self, tmp_path):
        import json as json_module

        run_dir = tmp_path / "run"
        engine = SweepEngine(run_dir=run_dir)
        jobs = [
            ApproximationJob("gelu", "gqa-rm", 8, QUICK),
            ApproximationJob("exp", "gqa-rm", 8, QUICK),
        ]
        manifest = engine.run_manifest(jobs)
        assert manifest.ok
        engine.close()

        journal = run_dir / "journal.jsonl"
        records = [json_module.loads(line) for line in journal.read_text().splitlines()]
        kinds = [record["type"] for record in records]
        assert kinds.count("enqueue") == 2
        assert kinds.count("done") == 2
        # Artifacts landed in the auto-attached store next to the journal.
        store = ArtifactStore(run_dir / "artifacts")
        assert set(store.keys()) == {job.key for job in jobs}

    def test_second_run_over_same_run_dir_rebuilds_nothing(self, tmp_path):
        run_dir = tmp_path / "run"
        job = ApproximationJob("gelu", "gqa-rm", 8, QUICK)
        first = SweepEngine(run_dir=run_dir)
        built = first.run_manifest([job])
        assert first.last_run.builds == 1
        first.close()

        second = SweepEngine(run_dir=run_dir)
        again = second.run_manifest([job])
        assert second.last_run.builds == 0
        assert second.last_run.disk_hits == 1
        assert_pwl_equal(again.results[job.key], built.results[job.key])
        second.close()

    def test_run_dir_resolves_from_engine_config_env(self, tmp_path, monkeypatch):
        run_dir = tmp_path / "env-run"
        monkeypatch.setenv(engine_config.SWEEP_RUN_DIR_ENV, str(run_dir))
        engine = SweepEngine()
        manifest = engine.run_manifest([ApproximationJob("gelu", "gqa-rm", 8, QUICK)])
        assert manifest.ok
        assert (run_dir / "journal.jsonl").exists()
        engine.close()
