"""Chaos tests for durable sweeps: kill, tear, corrupt — then resume.

The PR 8 crash-safety contract, exercised end to end:

* SIGKILL the coordinator mid-pool-dispatch and a fresh process resumes
  from the journal with zero completed cells rebuilt and bit-identical
  results (cache parity with an uninterrupted run);
* a journal whose final record was torn by the crash replays cleanly
  (the tear is truncated, everything before it is kept);
* two concurrent ``gc()`` passes racing a live writer never delete a
  just-committed artifact (the grace window is the invariant);
* the quarantine set survives process restarts — via the journal on a
  durable run, via the ``quarantine.json`` sidecar when only a disk
  store is attached — and ``clear_quarantine()`` lifts both;
* ``scrub()`` detects an injected bit-flip, moves the corrupt artifact
  aside, and the next access self-heals by recomputing.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import (
    ApproximationBudget,
    ApproximationJob,
    ArtifactCache,
    ArtifactStore,
    SweepEngine,
    approximation_jobs,
)
from repro.reliability import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    JobQuarantinedError,
    PersistedQuarantineError,
    RetryPolicy,
    inject,
)

QUICK = ApproximationBudget.quick()
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.0)

KILL_OPERATORS = ("exp", "gelu", "div")
KILL_METHODS = ("nn-lut", "gqa-wo-rm")

# The coordinator a test SIGKILLs: a durable pool sweep whose builds are
# slowed by an injected delay (propagated to the workers via the env), so
# the parent reliably catches it mid-flight.
_COORDINATOR = """\
import sys
from repro.experiments.jobs import SweepEngine, approximation_jobs
from repro.experiments.methods import ApproximationBudget
from repro.reliability import FaultPlan, FaultSpec, inject

run_dir = sys.argv[1]
plan = FaultPlan(specs=(
    FaultSpec(site="sweep.build:*", delay_always=True, delay_seconds=0.5),
))
jobs = approximation_jobs(
    (%r, %r, %r), (%r, %r), budget=ApproximationBudget.quick()
)
engine = SweepEngine(run_dir=run_dir)
with inject(plan, propagate=True):
    engine.run_manifest(jobs, workers=2)
""" % (KILL_OPERATORS + KILL_METHODS)


def assert_pwl_equal(a, b):
    assert np.array_equal(a.breakpoints, b.breakpoints)
    assert np.array_equal(a.slopes, b.slopes)
    assert np.array_equal(a.intercepts, b.intercepts)


def journal_done_count(run_dir: Path) -> int:
    journal = run_dir / "journal.jsonl"
    if not journal.exists():
        return 0
    return sum(
        1 for line in journal.read_text().splitlines()
        if line and json.loads(line).get("type") == "done"
    )


class TestKillResume:
    def test_sigkill_mid_pool_then_resume_is_bit_identical(self, tmp_path):
        run_dir = tmp_path / "run"
        script = tmp_path / "coordinator.py"
        script.write_text(_COORDINATOR)
        jobs = approximation_jobs(KILL_OPERATORS, KILL_METHODS, budget=QUICK)
        unique = len({job.key for job in jobs})

        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        child = subprocess.Popen(
            [sys.executable, str(script), str(run_dir)],
            env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120.0
            while journal_done_count(run_dir) < 1:
                if child.poll() is not None:
                    break  # finished before we could kill: still resumable
                if time.monotonic() > deadline:
                    pytest.fail("coordinator made no progress within 120s")
                time.sleep(0.01)
        finally:
            if child.poll() is None:
                os.killpg(child.pid, signal.SIGKILL)
            child.wait()

        done_before = journal_done_count(run_dir)
        assert done_before >= 1

        fresh = SweepEngine()
        resumed = fresh.resume(run_dir, workers=0)
        assert resumed.ok
        assert len(resumed.results) == unique
        # Zero completed cells rebuilt: the resume only built what the
        # dead coordinator had not journaled as done.
        assert resumed.stats.builds <= unique - done_before
        assert resumed.stats.cache_hits >= done_before
        fresh.close()

        # Bit parity with an uninterrupted (no journal, no kill) run.
        clean = SweepEngine().run(jobs, workers=0)
        for key, pwl in clean.items():
            assert_pwl_equal(resumed.results[key], pwl)

    def test_resume_after_torn_journal_tail(self, tmp_path):
        run_dir = tmp_path / "run"
        jobs = approximation_jobs(("gelu",), ("nn-lut", "gqa-wo-rm"), budget=QUICK)
        engine = SweepEngine(run_dir=run_dir)
        first = engine.run_manifest(jobs)
        assert first.ok
        engine.close()

        journal = run_dir / "journal.jsonl"
        raw = journal.read_bytes()
        # A crash mid-append: half a record dangles at the tail.
        journal.write_bytes(raw + b'{"type":"enqueue","key":"dead')

        fresh = SweepEngine()
        resumed = fresh.resume(run_dir)
        assert resumed.ok
        assert resumed.stats.builds == 0  # everything before the tear kept
        assert set(resumed.results) == {job.key for job in jobs}
        for key, pwl in first.results.items():
            assert_pwl_equal(resumed.results[key], pwl)
        fresh.close()


class TestGCRaces:
    def test_concurrent_gc_never_deletes_a_just_committed_artifact(self, tmp_path):
        store = ArtifactStore(tmp_path)
        committed = []
        stop = threading.Event()
        from repro.core.pwl import PiecewiseLinear

        def writer():
            index = 0
            while not stop.is_set() and index < 40:
                key = ("%02x" % (index % 256)) + "ab" * 31
                pwl = PiecewiseLinear(
                    breakpoints=np.array([float(index)]),
                    slopes=np.array([1.0, 2.0]),
                    intercepts=np.array([0.0, 1.0]),
                )
                store.save(key, pwl)
                committed.append(key)
                index += 1

        def collector(reports):
            while not stop.is_set():
                # ``referenced=set()``: every artifact is unreferenced, so
                # only the grace window protects the writer's output.
                reports.append(store.gc(referenced=set()))
                time.sleep(0.001)

        reports_a, reports_b = [], []
        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=collector, args=(reports_a,)),
            threading.Thread(target=collector, args=(reports_b,)),
        ]
        threads[0].start(); threads[1].start(); threads[2].start()
        threads[0].join()
        stop.set()
        threads[1].join(); threads[2].join()

        assert len(committed) == 40
        for key in committed:
            assert store.load(key) is not None, "gc deleted a live artifact"
        assert all(r.unreferenced_removed == 0 for r in reports_a + reports_b)

    def test_gc_reclaims_old_tmp_and_unreferenced_files(self, tmp_path):
        store = ArtifactStore(tmp_path)
        from repro.core.pwl import PiecewiseLinear
        pwl = PiecewiseLinear(
            breakpoints=np.array([0.0]),
            slopes=np.array([1.0, 2.0]),
            intercepts=np.array([0.0, 1.0]),
        )
        key = "ab" * 32
        store.save(key, pwl)
        orphan = tmp_path / "ab" / ".orphan.npz.tmp"
        orphan.write_bytes(b"half a write")
        future = time.time() + 3600.0
        report = store.gc(referenced=set(), now=future)
        assert report.tmp_removed == 1
        assert report.unreferenced_removed == 1
        assert not orphan.exists()
        assert store.load(key) is None


class TestPersistedQuarantine:
    POISON = FaultPlan(specs=(
        FaultSpec(site="sweep.build:gelu:nn-lut", fail_always=True),
    ))
    BAD_JOB = ApproximationJob("gelu", "nn-lut", 8, QUICK)

    def test_journal_quarantine_survives_restart_and_clears(self, tmp_path):
        run_dir = tmp_path / "run"
        engine = SweepEngine(run_dir=run_dir, retry=FAST_RETRY)
        with inject(self.POISON):
            manifest = engine.run_manifest([self.BAD_JOB])
        assert not manifest.ok
        engine.close()

        fresh = SweepEngine(retry=FAST_RETRY)
        resumed = fresh.resume(run_dir)
        assert not resumed.ok
        failure = resumed.failures[self.BAD_JOB.key]
        assert isinstance(failure.error, JobQuarantinedError)
        assert isinstance(failure.error.__cause__, PersistedQuarantineError)
        assert resumed.stats.builds == 0  # failed fast, never re-poisoned

        fresh.clear_quarantine()
        healed = fresh.resume(run_dir)
        assert healed.ok
        assert healed.stats.builds == 1
        fresh.close()

        # The clear itself is journaled: one more restart stays clean.
        final = SweepEngine()
        assert final.resume(run_dir).ok
        final.close()

    def test_sidecar_quarantine_survives_restart_and_clears(self, tmp_path):
        store_dir = tmp_path / "store"
        engine = SweepEngine(
            cache=ArtifactCache(store=ArtifactStore(store_dir)), retry=FAST_RETRY
        )
        with inject(self.POISON):
            manifest = engine.run_manifest([self.BAD_JOB])
        assert not manifest.ok
        assert (store_dir / "quarantine.json").exists()

        fresh = SweepEngine(
            cache=ArtifactCache(store=ArtifactStore(store_dir)), retry=FAST_RETRY
        )
        blocked = fresh.run_manifest([self.BAD_JOB])
        assert not blocked.ok
        failure = blocked.failures[self.BAD_JOB.key]
        assert isinstance(failure.error, JobQuarantinedError)
        assert isinstance(failure.error.__cause__, PersistedQuarantineError)

        fresh.clear_quarantine()
        final = SweepEngine(
            cache=ArtifactCache(store=ArtifactStore(store_dir)), retry=FAST_RETRY
        )
        assert final.run_manifest([self.BAD_JOB]).ok


class TestScrubHeals:
    JOB = ApproximationJob("gelu", "gqa-rm", 8, QUICK)

    def test_bit_flip_is_detected_quarantined_and_healed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        engine = SweepEngine(cache=ArtifactCache(store=store))
        built = engine.build(self.JOB)

        path = store.path_for(self.JOB.key)
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        path.write_bytes(bytes(payload))

        report = store.scrub()
        assert report.scanned == 1
        assert report.corrupt == 1
        assert report.quarantined == [self.JOB.key]
        assert not path.exists()  # moved aside, not deleted
        assert (tmp_path / "quarantine" / path.name).exists()

        # Self-heal: the next access misses, recomputes, rewrites.
        healer = SweepEngine(cache=ArtifactCache(store=ArtifactStore(tmp_path)))
        healed = healer.build(self.JOB)
        assert healer.stats.builds == 1
        assert_pwl_equal(healed, built)

        clean = ArtifactStore(tmp_path).scrub()
        assert clean.corrupt == 0
        assert clean.ok == 1

    def test_scrub_fault_seam_fires(self, tmp_path):
        store = ArtifactStore(tmp_path)
        engine = SweepEngine(cache=ArtifactCache(store=store))
        engine.build(self.JOB)
        plan = FaultPlan(specs=(FaultSpec(site="artifact.scrub", fail_always=True),))
        with inject(plan):
            with pytest.raises(InjectedFault):
                store.scrub()
