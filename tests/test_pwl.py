"""Tests for the piece-wise linear core (Eq. 1) and LUT storage (Fig. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lut import LUT, LUTEntry, QuantizedLUT
from repro.core.pwl import PiecewiseLinear, fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function
from repro.quant.quantizer import QuantSpec


class TestPiecewiseLinear:
    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            PiecewiseLinear(breakpoints=[0.0], slopes=[1.0, 2.0], intercepts=[0.0])

    def test_requires_n_minus_1_breakpoints(self):
        with pytest.raises(ValueError):
            PiecewiseLinear(breakpoints=[0.0, 1.0], slopes=[1.0, 2.0], intercepts=[0.0, 0.0])

    def test_requires_sorted_breakpoints(self):
        with pytest.raises(ValueError):
            PiecewiseLinear(breakpoints=[1.0, 0.0], slopes=[1.0, 2.0, 3.0],
                            intercepts=[0.0, 0.0, 0.0])

    def test_segment_index_boundaries(self):
        pwl = PiecewiseLinear(breakpoints=[0.0, 1.0], slopes=[1.0, 2.0, 3.0],
                              intercepts=[0.0, 0.0, 0.0])
        # x < p0 -> 0, p0 <= x < p1 -> 1, x >= p1 -> 2
        np.testing.assert_array_equal(pwl.segment_index([-1.0, 0.0, 0.5, 1.0, 2.0]),
                                      [0, 1, 1, 2, 2])

    def test_evaluation_uses_selected_segment(self):
        pwl = PiecewiseLinear(breakpoints=[0.0], slopes=[1.0, -1.0], intercepts=[0.0, 0.0])
        assert pwl(-2.0) == pytest.approx(-2.0)
        assert pwl(2.0) == pytest.approx(-2.0)

    def test_num_entries(self, gelu_uniform_pwl):
        assert gelu_uniform_pwl.num_entries == 8
        assert gelu_uniform_pwl.breakpoints.size == 7

    def test_to_fixed_point_rounds_parameters(self, gelu_uniform_pwl):
        fxp = gelu_uniform_pwl.to_fixed_point(5)
        np.testing.assert_allclose(fxp.slopes * 32, np.round(fxp.slopes * 32))
        np.testing.assert_allclose(fxp.intercepts * 32, np.round(fxp.intercepts * 32))
        # Breakpoints are untouched by the lambda rounding.
        np.testing.assert_allclose(fxp.breakpoints, gelu_uniform_pwl.breakpoints)

    def test_interpolated_fit_is_continuous(self, gelu_uniform_pwl):
        assert gelu_uniform_pwl.is_continuous(tol=1e-9)

    def test_max_segment_width(self):
        pwl = PiecewiseLinear(breakpoints=[0.0, 3.0], slopes=[0.0] * 3, intercepts=[0.0] * 3)
        assert pwl.max_segment_width() == pytest.approx(3.0)


class TestUniformBreakpoints:
    def test_count_and_interior(self):
        bp = uniform_breakpoints(-4, 4, 8)
        assert bp.size == 7
        assert bp[0] > -4 and bp[-1] < 4

    def test_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            uniform_breakpoints(-4, 4, 1)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            uniform_breakpoints(4, -4, 8)


class TestFitPWL:
    def test_interpolation_matches_function_at_edges(self):
        fn = get_function("gelu")
        bp = uniform_breakpoints(*fn.search_range, num_entries=8)
        pwl = fit_pwl(fn.fn, bp, fn.search_range, method="interpolate")
        for p in bp:
            assert pwl(p) == pytest.approx(float(fn(p)), abs=1e-9)

    def test_accuracy_improves_with_entries(self):
        fn = get_function("gelu")
        grid = fn.sample_grid(0.01)
        errors = []
        for entries in (4, 8, 16, 32):
            bp = uniform_breakpoints(*fn.search_range, num_entries=entries)
            pwl = fit_pwl(fn.fn, bp, fn.search_range)
            errors.append(float(np.mean((pwl(grid) - fn(grid)) ** 2)))
        assert errors == sorted(errors, reverse=True)

    def test_lstsq_not_worse_than_interpolation_on_average(self):
        fn = get_function("exp")
        bp = uniform_breakpoints(*fn.search_range, num_entries=8)
        grid = fn.sample_grid(0.01)
        ref = fn(grid)
        interp = fit_pwl(fn.fn, bp, fn.search_range, method="interpolate")
        lstsq = fit_pwl(fn.fn, bp, fn.search_range, method="lstsq")
        mse_interp = float(np.mean((interp(grid) - ref) ** 2))
        mse_lstsq = float(np.mean((lstsq(grid) - ref) ** 2))
        assert mse_lstsq <= mse_interp * 1.05

    def test_unsorted_and_duplicate_breakpoints_are_cleaned(self):
        fn = get_function("gelu")
        pwl = fit_pwl(fn.fn, [1.0, -1.0, 1.0, 0.0], fn.search_range)
        assert pwl.num_entries == 5
        assert np.all(np.diff(pwl.breakpoints) >= 0)

    def test_out_of_range_breakpoints_are_clipped(self):
        fn = get_function("gelu")
        pwl = fit_pwl(fn.fn, [-10.0, 0.0, 10.0], fn.search_range)
        assert pwl.breakpoints[0] >= fn.search_range[0]
        assert pwl.breakpoints[-1] <= fn.search_range[1]

    def test_unknown_method_raises(self):
        fn = get_function("gelu")
        with pytest.raises(ValueError):
            fit_pwl(fn.fn, [0.0], fn.search_range, method="spline")

    def test_bad_range_raises(self):
        fn = get_function("gelu")
        with pytest.raises(ValueError):
            fit_pwl(fn.fn, [0.0], (4.0, -4.0))

    @given(
        st.lists(st.floats(-3.9, 3.9), min_size=3, max_size=9),
    )
    @settings(max_examples=50, deadline=None)
    def test_fit_always_produces_valid_pwl(self, breakpoints):
        fn = get_function("gelu")
        pwl = fit_pwl(fn.fn, breakpoints, fn.search_range)
        assert pwl.num_entries == len(breakpoints) + 1
        grid = np.linspace(-4, 4, 101)
        assert np.all(np.isfinite(pwl(grid)))


class TestLUT:
    def test_entries_match_pwl(self, gelu_uniform_pwl):
        lut = LUT(gelu_uniform_pwl)
        assert lut.num_entries == 8
        assert len(lut.entries) == 8
        entry = lut.entries[0]
        assert isinstance(entry, LUTEntry)
        assert entry.slope == pytest.approx(gelu_uniform_pwl.slopes[0])

    def test_lookup_equals_pwl_call(self, gelu_uniform_pwl):
        lut = LUT(gelu_uniform_pwl)
        x = np.linspace(-4, 4, 33)
        np.testing.assert_allclose(lut.lookup(x), gelu_uniform_pwl(x))

    def test_storage_bits(self, gelu_uniform_pwl):
        lut = LUT(gelu_uniform_pwl)
        assert lut.storage_bits(32) == (3 * 8 - 1) * 32


class TestQuantizedLUT:
    def make(self, pwl, scale=0.25, bits=8, frac_bits=5):
        return QuantizedLUT(pwl=pwl.to_fixed_point(frac_bits), scale=scale,
                            spec=QuantSpec(bits=bits, signed=True), frac_bits=frac_bits)

    def test_requires_power_of_two_scale(self, gelu_uniform_pwl):
        with pytest.raises(ValueError):
            QuantizedLUT(pwl=gelu_uniform_pwl, scale=0.3)

    def test_requires_positive_scale(self, gelu_uniform_pwl):
        with pytest.raises(ValueError):
            QuantizedLUT(pwl=gelu_uniform_pwl, scale=-1.0)

    def test_quantized_breakpoints_follow_eq3(self, gelu_uniform_pwl):
        lut = self.make(gelu_uniform_pwl, scale=0.25)
        expected = np.clip(np.round(gelu_uniform_pwl.breakpoints / 0.25), -128, 127)
        np.testing.assert_allclose(lut.quantized_breakpoints, expected)

    def test_shift_matches_log2_scale(self, gelu_uniform_pwl):
        assert self.make(gelu_uniform_pwl, scale=0.25).shift == -2
        assert self.make(gelu_uniform_pwl, scale=1.0).shift == 0

    def test_dequantized_output_close_to_float_pwl(self, gelu_uniform_pwl):
        lut = self.make(gelu_uniform_pwl, scale=2.0 ** -5)
        codes = np.arange(-128, 128)
        x = codes * lut.scale
        approx = lut.lookup_dequantized(codes)
        reference = gelu_uniform_pwl(x)
        # FXP rounding with lambda=5 bounds the deviation.
        assert np.max(np.abs(approx - reference)) < 0.2

    def test_integer_and_dequantized_consistent(self, gelu_uniform_pwl):
        lut = self.make(gelu_uniform_pwl, scale=0.5)
        codes = np.arange(-8, 9)
        np.testing.assert_allclose(lut.lookup_dequantized(codes),
                                   lut.lookup_integer(codes) * 0.5)

    def test_call_quantizes_real_input(self, gelu_uniform_pwl):
        lut = self.make(gelu_uniform_pwl, scale=0.25)
        x = np.array([-1.0, 0.0, 1.0])
        np.testing.assert_allclose(lut(x), lut.lookup_dequantized(x / 0.25))

    def test_with_scale_retargets(self, gelu_uniform_pwl):
        lut = self.make(gelu_uniform_pwl, scale=0.25)
        retargeted = lut.with_scale(0.5)
        assert retargeted.scale == 0.5
        assert retargeted.pwl is lut.pwl

    def test_storage_bits_uses_input_width(self, gelu_uniform_pwl):
        lut = self.make(gelu_uniform_pwl, bits=8)
        assert lut.storage_bits() == (3 * 8 - 1) * 8

    def test_larger_scale_gives_larger_breakpoint_deviation(self):
        """The breakpoint-deviation phenomenon of Section 3.3."""
        fn = get_function("exp")
        bp = uniform_breakpoints(*fn.search_range, num_entries=8)
        pwl = fit_pwl(fn.fn, bp, fn.search_range).to_fixed_point(5)
        deviations = {}
        for scale in (0.5, 0.125):
            lut = QuantizedLUT(pwl=pwl, scale=scale, frac_bits=5)
            recovered = lut.quantized_breakpoints * scale
            deviations[scale] = float(np.max(np.abs(recovered - pwl.breakpoints)))
        assert deviations[0.5] >= deviations[0.125]
