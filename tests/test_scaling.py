"""Tests for multi-range input scaling (Section 3.1, Table 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pwl import fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function
from repro.scaling import (
    DIV_MULTI_RANGE,
    MultiRangePWL,
    MultiRangeScaling,
    RSQRT_MULTI_RANGE,
    SubRange,
    default_multi_range,
)


class TestSubRange:
    def test_contains(self):
        sr = SubRange(4.0, 32.0, 2.0 ** -3)
        assert sr.contains(4.0)
        assert sr.contains(31.9)
        assert not sr.contains(32.0)
        assert not sr.contains(3.9)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            SubRange(4.0, 4.0, 0.5)

    def test_scale_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            SubRange(4.0, 8.0, 0.3)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            SubRange(4.0, 8.0, -0.5)


class TestTable2Defaults:
    def test_div_setup_matches_table2(self):
        assert DIV_MULTI_RANGE.breakpoint_interval == (0.5, 4.0)
        subs = DIV_MULTI_RANGE.sub_ranges
        assert [(s.lower, s.upper, s.scale) for s in subs] == [
            (4.0, 32.0, 2.0 ** -3),
            (32.0, 256.0, 2.0 ** -6),
            (256.0, float("inf"), 2.0 ** -6),
        ]
        assert DIV_MULTI_RANGE.rescale_power == 1.0

    def test_rsqrt_setup_matches_table2(self):
        assert RSQRT_MULTI_RANGE.breakpoint_interval == (0.25, 4.0)
        subs = RSQRT_MULTI_RANGE.sub_ranges
        assert [(s.lower, s.upper, s.scale) for s in subs] == [
            (4.0, 64.0, 2.0 ** -4),
            (64.0, 1024.0, 2.0 ** -8),
            (1024.0, float("inf"), 2.0 ** -12),
        ]
        assert RSQRT_MULTI_RANGE.rescale_power == 0.5

    def test_default_lookup(self):
        assert default_multi_range("div") is DIV_MULTI_RANGE
        assert default_multi_range("RSQRT") is RSQRT_MULTI_RANGE
        with pytest.raises(KeyError):
            default_multi_range("gelu")

    def test_rescaled_inputs_land_in_breakpoint_interval(self):
        for scaling in (DIV_MULTI_RANGE, RSQRT_MULTI_RANGE):
            lo, hi = scaling.breakpoint_interval
            for sr in scaling.sub_ranges:
                upper = sr.upper if np.isfinite(sr.upper) else sr.lower * 4
                samples = np.linspace(sr.lower, upper * 0.999, 64)
                scaled, _ = scaling.rescale_input(samples)
                assert np.all(scaled >= lo * 0.999)
                # The scaled values should not exceed the interval end except
                # for the unbounded tail sub-range.
                if np.isfinite(sr.upper):
                    assert np.all(scaled <= hi * 1.001)


class TestMultiRangeScaling:
    def test_classification(self):
        idx = DIV_MULTI_RANGE.classify(np.array([1.0, 5.0, 100.0, 300.0]))
        np.testing.assert_array_equal(idx, [-1, 0, 1, 2])

    def test_rescale_identity_inside_interval(self):
        scaled, factor = DIV_MULTI_RANGE.rescale_input(np.array([1.0, 2.0]))
        np.testing.assert_allclose(scaled, [1.0, 2.0])
        np.testing.assert_allclose(factor, [1.0, 1.0])

    def test_div_identity_holds(self):
        """1/x == S' * (1/(S'x)) exactly, so rescaling preserves the math."""
        x = np.array([5.0, 40.0, 500.0])
        scaled, factor = DIV_MULTI_RANGE.rescale_input(x)
        np.testing.assert_allclose(factor * (1.0 / scaled), 1.0 / x)

    def test_rsqrt_identity_holds(self):
        x = np.array([10.0, 100.0, 2000.0])
        scaled, factor = RSQRT_MULTI_RANGE.rescale_input(x)
        np.testing.assert_allclose(factor * (1.0 / np.sqrt(scaled)), 1.0 / np.sqrt(x))

    def test_unsorted_subranges_rejected(self):
        with pytest.raises(ValueError):
            MultiRangeScaling(
                operator="div",
                breakpoint_interval=(0.5, 4.0),
                sub_ranges=(
                    SubRange(32.0, 256.0, 2.0 ** -6),
                    SubRange(4.0, 32.0, 2.0 ** -3),
                ),
                rescale_power=1.0,
            )

    def test_coverage_upper_bound(self):
        assert DIV_MULTI_RANGE.coverage_upper_bound() == float("inf")


class TestMultiRangePWL:
    @pytest.fixture(scope="class")
    def div_pwl(self):
        fn = get_function("div")
        bp = uniform_breakpoints(*fn.search_range, num_entries=8)
        return fit_pwl(fn.fn, bp, fn.search_range)

    @pytest.fixture(scope="class")
    def rsqrt_pwl(self):
        fn = get_function("rsqrt")
        bp = uniform_breakpoints(*fn.search_range, num_entries=8)
        return fit_pwl(fn.fn, bp, fn.search_range)

    def test_div_accuracy_over_wide_range(self, div_pwl):
        wrapped = MultiRangePWL(pwl=div_pwl, scaling=DIV_MULTI_RANGE)
        x = np.linspace(0.5, 1000.0, 2000)
        mse = wrapped.mse(get_function("div"), x)
        assert mse < 5e-3

    def test_rsqrt_accuracy_over_wide_range(self, rsqrt_pwl):
        wrapped = MultiRangePWL(pwl=rsqrt_pwl, scaling=RSQRT_MULTI_RANGE)
        x = np.linspace(0.25, 4000.0, 2000)
        mse = wrapped.mse(get_function("rsqrt"), x)
        assert mse < 5e-3

    def test_relative_error_small_far_out(self, div_pwl):
        """Re-scaling keeps the relative error bounded even at x >> I_R."""
        wrapped = MultiRangePWL(pwl=div_pwl, scaling=DIV_MULTI_RANGE)
        x = np.array([10.0, 100.0, 200.0])
        approx = wrapped(x)
        exact = 1.0 / x
        rel = np.abs(approx - exact) / exact
        assert np.all(rel < 0.2)

    def test_fxp_pwl_parameters_rounded(self, div_pwl):
        wrapped = MultiRangePWL(pwl=div_pwl, scaling=DIV_MULTI_RANGE, frac_bits=5)
        fxp = wrapped.fxp_pwl
        np.testing.assert_allclose(fxp.slopes * 32, np.round(fxp.slopes * 32))
        np.testing.assert_allclose(fxp.breakpoints * 32, np.round(fxp.breakpoints * 32))

    @given(st.floats(0.5, 300.0))
    @settings(max_examples=100, deadline=None)
    def test_output_positive_within_covered_range(self, value):
        """Within the bounded Table 2 sub-ranges the approximation stays positive."""
        fn = get_function("div")
        bp = uniform_breakpoints(*fn.search_range, num_entries=8)
        pwl = fit_pwl(fn.fn, bp, fn.search_range)
        wrapped = MultiRangePWL(pwl=pwl, scaling=DIV_MULTI_RANGE)
        out = float(wrapped(value))
        assert np.isfinite(out)
        assert out > 0

    @given(st.floats(300.0, 100000.0))
    @settings(max_examples=50, deadline=None)
    def test_output_finite_beyond_covered_range(self, value):
        """Beyond the last bounded sub-range the pwl extrapolates: the result
        may lose relative accuracy but must stay finite and small in
        magnitude (the exact value is itself close to zero there)."""
        fn = get_function("div")
        bp = uniform_breakpoints(*fn.search_range, num_entries=8)
        pwl = fit_pwl(fn.fn, bp, fn.search_range)
        wrapped = MultiRangePWL(pwl=pwl, scaling=DIV_MULTI_RANGE)
        out = float(wrapped(value))
        assert np.isfinite(out)
        assert abs(out) < 5.0
