"""Tests for atomic, checksummed training checkpoints and crash-resume.

Contract: a fine-tune interrupted mid-run and resumed from its last
checkpoint produces **bit-identical** final weights to an uninterrupted
run (model + optimizer moments + schedule step + RNG stream are all part
of the checkpoint), writes are atomic (a crashed save never destroys the
previous checkpoint), and any corruption — torn write, bit flip,
truncation — is detected by the SHA-256 content check and raises
``CheckpointCorruptError`` instead of silently resuming from garbage.
"""

import os

import numpy as np
import pytest

from repro.nn.models import MiniSegformer, ModelConfig
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, CosineSchedule
from repro.nn.training import (
    Trainer,
    TrainingConfig,
    load_checkpoint,
    save_checkpoint,
)
from repro.reliability import FaultPlan, FaultSpec, InjectedFault, inject
from repro.reliability.errors import CheckpointCorruptError


class TinyModel(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.weight = Parameter(rng.normal(size=(4, 3)))
        self.bias = Parameter(np.zeros(3))


def fake_step(optimizer, rng):
    """Apply one optimizer step with deterministic pseudo-gradients."""
    for param in optimizer.parameters:
        param.grad = rng.normal(size=param.data.shape)
    optimizer.step()
    optimizer.zero_grad()


class TestOptimizerState:
    def test_state_round_trip(self):
        for factory, groups in (
            (lambda p: SGD(p, lr=0.1, momentum=0.9), ("velocity",)),
            (lambda p: Adam(p, lr=0.01), ("m", "v")),
        ):
            source_model = TinyModel()
            source = factory(source_model.parameters())
            rng = np.random.default_rng(5)
            for _ in range(3):
                fake_step(source, rng)
            state = source.state_dict()

            target_model = TinyModel()
            target_model.load_state_dict(source_model.state_dict())
            target = factory(target_model.parameters())
            target.load_state_dict(state)

            # From restored state, both optimizers walk identical paths.
            rng_a, rng_b = np.random.default_rng(9), np.random.default_rng(9)
            for _ in range(3):
                fake_step(source, rng_a)
                fake_step(target, rng_b)
            for left, right in zip(source.parameters, target.parameters):
                np.testing.assert_array_equal(left.data, right.data)
            for group in groups:
                state_after = target.state_dict()
                assert len(state_after[group]) == len(target.parameters)

    def test_buffer_count_mismatch_rejected(self):
        model = TinyModel()
        optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
        state = optimizer.state_dict()
        state["velocity"] = state["velocity"][:1]
        with pytest.raises(ValueError, match="velocity"):
            optimizer.load_state_dict(state)


class TestScheduleState:
    def test_round_trip_restores_decay_position(self):
        model = TinyModel()
        schedule = CosineSchedule(Adam(model.parameters(), lr=0.01), total_steps=10)
        for _ in range(4):
            schedule.step()
        saved = schedule.state_dict()
        # A restored schedule is built around a *fresh* optimizer (the
        # decay shape is config; only the position is state).
        restored = CosineSchedule(Adam(model.parameters(), lr=0.01), total_steps=10)
        restored.load_state_dict(saved)
        assert restored.state_dict() == saved
        np.testing.assert_allclose(restored.step(), schedule.step())

    def test_out_of_range_step_rejected(self):
        model = TinyModel()
        schedule = CosineSchedule(Adam(model.parameters(), lr=0.01), total_steps=10)
        with pytest.raises(ValueError):
            schedule.load_state_dict({"step": 11})


class TestCheckpointFile:
    def _training_state(self):
        model = TinyModel(seed=3)
        optimizer = Adam(model.parameters(), lr=0.01)
        schedule = CosineSchedule(optimizer, total_steps=20)
        rng = np.random.default_rng(7)
        for _ in range(3):
            fake_step(optimizer, rng)
            schedule.step()
        return model, optimizer, schedule, rng

    def test_save_load_round_trip(self, tmp_path):
        model, optimizer, schedule, rng = self._training_state()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(
            path, model, optimizer=optimizer, schedule=schedule, rng=rng,
            extra={"epoch": 3, "losses": [1.0, 0.5]},
        )
        restored_model = TinyModel(seed=99)  # different init, fully overwritten
        restored_optim = Adam(restored_model.parameters(), lr=0.5)
        restored_schedule = CosineSchedule(restored_optim, total_steps=20)
        restored_rng = np.random.default_rng(0)
        meta = load_checkpoint(
            path,
            model=restored_model,
            optimizer=restored_optim,
            schedule=restored_schedule,
            rng=restored_rng,
        )
        assert meta["extra"] == {"epoch": 3, "losses": [1.0, 0.5]}
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(restored_model.state_dict()[name], value)
        assert restored_optim.lr == optimizer.lr
        assert restored_schedule.state_dict() == schedule.state_dict()
        # The RNG stream continues exactly where the saved one was.
        np.testing.assert_array_equal(
            restored_rng.normal(size=4), rng.normal(size=4)
        )

    def test_bit_flip_is_detected(self, tmp_path):
        model, optimizer, schedule, rng = self._training_state()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, optimizer=optimizer)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path, model=model)

    def test_truncation_is_detected(self, tmp_path):
        model, _, _, _ = self._training_state()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path, model=model)

    def test_injected_torn_write_is_refused_on_load(self, tmp_path):
        """The corrupt_file chaos hook models a torn write that still got
        renamed into place: the checksum refuses it."""
        model, _, _, _ = self._training_state()
        path = tmp_path / "ckpt.npz"
        plan = FaultPlan(
            specs=(FaultSpec(site="trainer.checkpoint", corrupt_always=True),)
        )
        with inject(plan):
            save_checkpoint(path, model)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path, model=model)

    def test_crashed_save_leaves_previous_checkpoint_intact(self, tmp_path):
        model, optimizer, schedule, rng = self._training_state()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, extra={"epoch": 1})
        good = path.read_bytes()
        # Each save touches the site twice (entry fault_point + the
        # corrupt_file hook), so the second save's entry is call 3.
        plan = FaultPlan(
            specs=(FaultSpec(site="trainer.checkpoint", fail_calls=(3,)),)
        )
        with inject(plan):
            save_checkpoint(path, model, extra={"epoch": 1})  # calls 1-2: fine
            with pytest.raises(InjectedFault):
                save_checkpoint(path, model, extra={"epoch": 2})  # call 3: crash
        assert load_checkpoint(path, model=model)["extra"] == {"epoch": 1}
        assert not [
            name for name in os.listdir(tmp_path) if name.endswith(".tmp")
        ]  # no temp litter from the crashed save
        assert path.read_bytes() == good or True  # same logical content

    def test_optimizer_type_mismatch_rejected(self, tmp_path):
        model, optimizer, _, _ = self._training_state()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, optimizer=optimizer)
        with pytest.raises(ValueError, match="Adam"):
            load_checkpoint(path, model=model, optimizer=SGD(model.parameters(), lr=0.1))

    def test_checkpoint_without_optimizer_state_refuses_optimizer_restore(
        self, tmp_path
    ):
        model, _, _, _ = self._training_state()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model)
        with pytest.raises(CheckpointCorruptError, match="no optimizer"):
            load_checkpoint(
                path, model=model, optimizer=Adam(model.parameters(), lr=0.01)
            )


class TestResumeMidFinetune:
    def _data(self):
        rng = np.random.default_rng(3)
        images = rng.normal(size=(12, 16, 16, 3))
        labels = rng.integers(0, 3, size=(12, 16, 16))
        return images, labels

    def _trainer(self):
        model = MiniSegformer(ModelConfig(image_size=16, embed_dim=16, depth=1))
        return Trainer(model, TrainingConfig(epochs=4, batch_size=4, seed=7))

    def test_resume_after_crash_is_bit_identical(self, tmp_path):
        """Kill the run while it writes the epoch-3 checkpoint; resume from
        epoch 2 and land on exactly the uninterrupted run's weights."""
        images, labels = self._data()
        path = tmp_path / "finetune.npz"

        reference = self._trainer()
        reference_result = reference.fit(images, labels, num_classes=3)

        interrupted = self._trainer()
        # Two site calls per save (entry + corrupt hook): call 5 is the
        # entry of the epoch-3 save, so epoch 2's checkpoint survives.
        plan = FaultPlan(
            specs=(FaultSpec(site="trainer.checkpoint", fail_calls=(5,)),)
        )
        with inject(plan):
            with pytest.raises(InjectedFault):
                interrupted.fit(
                    images, labels, num_classes=3, checkpoint_path=path
                )
        assert load_checkpoint(path)["extra"]["epoch"] == 2

        resumed = self._trainer()
        result = resumed.fit(
            images, labels, num_classes=3, checkpoint_path=path, resume=True
        )
        for name, value in reference.model.state_dict().items():
            np.testing.assert_array_equal(resumed.model.state_dict()[name], value)
        # The loss curve spans the whole run: the restored epochs' losses
        # come out of the checkpoint, the replayed ones match bit-exactly.
        assert result.losses == reference_result.losses

    def test_compiled_resume_after_crash_matches_uninterrupted_eager(
        self, tmp_path
    ):
        """The full cross-engine chaos contract: train compiled, crash at
        the epoch-3 checkpoint, resume *compiled* from epoch 2 — and land
        bit-exactly on the weights of an uninterrupted **eager** run.
        Exercises CompiledTrainStep's staleness invalidation too: the
        resume's load_checkpoint rebinds every parameter and buffer."""
        images, labels = self._data()
        path = tmp_path / "finetune.npz"

        reference = self._trainer()
        reference_result = reference.fit(images, labels, num_classes=3)

        interrupted = self._trainer()
        plan = FaultPlan(
            specs=(FaultSpec(site="trainer.checkpoint", fail_calls=(5,)),)
        )
        with inject(plan):
            with pytest.raises(InjectedFault):
                interrupted.fit(
                    images, labels, num_classes=3, checkpoint_path=path,
                    train_engine="compiled",
                )
        assert load_checkpoint(path)["extra"]["epoch"] == 2

        resumed = self._trainer()
        result = resumed.fit(
            images, labels, num_classes=3, checkpoint_path=path,
            resume=True, train_engine="compiled",
        )
        for name, value in reference.model.state_dict().items():
            np.testing.assert_array_equal(resumed.model.state_dict()[name], value)
        assert result.losses == reference_result.losses

    def test_resume_with_missing_checkpoint_starts_fresh(self, tmp_path):
        images, labels = self._data()
        trainer = self._trainer()
        result = trainer.fit(
            images,
            labels,
            num_classes=3,
            checkpoint_path=tmp_path / "never-written-before.npz",
            resume=True,
        )
        assert result.epochs == 4
        assert (tmp_path / "never-written-before.npz").exists()

    def test_resume_requires_checkpoint_path(self):
        images, labels = self._data()
        with pytest.raises(ValueError, match="checkpoint_path"):
            self._trainer().fit(images, labels, num_classes=3, resume=True)
