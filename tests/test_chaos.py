"""Chaos tests: every degradation path proven under injected failure.

The reliability layer's contract, exercised with the deterministic fault
harness of :mod:`repro.reliability.faults`:

* a poisoned sweep cell is quarantined and reported in the manifest while
  every healthy cell still completes with cache-parity artifacts;
* transient worker crashes are retried away; stragglers are re-dispatched;
* a torn/corrupt artifact file is detected (checksums) and recomputed,
  including under concurrent multi-process writers;
* a compiled trace/replay failure degrades to the eager path with
  bit-identical predictions;
* an overloaded server sheds at admission instead of growing its queue,
  expired deadlines are rejected before batch assembly, and a wedged
  batch cannot hang a caller that passed ``timeout=``.
"""

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np
import pytest

from repro.core.pwl import PiecewiseLinear, fit_pwl, uniform_breakpoints
from repro.experiments import (
    ApproximationBudget,
    ApproximationJob,
    ArtifactCache,
    ArtifactStore,
    SweepEngine,
    compute_approximation,
)
from repro.functions.registry import get_function
from repro.graph.executor import CompiledModel
from repro.nn.approx import PWLSuite
from repro.nn.models import MiniSegformer, ModelConfig
from repro.nn.training import prepare_quantized_model
from repro.reliability import (
    DeadlineExceededError,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    JobQuarantinedError,
    QueueFullError,
    RetryPolicy,
    inject,
)
from repro.serve import BatchingServer

QUICK = ApproximationBudget.quick()
# Zero-delay policy so chaos runs stay fast; jitter is irrelevant at 0.
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.0)

OPERATORS = ("exp", "gelu", "div", "rsqrt")


def build_model():
    suite = PWLSuite(
        approximations={
            op: fit_pwl(
                get_function(op).fn,
                uniform_breakpoints(*get_function(op).search_range, 8),
                get_function(op).search_range,
            ).to_fixed_point(5)
            for op in OPERATORS
        },
        replace=set(OPERATORS),
        engine="dense",
    )
    model = MiniSegformer(ModelConfig(image_size=16, embed_dim=16, depth=1), suite=suite)
    prepare_quantized_model(model)
    model.eval()
    return model


@pytest.fixture(scope="module")
def served_model():
    model = build_model()
    # Initialise the LSQ quantizers once so every subsequent path (eager
    # reference and compiled serving) sees identical frozen scales.
    model.predict(np.random.default_rng(0).normal(size=(1, 16, 16, 3)), engine="eager")
    return model


def make_images(count, seed=1):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(16, 16, 3)) for _ in range(count)]


def assert_pwl_equal(a, b):
    np.testing.assert_array_equal(a.breakpoints, b.breakpoints)
    np.testing.assert_array_equal(a.slopes, b.slopes)
    np.testing.assert_array_equal(a.intercepts, b.intercepts)


# -- sweep: retry, quarantine, straggler re-dispatch ---------------------------


class TestSweepChaos:
    JOBS = [
        ApproximationJob("gelu", "gqa-rm", 8, QUICK),
        ApproximationJob("div", "gqa-wo-rm", 8, QUICK),
        ApproximationJob("exp", "gqa-wo-rm", 8, QUICK),
    ]

    def test_poisoned_cell_is_reported_not_fatal_serial(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="sweep.build:gelu:*", fail_always=True, exception="runtime"),
        ))
        engine = SweepEngine()
        with inject(plan):
            manifest = engine.run_manifest(self.JOBS, workers=0, retry=FAST_RETRY)
        assert not manifest.ok
        poisoned = self.JOBS[0].key
        assert set(manifest.failures) == {poisoned}
        failure = manifest.failures[poisoned]
        assert failure.attempts == FAST_RETRY.max_attempts
        assert failure.error_type == "RuntimeError"
        assert manifest.stats.failures == 1
        assert manifest.stats.retries == FAST_RETRY.max_attempts - 1
        # Every healthy cell completed with cache-parity artifacts.
        assert set(manifest.results) == {job.key for job in self.JOBS[1:]}
        for job in self.JOBS[1:]:
            assert_pwl_equal(
                manifest.results[job.key],
                compute_approximation(job.operator, job.method, 8, QUICK),
            )

    def test_poisoned_cell_in_process_pool(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="sweep.build:gelu:*", fail_always=True, exception="runtime"),
        ))
        engine = SweepEngine()
        with inject(plan, propagate=True):
            manifest = engine.run_manifest(self.JOBS, workers=2, retry=FAST_RETRY)
        assert set(manifest.failures) == {self.JOBS[0].key}
        assert manifest.failures[self.JOBS[0].key].attempts == FAST_RETRY.max_attempts
        for job in self.JOBS[1:]:
            assert_pwl_equal(
                manifest.results[job.key],
                compute_approximation(job.operator, job.method, 8, QUICK),
            )

    def test_transient_failure_is_retried_away(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="sweep.build:div:*", fail_calls=(1,), exception="os"),
        ))
        engine = SweepEngine()
        job = self.JOBS[1]
        with inject(plan):
            manifest = engine.run_manifest([job], workers=0, retry=FAST_RETRY)
        assert manifest.ok
        assert manifest.stats.retries == 1
        assert manifest.stats.builds == 1
        assert_pwl_equal(
            manifest.results[job.key],
            compute_approximation(job.operator, job.method, 8, QUICK),
        )

    def test_quarantine_fails_fast_then_can_be_cleared(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="sweep.build:gelu:*", fail_always=True, exception="runtime"),
        ))
        engine = SweepEngine()
        job = self.JOBS[0]
        with inject(plan):
            first = engine.run_manifest([job], workers=0, retry=FAST_RETRY)
        assert not first.ok
        # Second run: the key is poison — refused without re-execution,
        # even though the fault plan is gone.
        second = engine.run_manifest([job], workers=0, retry=FAST_RETRY)
        assert isinstance(second.failures[job.key].error, JobQuarantinedError)
        assert second.stats.builds == 0
        # run() (the all-or-nothing surface) raises the quarantine error.
        with pytest.raises(JobQuarantinedError):
            engine.run([job])
        engine.clear_quarantine()
        healed = engine.run_manifest([job], workers=0, retry=FAST_RETRY)
        assert healed.ok
        assert_pwl_equal(
            healed.results[job.key],
            compute_approximation(job.operator, job.method, 8, QUICK),
        )

    def test_straggler_is_redispatched(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="sweep.build:exp:*", delay_always=True, delay_seconds=0.3),
        ))
        engine = SweepEngine()
        jobs = [self.JOBS[1], self.JOBS[2]]  # div (healthy), exp (slow)
        # Budget of 5 dispatches: the 0.3s straggler finishes long before
        # the budget plus two grace windows could abandon it.
        with inject(plan, propagate=True):
            manifest = engine.run_manifest(
                jobs, workers=2, retry=RetryPolicy(max_attempts=5, base_delay=0.0),
                straggler_timeout=0.1,
            )
        assert manifest.ok
        assert manifest.stats.redispatches >= 1
        for job in jobs:
            assert_pwl_equal(
                manifest.results[job.key],
                compute_approximation(job.operator, job.method, 8, QUICK),
            )


# -- artifact store: torn writes, checksums, concurrent writers ----------------


def _racing_writer(directory, key, rounds):
    """Module-level (picklable) writer hammering one artifact key."""
    store = ArtifactStore(directory)
    pwl = PiecewiseLinear(
        breakpoints=np.array([0.0, 1.0]),
        slopes=np.array([1.0, 2.0, 3.0]),
        intercepts=np.array([0.0, -1.0, 2.0]),
    )
    for _ in range(rounds):
        store.save(key, pwl)
    return True


class TestArtifactChaos:
    JOB = ApproximationJob("gelu", "gqa-rm", 8, QUICK)

    def test_torn_write_detected_and_recomputed(self, tmp_path):
        # corrupt the bytes of the very file save() writes (worst case: a
        # torn write that still got renamed into place).
        plan = FaultPlan(specs=(FaultSpec(site="artifact.save", corrupt_always=True),))
        with inject(plan):
            first = SweepEngine(cache=ArtifactCache(store=ArtifactStore(tmp_path)))
            built = first.build(self.JOB)
        # On-disk artifact is torn; a fresh reader must treat it as a miss
        # and recompute, never raise.
        store = ArtifactStore(tmp_path)
        assert store.load(self.JOB.key) is None
        recovered = SweepEngine(cache=ArtifactCache(store=ArtifactStore(tmp_path)))
        rebuilt = recovered.build(self.JOB)
        assert recovered.stats.builds == 1
        assert_pwl_equal(rebuilt, built)
        # The rewrite healed the store.
        assert_pwl_equal(ArtifactStore(tmp_path).load(self.JOB.key), built)

    def test_checksum_rejects_silently_perturbed_arrays(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "a" * 64
        # A structurally valid npz whose checksum does not match its
        # arrays — the unzip succeeds, content validation must refuse it.
        store.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        np.savez(
            store.path_for(key),
            breakpoints=np.array([0.0]),
            slopes=np.array([1.0, 2.0]),
            intercepts=np.array([0.0, 1.0]),
            checksum=np.zeros(32, dtype=np.uint8),
        )
        assert store.load(key) is None
        assert store.corrupt_reads == 1

    def test_truncated_file_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        engine = SweepEngine(cache=ArtifactCache(store=store))
        built = engine.build(self.JOB)
        path = store.path_for(self.JOB.key)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        assert ArtifactStore(tmp_path).load(self.JOB.key) is None
        fresh = SweepEngine(cache=ArtifactCache(store=ArtifactStore(tmp_path)))
        assert_pwl_equal(fresh.build(self.JOB), built)
        assert fresh.stats.builds == 1

    def test_concurrent_writers_and_reader(self, tmp_path):
        """Two processes race atomic writes while this process reads.

        Every read must observe either a miss or a complete, bit-valid
        artifact — never an exception, never torn content (the checksum
        would catch it and read as a miss).
        """
        key = "b" * 64
        reference = PiecewiseLinear(
            breakpoints=np.array([0.0, 1.0]),
            slopes=np.array([1.0, 2.0, 3.0]),
            intercepts=np.array([0.0, -1.0, 2.0]),
        )
        store = ArtifactStore(tmp_path)
        with ProcessPoolExecutor(max_workers=2) as pool:
            writers = [
                pool.submit(_racing_writer, str(tmp_path), key, 40) for _ in range(2)
            ]
            reads = 0
            while not all(w.done() for w in writers):
                loaded = store.load(key)
                if loaded is not None:
                    assert_pwl_equal(loaded, reference)
                    reads += 1
            for writer in writers:
                assert writer.result() is True
        final = ArtifactStore(tmp_path).load(key)
        assert final is not None
        assert_pwl_equal(final, reference)
        assert store.corrupt_reads == 0


# -- compiled executor: graceful degradation to eager --------------------------


class TestCompiledFallback:
    def test_trace_failure_degrades_to_eager_once(self, served_model):
        images = np.stack(make_images(2, seed=11), axis=0)
        reference = served_model.predict(images, engine="eager")
        compiled = CompiledModel(served_model, fallback=True)
        plan = FaultPlan(specs=(FaultSpec(site="compiled.trace", fail_calls=(1,)),))
        with inject(plan):
            with pytest.warns(RuntimeWarning, match="degraded to the eager path"):
                first = compiled.predict(images)
            np.testing.assert_array_equal(first, reference)
            assert compiled.fallback_count == 1
            assert compiled.specializations == 0  # nothing was cached
            # Next call: the transient fault passed, compilation succeeds.
            second = compiled.predict(images)
            np.testing.assert_array_equal(second, reference)
            assert compiled.fallback_count == 1
            assert compiled.specializations == 1

    def test_replay_failure_degrades_too(self, served_model):
        images = np.stack(make_images(1, seed=12), axis=0)
        reference = served_model.predict(images, engine="eager")
        compiled = CompiledModel(served_model, fallback=True)
        compiled.predict(images)  # compile clean
        plan = FaultPlan(specs=(FaultSpec(site="compiled.replay", fail_calls=(1,)),))
        with inject(plan):
            np.testing.assert_array_equal(compiled.predict(images), reference)
        assert compiled.fallback_count == 1

    def test_without_fallback_failure_is_loud(self, served_model):
        compiled = CompiledModel(served_model)  # fallback defaults off
        plan = FaultPlan(specs=(FaultSpec(site="compiled.trace", fail_always=True),))
        images = np.stack(make_images(1, seed=13), axis=0)
        with inject(plan):
            with pytest.raises(InjectedFault):
                compiled.predict(images)
        assert compiled.fallback_count == 0

    def test_genuinely_bad_input_raises_eager_error(self, served_model):
        compiled = CompiledModel(served_model, fallback=True)
        with pytest.raises(ValueError):
            compiled.predict(np.zeros((1, 7, 7, 3)))  # not patch-divisible
        assert compiled.fallback_count == 0  # eager failed too: not a degradation


# -- serving: fallback parity, shedding, deadlines, timeouts -------------------


class TestServingChaos:
    def test_untraceable_model_still_serves_bit_identically(self, served_model):
        images = make_images(8, seed=21)
        reference = [served_model.predict(im[None], engine="eager")[0] for im in images]
        plan = FaultPlan(specs=(FaultSpec(site="compiled.trace", fail_always=True),))
        with inject(plan):
            with BatchingServer(served_model, max_batch=4, max_wait_ms=5.0,
                                engine="compiled") as server:
                results = server.predict_many(images, timeout=60.0)
                stats = server.stats()
                health = server.health()
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got, want)
        assert stats.fallbacks >= 1
        assert stats.completed == len(images)
        assert health["status"] == "degraded"

    def test_overload_sheds_instead_of_growing_queue(self, served_model):
        plan = FaultPlan(specs=(
            FaultSpec(site="serve.batch", delay_always=True, delay_seconds=0.05),
        ))
        admitted, shed = [], 0
        with inject(plan):
            with BatchingServer(served_model, max_batch=2, max_wait_ms=0.0,
                                engine="eager", max_queue=4) as server:
                for image in make_images(40, seed=22):
                    try:
                        admitted.append(server.submit(image))
                    except QueueFullError:
                        shed += 1
                depth = server.health()["queue_depth"]
                assert depth <= 4
                for future in admitted:
                    future.result(timeout=60.0)
                stats = server.stats()
        assert shed > 0  # overload actually shed
        assert stats.shed == shed
        assert stats.requests == len(admitted)
        assert stats.completed == len(admitted)  # every admitted request answered

    def test_expired_deadline_rejected_before_batch_assembly(self, served_model):
        plan = FaultPlan(specs=(
            FaultSpec(site="serve.batch", delay_always=True, delay_seconds=0.25),
        ))
        with inject(plan):
            with BatchingServer(served_model, max_batch=1, max_wait_ms=0.0,
                                engine="eager") as server:
                blocker = server.submit(make_images(1, seed=23)[0])
                doomed = server.submit(make_images(1, seed=24)[0], deadline_ms=50.0)
                with pytest.raises(DeadlineExceededError):
                    doomed.result(timeout=60.0)
                blocker.result(timeout=60.0)  # the in-flight batch still answers
                assert server.stats().expired == 1

    def test_wedged_batch_does_not_hang_caller_with_timeout(self, served_model):
        plan = FaultPlan(specs=(
            FaultSpec(site="serve.batch", delay_always=True, delay_seconds=0.5),
        ))
        with inject(plan):
            with BatchingServer(served_model, max_batch=1, max_wait_ms=0.0,
                                engine="eager") as server:
                with pytest.raises(FutureTimeoutError):
                    server.predict(make_images(1, seed=25)[0], timeout=0.05)

    def test_server_default_deadline_from_config(self, served_model):
        from repro.core import engine_config

        with engine_config.use(serve_deadline_ms=40.0, serve_queue_limit=128):
            server = BatchingServer(served_model, engine="eager")
        try:
            assert server.default_deadline == pytest.approx(0.04)
            assert server.max_queue == 128
        finally:
            server.close()
