"""Tests for the hardware cost model and Verilog generation (Table 6)."""

import re

import numpy as np
import pytest

from repro.core.pwl import fit_pwl, uniform_breakpoints
from repro.core.lut import QuantizedLUT
from repro.functions.registry import get_function
from repro.hardware import (
    Precision,
    PWLUnitDesign,
    TSMC28,
    Technology,
    adder,
    barrel_shifter,
    comparator,
    estimate_pwl_unit,
    fp32_adder,
    fp32_comparator,
    fp32_multiplier,
    format_synthesis_report,
    format_table6,
    generate_pwl_verilog,
    generate_testbench,
    multiplexer,
    multiplier,
    priority_encoder,
    register_bank,
    table6_sweep,
)
from repro.hardware.cost_model import (
    PAPER_ANCHOR_AREA_UM2,
    PAPER_ANCHOR_POWER_MW,
    savings_vs,
)


class TestComponents:
    def test_register_bank_scales_linearly(self):
        assert register_bank(16).total_area == pytest.approx(2 * register_bank(8).total_area)

    def test_multiplier_scales_quadratically(self):
        assert multiplier(16, 16).total_area == pytest.approx(4 * multiplier(8, 8).total_area)

    def test_comparator_and_adder_scale_linearly(self):
        assert comparator(32).total_area == pytest.approx(4 * comparator(8).total_area)
        assert adder(32).total_area == pytest.approx(4 * adder(8).total_area)

    def test_barrel_shifter_stage_count(self):
        narrow = barrel_shifter(16, 1)
        wide = barrel_shifter(16, 255)
        assert wide.total_area > narrow.total_area

    def test_component_times(self):
        one = comparator(8)
        seven = one.times(7)
        assert seven.total_area == pytest.approx(7 * one.total_area)
        assert seven.total_power == pytest.approx(7 * one.total_power)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            register_bank(-1)
        with pytest.raises(ValueError):
            multiplier(0, 8)
        with pytest.raises(ValueError):
            multiplexer(8, 1)
        with pytest.raises(ValueError):
            priority_encoder(0)
        with pytest.raises(ValueError):
            comparator(0)

    def test_fp32_units_cost_more_than_int8(self):
        assert fp32_multiplier().total_area > multiplier(8, 8).total_area
        assert fp32_adder().total_area > adder(16).total_area
        assert fp32_comparator().total_area > comparator(8).total_area

    def test_clock_scaling_affects_power_only(self):
        slower = TSMC28.scaled_to_clock(250.0)
        assert slower.power_per_register_bit == pytest.approx(
            TSMC28.power_per_register_bit / 2
        )
        assert slower.area_per_register_bit == TSMC28.area_per_register_bit

    def test_clock_scaling_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TSMC28.scaled_to_clock(0.0)


class TestPrecision:
    def test_bit_widths(self):
        assert Precision.INT8.bits == 8
        assert Precision.INT16.bits == 16
        assert Precision.INT32.bits == 32
        assert Precision.FP32.bits == 32

    def test_quantization_aware_flags(self):
        assert Precision.INT8.quantization_aware
        assert Precision.INT16.quantization_aware
        assert not Precision.INT32.quantization_aware
        assert not Precision.FP32.quantization_aware

    def test_float_flag(self):
        assert Precision.FP32.is_float
        assert not Precision.INT32.is_float


class TestCostModel:
    def test_calibrated_anchor_matches_paper(self):
        est = estimate_pwl_unit(Precision.INT8, 8, calibrate=True)
        assert est.area_um2 == pytest.approx(PAPER_ANCHOR_AREA_UM2)
        assert est.power_mw == pytest.approx(PAPER_ANCHOR_POWER_MW)

    def test_area_and_power_grow_with_precision(self):
        areas = [estimate_pwl_unit(p, 8).area_um2
                 for p in (Precision.INT8, Precision.INT16, Precision.INT32)]
        assert areas == sorted(areas)

    def test_area_grows_with_entries(self):
        small = estimate_pwl_unit(Precision.INT8, 8)
        large = estimate_pwl_unit(Precision.INT8, 16)
        assert large.area_um2 > small.area_um2
        assert large.power_mw > small.power_mw

    def test_headline_savings_in_paper_ballpark(self):
        """The paper's central hardware claim: ~81% area, ~79-80% power."""
        int8 = estimate_pwl_unit(Precision.INT8, 8)
        fp32 = estimate_pwl_unit(Precision.FP32, 8)
        int32 = estimate_pwl_unit(Precision.INT32, 8)
        area_fp, power_fp = savings_vs(fp32, int8)
        area_int, power_int = savings_vs(int32, int8)
        assert 0.75 <= area_fp <= 0.88
        assert 0.72 <= power_fp <= 0.88
        assert 0.75 <= area_int <= 0.88
        assert 0.72 <= power_int <= 0.88

    def test_entry_scaling_ratio_in_ballpark(self):
        """Paper: 16-entry INT8 is ~1.71x area and ~1.95x power of 8-entry."""
        small = estimate_pwl_unit(Precision.INT8, 8)
        large = estimate_pwl_unit(Precision.INT8, 16)
        assert 1.4 <= large.area_um2 / small.area_um2 <= 2.0
        assert 1.4 <= large.power_mw / small.power_mw <= 2.2

    def test_uncalibrated_estimates_are_raw_component_sums(self):
        est = estimate_pwl_unit(Precision.INT8, 8, calibrate=False)
        design = PWLUnitDesign(Precision.INT8, 8)
        assert est.area_um2 == pytest.approx(
            sum(c.total_area for c in design.components())
        )

    def test_breakdown_sums_to_total(self):
        est = estimate_pwl_unit(Precision.INT16, 8, calibrate=False)
        total = sum(area for area, _ in est.breakdown().values())
        assert total == pytest.approx(est.area_um2)

    def test_table6_sweep_covers_all_configurations(self):
        sweep = table6_sweep()
        assert len(sweep) == 8
        keys = {(e.precision, e.num_entries) for e in sweep}
        assert (Precision.FP32, 16) in keys

    def test_savings_vs_rejects_degenerate_reference(self):
        est = estimate_pwl_unit(Precision.INT8, 8)
        bad = est.scaled(0.0, 0.0)
        with pytest.raises(ValueError):
            savings_vs(bad, est)

    def test_invalid_entries_rejected(self):
        with pytest.raises(ValueError):
            PWLUnitDesign(Precision.INT8, num_entries=1)

    def test_reports_render(self):
        sweep = table6_sweep()
        table = format_table6(sweep)
        assert "INT8" in table and "area saving" in table
        report = format_synthesis_report(sweep[0])
        assert "lut_storage" in report and "TOTAL" in report


class TestVerilog:
    @pytest.fixture(scope="class")
    def lut(self):
        fn = get_function("gelu")
        bp = uniform_breakpoints(*fn.search_range, num_entries=8)
        pwl = fit_pwl(fn.fn, bp, fn.search_range).to_fixed_point(5)
        return QuantizedLUT(pwl=pwl, scale=0.25, frac_bits=5)

    def test_module_structure(self, lut):
        rtl = generate_pwl_verilog(lut, module_name="test_pwl")
        assert rtl.startswith("// Auto-generated")
        assert "module test_pwl (" in rtl
        assert rtl.rstrip().endswith("endmodule")
        # One slope/intercept localparam per entry, one breakpoint fewer.
        assert len(re.findall(r"SLOPE_\d+\s+=", rtl)) == 8
        assert len(re.findall(r"INTERCEPT_\d+ =", rtl)) == 8
        assert len(re.findall(r"BREAK_\d+\s+=", rtl)) == 7

    def test_shift_direction_negative_scale_exponent(self, lut):
        rtl = generate_pwl_verilog(lut)
        # scale 0.25 -> shift -2 -> left shift in RTL.
        assert "<<<" in rtl

    def test_shift_direction_positive_exponent(self):
        fn = get_function("gelu")
        bp = uniform_breakpoints(*fn.search_range, num_entries=4)
        pwl = fit_pwl(fn.fn, bp, fn.search_range).to_fixed_point(5)
        rtl = generate_pwl_verilog(QuantizedLUT(pwl=pwl, scale=2.0, frac_bits=5))
        assert ">>>" in rtl

    def test_literal_widths_are_sized(self, lut):
        rtl = generate_pwl_verilog(lut)
        assert re.search(r"13'h[0-9A-F]+", rtl)  # 8 input bits + 5 frac bits

    def test_testbench_contains_expected_vectors(self, lut):
        tb = generate_testbench(lut, num_vectors=16, seed=3)
        assert len(re.findall(r"check\(-?\d+,", tb)) == 16
        assert "$finish" in tb

    def test_testbench_expected_values_match_python_model(self, lut):
        tb = generate_testbench(lut, num_vectors=8, seed=5)
        calls = re.findall(r"check\((-?\d+), (-?\d+)\);", tb)
        assert len(calls) == 8
        for code, expected in calls:
            model = float(lut.lookup_integer(float(code)) * (2 ** lut.frac_bits))
            assert int(expected) == int(round(model))
